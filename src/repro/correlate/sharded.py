"""Sharded profile generation: partition deduped payloads across a process
pool and merge byte-identical partial profiles (DESIGN.md sec. 13).

Profile generation is embarrassingly parallel *after* pre-aggregation: each
unique ``(lbr, stack)`` payload unwinds independently, and every profile
count is an additive fold over payloads (DWARF's max-heuristic runs on
merged address totals, see below).  The engine therefore:

1. deduplicates once in the parent (:meth:`PerfData.aggregated`);
2. partitions the unique payloads deterministically by an FNV-1a payload
   hash (:func:`~repro.hw.perf_data.payload_shard`) — stable across
   processes and reruns, and cache-friendly: the per-branch memos a
   payload warms are reused by the other payloads the same shard owns;
3. unwinds each shard independently — in pool workers (``jobs > 1``) or
   in-process (``jobs <= 1``, zero IPC, same code path);
4. merges the per-shard :class:`~repro.profile.merge.ProfileMap` partials
   in shard order through the mergeable-profile layer.

**Byte-identity invariants** (pinned by differential tests):

* every profile count is an exact integer-valued float sum, so partial
  sums over any payload partition reproduce the unpartitioned totals;
* DWARF partials exchange *address-level* counts
  (:class:`~repro.profile.merge.DwarfRangeCounts`) because the
  max-heuristic is not additive; the collapse runs once, on merged totals;
* the tail-call graph feeding frame inference is built once in the parent
  from the **full** sample stream — a per-shard graph would repair frames
  differently and change merged bytes;
* context keys are re-interned through one parent-side
  :class:`~repro.profile.context.ContextTrie` at merge time, restoring
  canonical-tuple identity across shard-local interners.

Worker observability rejoins the parent the same way
:func:`~repro.pgo.driver.compare_variants` does: telemetry sessions merge
(counters add, spans/remarks append) and worker events re-emit in shard
order.  Drop accounting is per-payload and therefore partitions exactly —
``used + dropped == total`` holds for every shard and for the merge —
while cache/fallback counters may legitimately exceed the serial run's
(a payload-independent lookup repeated per shard); only profile bytes are
contractually identical.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from .. import obs, telemetry
from ..codegen.binary import Binary
from ..codegen.probe_metadata import ProbeMetadata
from ..hw.perf_data import AggregatedSample, PerfData, payload_shard
from ..profile.context import ContextTrie
from ..profile.merge import KIND_DWARF_RANGES, ProfileMap
from ..profile.profiles import FlatProfile
from .frame_inferrer import TailCallGraph
from .profgen import (RawAggregation, _emit_index_stats,
                      _index_stats_snapshot, aggregate_samples,
                      context_profile_from_agg, dwarf_profile_from_counts,
                      dwarf_range_counts, probe_profile_from_agg)

#: Supported generation modes (``context`` covers context_noinf via
#: ``use_inferrer=False``).
SHARDED_MODES = ("dwarf", "probe", "context")


def partition_entries(entries: List[AggregatedSample],
                      shards: int) -> List[List[AggregatedSample]]:
    """Split aggregated entries into ``shards`` deterministic buckets.

    Bucketing is by FNV-1a payload hash, so the partition is a pure
    function of the payloads — independent of process, platform, and
    ``PYTHONHASHSEED``.  First-occurrence order is preserved within each
    bucket (the order :meth:`PerfData.aggregated` guarantees).
    """
    if shards <= 1:
        return [list(entries)]
    buckets: List[List[AggregatedSample]] = [[] for _ in range(shards)]
    for entry in entries:
        sample = entry.sample
        buckets[payload_shard(sample.lbr, sample.stack, shards)].append(entry)
    return buckets


def _build_partial(binary: Binary, probe_meta: Optional[ProbeMetadata],
                   mode: str, use_inferrer: bool, fast: bool,
                   graph: Optional[TailCallGraph],
                   entries: List[AggregatedSample]
                   ) -> Tuple[ProfileMap, Optional[Tuple[int, int]]]:
    """Unwind one shard's payloads and build its mergeable partial.

    Runs identically in-process and in a pool worker; returns the partial
    plus the shard's frame-inference ``(attempted, recovered)`` pair
    (``None`` for modes that never infer).
    """
    tel = telemetry.enabled()
    before = _index_stats_snapshot(binary) if tel else {}
    agg, inferrer = aggregate_samples(
        binary, None, use_inferrer=(mode == "context" and use_inferrer),
        dedup=True, entries=entries, graph=graph)
    if mode == "dwarf":
        payload = dwarf_range_counts(binary, agg, fast=fast)
    elif mode == "probe":
        payload = probe_profile_from_agg(binary, agg, probe_meta, fast=fast)
    else:
        payload = context_profile_from_agg(binary, agg, probe_meta, fast=fast)
    partial = ProfileMap(payload, binary_id=binary.identity())
    partial.record_aggregation(agg)
    if tel:
        _emit_index_stats(binary, before)
    inference = ((inferrer.attempted, inferrer.recovered)
                 if inferrer is not None else None)
    return partial, inference


#: Per-worker state installed by the pool initializer.  Only the
#: *data-independent* inputs live here — the binary (the expensive pickle),
#: probe metadata, and mode flags — pickled once per worker instead of once
#: per shard task.  Data-dependent state (the tail-call graph, the parent's
#: observability switches) travels with each task, so one pool can serve
#: many sample streams (:class:`ShardedProfgenPool`).
_POOL_STATE: Dict[str, object] = {}


def _pool_init(binary, probe_meta, mode, use_inferrer, fast) -> None:
    _POOL_STATE.update(binary=binary, probe_meta=probe_meta, mode=mode,
                       use_inferrer=use_inferrer, fast=fast)


def _pool_worker(entries: List[AggregatedSample],
                 graph: Optional[TailCallGraph],
                 collect_telemetry: bool, collect_events: bool):
    """Build one shard's partial in a pool worker (module-level, picklable).

    When the parent is collecting telemetry/events, the worker collects
    into fresh local sessions and ships them back for merge — parallelism
    must not punch holes in observability (same contract as
    :func:`~repro.pgo.driver._run_pgo_worker`).
    """
    state = _POOL_STATE
    session = (telemetry.enable(telemetry.TelemetrySession())
               if collect_telemetry else None)
    obs_session = obs.install() if collect_events else None
    try:
        partial, inference = _build_partial(
            state["binary"], state["probe_meta"], state["mode"],
            state["use_inferrer"], state["fast"], graph, entries)
    finally:
        if collect_telemetry:
            telemetry.disable()
        if obs_session is not None:
            obs.uninstall()
    events = (obs.events_to_dicts(obs_session.log.events)
              if obs_session is not None else None)
    return partial, inference, session, events


def _run_pool(pool, buckets: List[List[AggregatedSample]],
              graph: Optional[TailCallGraph]
              ) -> List[Tuple[ProfileMap, Optional[Tuple[int, int]]]]:
    """Dispatch shard buckets to ``pool`` and rejoin worker observability.

    ``pool`` is anything with ``submit`` (a :class:`ShardedProfgenPool`,
    which tracks its futures for cancellation, or a bare executor).  On
    *any* interruption while waiting — ``KeyboardInterrupt`` included —
    the not-yet-started shards are cancelled before the exception
    propagates, so a ^C tears the run down promptly instead of draining
    the whole queue first.
    """
    parent_session = telemetry.current()
    parent_obs = obs.active()
    futures = [pool.submit(_pool_worker, bucket, graph,
                           parent_session is not None, parent_obs is not None)
               for bucket in buckets]
    outcomes: List[Tuple[ProfileMap, Optional[Tuple[int, int]]]] = []
    try:
        for future in futures:  # shard order
            partial, inference, session, events = future.result()
            if parent_session is not None and session is not None:
                parent_session.merge(session)
            if parent_obs is not None and events:
                for record in events:
                    fields = {key: value for key, value in record.items()
                              if key not in ("type", "seq", "ts")}
                    parent_obs.emit(record["type"], **fields)
            outcomes.append((partial, inference))
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return outcomes


class ShardedProfileResult:
    """A merged profile plus everything the shards knew about making it."""

    __slots__ = ("profile", "profile_map", "shard_provenance", "inference")

    def __init__(self, profile, profile_map: ProfileMap,
                 shard_provenance: List[Dict[str, object]],
                 inference: Optional[Tuple[int, int]]):
        #: The compiler-consumable profile (FlatProfile / ContextProfile),
        #: byte-identical to a single-shard run's.
        self.profile = profile
        #: The merged :class:`ProfileMap` carrying exact drop accounting.
        self.profile_map = profile_map
        #: One manifest-ready record per shard, in shard order.
        self.shard_provenance = shard_provenance
        #: Summed frame-inference (attempted, recovered), or ``None``.
        self.inference = inference


def generate_sharded_profile(binary: Binary, data: PerfData, mode: str,
                             probe_meta: Optional[ProbeMetadata] = None, *,
                             use_inferrer: bool = True,
                             shards: int = 2, jobs: int = 1,
                             fast: bool = True,
                             pool: "Optional[ShardedProfgenPool]" = None
                             ) -> ShardedProfileResult:
    """Generate a profile from deterministic payload shards and merge.

    ``shards`` fixes the partition (and therefore the per-shard work)
    independently of ``jobs``, which only sets the worker-pool width:
    ``jobs <= 1`` runs every shard in-process — same partials, same merge,
    zero IPC — so shard count alone never changes output bytes, and pool
    dispatch is an execution detail.  ``mode`` is one of
    :data:`SHARDED_MODES`; context_noinf is ``mode="context"`` with
    ``use_inferrer=False``.

    ``pool`` reuses a :class:`ShardedProfgenPool` across calls (worker
    startup and the binary pickle amortize away); it must have been built
    for the same binary and mode flags, or the merge guarantees are void.
    """
    if pool is not None:
        pool.check_compatible(binary, mode, use_inferrer=use_inferrer,
                              fast=fast)
        jobs = pool.jobs
    if mode not in SHARDED_MODES:
        raise ValueError(f"unknown sharded profgen mode {mode!r} "
                         f"(expected one of {SHARDED_MODES})")
    if mode != "dwarf" and probe_meta is None:
        raise ValueError(f"mode {mode!r} requires probe metadata")
    shards = max(1, shards)
    jobs = max(1, min(jobs, shards))
    tel = telemetry.enabled()
    before = _index_stats_snapshot(binary) if tel else {}
    graph: Optional[TailCallGraph] = None
    if mode == "context" and use_inferrer:
        # Built once from the FULL stream; per-shard graphs would repair
        # frames differently and break merged byte-identity.
        graph = TailCallGraph.from_samples(binary, data.samples)
    buckets = partition_entries(data.aggregated(), shards)

    outcomes: List[Tuple[ProfileMap, Optional[Tuple[int, int]]]] = []
    if pool is not None and jobs > 1:
        outcomes = _run_pool(pool, buckets, graph)
    elif jobs > 1:
        with ProcessPoolExecutor(
                max_workers=jobs, initializer=_pool_init,
                initargs=(binary, probe_meta, mode, use_inferrer,
                          fast)) as transient:
            outcomes = _run_pool(transient, buckets, graph)
    else:
        for bucket in buckets:
            outcomes.append(_build_partial(binary, probe_meta, mode,
                                           use_inferrer, fast, graph,
                                           bucket))

    kind = KIND_DWARF_RANGES if mode == "dwarf" else (
        "context" if mode == "context" else FlatProfile.KIND_PROBE)
    merged = ProfileMap.empty(kind, binary_id=binary.identity())
    trie = ContextTrie() if mode == "context" else None
    shard_provenance: List[Dict[str, object]] = []
    attempted = recovered = 0
    saw_inference = False
    for index, (partial, inference) in enumerate(outcomes):
        merged.merge(partial, trie=trie)
        record: Dict[str, object] = {"shard": index}
        record.update(partial.provenance())
        shard_provenance.append(record)
        if inference is not None:
            saw_inference = True
            attempted += inference[0]
            recovered += inference[1]
    if not merged.accounting_consistent():
        raise RuntimeError(
            "sharded merge broke drop accounting: "
            f"used={merged.used_samples} dropped={sum(merged.dropped.values())} "
            f"total={merged.total_samples}")

    if mode == "dwarf":
        profile = dwarf_profile_from_counts(binary, merged.payload)
    else:
        profile = merged.payload
    if tel:
        telemetry.count("correlate", "sharded_profgen_runs")
        telemetry.count("correlate", "sharded_profgen_shards", shards)
        telemetry.count("correlate", "sharded_profgen_jobs", jobs)
        _emit_index_stats(binary, before)
    inference = (attempted, recovered) if saw_inference else None
    return ShardedProfileResult(profile, merged, shard_provenance, inference)


class ShardedProfgenPool:
    """A long-lived worker pool bound to one ``(binary, mode)``.

    A profile service regenerates profiles continuously over the same
    binary; paying worker startup and the binary pickle on every call
    would swamp the unwind work it parallelizes.  This pool pays them
    once: workers are initialized with the data-independent state only,
    and each :func:`generate_sharded_profile` call ships the per-stream
    tail-call graph with its shard tasks — so reusing the pool across
    different sample streams is safe and stays byte-identical to serial.

    Use as a context manager, or call :meth:`close` when done::

        with ShardedProfgenPool(binary, "context", meta, jobs=4) as pool:
            for data in streams:
                out = generate_sharded_profile(binary, data, "context",
                                               meta, shards=8, pool=pool)
    """

    def __init__(self, binary: Binary, mode: str,
                 probe_meta: Optional[ProbeMetadata] = None, *,
                 use_inferrer: bool = True, jobs: int = 2,
                 fast: bool = True):
        if mode not in SHARDED_MODES:
            raise ValueError(f"unknown sharded profgen mode {mode!r} "
                             f"(expected one of {SHARDED_MODES})")
        if mode != "dwarf" and probe_meta is None:
            raise ValueError(f"mode {mode!r} requires probe metadata")
        self.binary_id = binary.identity()
        self.mode = mode
        self.use_inferrer = use_inferrer
        self.fast = fast
        self.jobs = max(2, jobs)
        self.executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_pool_init,
            initargs=(binary, probe_meta, mode, use_inferrer, fast))
        self._outstanding: "set" = set()

    def check_compatible(self, binary: Binary, mode: str, *,
                         use_inferrer: bool, fast: bool) -> None:
        """Reject generation requests the workers were not initialized for."""
        if binary.identity() != self.binary_id:
            raise ValueError(
                f"pool was built for binary {self.binary_id}, "
                f"got {binary.identity()}")
        if (mode, use_inferrer, fast) != (self.mode, self.use_inferrer,
                                          self.fast):
            raise ValueError(
                f"pool was built for mode={self.mode!r} "
                f"use_inferrer={self.use_inferrer} fast={self.fast}, got "
                f"mode={mode!r} use_inferrer={use_inferrer} fast={fast}")

    def submit(self, fn, *args):
        """Submit one task, tracking the future for cancellation."""
        if self.executor is None:
            raise RuntimeError("pool is closed")
        future = self.executor.submit(fn, *args)
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        return future

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down; idempotent.

        With ``cancel`` (the interrupted-shutdown path), outstanding
        futures are cancelled first and the executor is told to drop its
        pending queue — in-flight work finishes, queued work never starts,
        and no cancellation traceback escapes.
        """
        executor = self.executor
        if executor is None:
            return
        self.executor = None
        if cancel:
            for future in list(self._outstanding):
                future.cancel()
        executor.shutdown(wait=True, cancel_futures=cancel)
        self._outstanding.clear()

    def terminate(self) -> None:
        """Cancel everything outstanding and close (SIGINT/SIGTERM path)."""
        self.close(cancel=True)

    def __enter__(self) -> "ShardedProfgenPool":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # An exception unwinding through the pool (KeyboardInterrupt, a
        # failed merge) must not hang on a full work queue: cancel it.
        self.close(cancel=exc_type is not None)
