"""Missing-frame inference for tail calls (paper sec. III.B).

Tail-call elimination removes the caller's frame, so stack samples taken
inside the tail-callee skip the wrapper entirely.  The paper's mitigation:
"build a dynamic call graph that consists of only tail call edges constructed
from LBR samples and do a DFS-search on that graph to find a unique path for a
given pair of parent and child frame" — ambiguous pairs (multiple paths) fail
inference.  The paper observes more than two-thirds of missing frames are
recoverable in practice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..codegen.binary import Binary


class TailCallGraph:
    """Dynamic tail-call graph: edges observed in LBR samples."""

    def __init__(self) -> None:
        #: func -> {target_func -> tailcall instruction addr}
        self.edges: Dict[str, Dict[str, int]] = {}

    def add_edge(self, source_func: str, target_func: str,
                 tailcall_addr: int) -> None:
        self.edges.setdefault(source_func, {})[target_func] = tailcall_addr

    @classmethod
    def from_samples(cls, binary: Binary, samples) -> "TailCallGraph":
        # Deduplicated, order-exact construction.  The naive per-sample walk
        # is last-write-wins per (source_func, target_func) edge; walking the
        # stream *backwards* with first-write-wins produces the identical
        # final edge map, and in that direction repeated LBR payloads are
        # pure no-ops (their edges were already attempted on first sight), so
        # each unique payload — loopy workloads repeat the same window
        # endlessly — is extracted and applied exactly once.
        graph = cls()
        edges = graph.edges
        seen: Set[Tuple[Tuple[int, int], ...]] = set()
        for sample in reversed(samples):
            lbr = sample.lbr
            if lbr in seen:
                continue
            seen.add(lbr)
            for source, target in reversed(lbr):
                if not binary.has_addr(source):
                    continue
                instr = binary.instr_at(source)
                if instr.kind == "tailcall":
                    source_func = instr.func
                    target_func = binary.function_at(target)
                    if source_func and target_func:
                        targets = edges.setdefault(source_func, {})
                        if target_func not in targets:
                            targets[target_func] = source
        return graph


class FrameInferrer:
    """Fills gaps between an expected callee and the observed frame."""

    def __init__(self, graph: TailCallGraph):
        self.graph = graph
        self.attempted = 0
        self.recovered = 0
        self._cache: Dict[Tuple[str, str], Optional[List[Tuple[str, int]]]] = {}

    def infer(self, expected_func: str,
              actual_func: str) -> Optional[List[Tuple[str, int]]]:
        """Frames between ``expected_func`` (what the call targeted) and
        ``actual_func`` (what the next stack frame actually is).

        Returns a root-first list of ``(function, tailcall_addr)`` pairs:
        the call entered ``expected_func``, which tail-called onward at the
        returned addresses until control reached ``actual_func``.  ``None``
        when no path or multiple paths exist (inference failure).
        """
        tel = telemetry.enabled()
        self.attempted += 1
        if tel:
            telemetry.count("correlate", "frame_inference_attempts")
        key = (expected_func, actual_func)
        if key in self._cache:
            result = self._cache[key]
            if result is not None:
                self.recovered += 1
                if tel:
                    telemetry.count("correlate", "frame_inference_recoveries")
            return result
        paths: List[List[Tuple[str, int]]] = []
        self._dfs(expected_func, actual_func, [], set(), paths)
        result = paths[0] if len(paths) == 1 else None
        self._cache[key] = result
        if result is not None:
            self.recovered += 1
            if tel:
                telemetry.count("correlate", "frame_inference_recoveries")
        elif len(paths) > 1 and tel:
            telemetry.count("correlate", "frame_inference_ambiguous")
        return result

    def _dfs(self, current: str, goal: str, path: List[Tuple[str, int]],
             visited: Set[str], out: List[List[Tuple[str, int]]]) -> None:
        if len(out) > 1:
            return  # already ambiguous, stop searching
        if current == goal:
            out.append(list(path))
            return
        visited.add(current)
        for target, addr in self.graph.edges.get(current, {}).items():
            if target in visited:
                continue
            path.append((current, addr))
            self._dfs(target, goal, path, visited, out)
            path.pop()
        visited.discard(current)
