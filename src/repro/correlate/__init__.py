"""Profile generation from raw samples (the llvm-profgen equivalent)."""

from .frame_inferrer import FrameInferrer, TailCallGraph
from .profgen import (RawAggregation, aggregate_samples,
                      context_profile_from_agg, dwarf_profile_from_counts,
                      dwarf_range_counts, generate_context_profile,
                      generate_dwarf_profile, generate_probe_profile,
                      probe_profile_from_agg)
from .sharded import (SHARDED_MODES, ShardedProfgenPool,
                      ShardedProfileResult, generate_sharded_profile,
                      partition_entries)
from .unwinder import (CallSample, PayloadResult, RangeSample, UnwindResult,
                       Unwinder)

__all__ = [
    "CallSample", "FrameInferrer", "PayloadResult", "RangeSample",
    "RawAggregation", "SHARDED_MODES", "ShardedProfgenPool",
    "ShardedProfileResult",
    "TailCallGraph", "UnwindResult", "Unwinder",
    "aggregate_samples", "context_profile_from_agg",
    "dwarf_profile_from_counts", "dwarf_range_counts",
    "generate_context_profile", "generate_dwarf_profile",
    "generate_probe_profile", "generate_sharded_profile",
    "partition_entries", "probe_profile_from_agg",
]
