"""Profile generation from raw samples (the llvm-profgen equivalent)."""

from .frame_inferrer import FrameInferrer, TailCallGraph
from .profgen import (RawAggregation, aggregate_samples,
                      generate_context_profile, generate_dwarf_profile,
                      generate_probe_profile)
from .unwinder import (CallSample, PayloadResult, RangeSample, UnwindResult,
                       Unwinder)

__all__ = [
    "CallSample", "FrameInferrer", "PayloadResult", "RangeSample",
    "RawAggregation", "TailCallGraph", "UnwindResult", "Unwinder",
    "aggregate_samples",
    "generate_context_profile", "generate_dwarf_profile",
    "generate_probe_profile",
]
