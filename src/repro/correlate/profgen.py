"""Profile generation: raw samples -> compiler-consumable profiles.

This is the llvm-profgen equivalent.  Three modes:

* :func:`generate_dwarf_profile` — AutoFDO: attribute range counts to
  (line, discriminator) keys via the DWARF line table, taking the **max**
  over same-line instructions (the heuristic that breaks under code
  duplication, paper sec. III.A(b));
* :func:`generate_probe_profile` — probe-only CSSPGO: attribute range counts
  to pseudo-probe anchors, **summing** duplicated probes (accurate under
  duplication); dangling probes are skipped (count unknown);
* :func:`generate_context_profile` — full CSSPGO: like probe mode, but every
  count lands under the calling context reconstructed by Algorithm 1; the
  physical frame chain from the unwinder is concatenated with each probe's
  self-describing inline chain.

Every mode runs on a **fast path** by default (``fast=True``), built from
four reuse layers (DESIGN.md sec. 9):

1. sample pre-aggregation — :meth:`PerfData.aggregated` deduplicates
   identical ``(lbr, stack)`` payloads so each unique sample is unwound once
   and its counts multiplied (llvm-profgen's pre-aggregated perf input);
2. memoized unwinding — the :class:`Unwinder` caches full ``UnwindResult``s
   per unique payload;
3. precomputed binary indexes — range->probe-record prefix index and
   memoized range/symbolization lookups on :class:`Binary`;
4. interned contexts — a :class:`ContextTrie` interner plus a
   ``context_key`` memo, so symbolization happens once per distinct context.

``fast=False`` runs the original per-sample, rescanning, memo-free
algorithm; differential tests pin both paths to byte-identical output
(dedup-then-multiply is exact because unwinding is deterministic per
payload).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .. import obs, telemetry
from ..codegen.binary import Binary
from ..codegen.probe_metadata import ProbeMetadata
from ..hw.perf_data import AggregatedSample, PerfData
from ..profile.context import ContextKey, ContextTrie, base_context
from ..profile.merge import DwarfRangeCounts
from ..profile.profiles import ContextProfile, FlatProfile
from .frame_inferrer import FrameInferrer, TailCallGraph
from .unwinder import Unwinder


class RawAggregation:
    """Shared first stage: unwound ranges and calls, aggregated by identity."""

    def __init__(self) -> None:
        #: (begin, end, context) -> count
        self.ranges: Counter = Counter()
        #: (call_addr, target_addr, context) -> count
        self.calls: Counter = Counter()
        self.broken_samples = 0
        self.total_samples = 0
        #: Samples discarded entirely (no ranges, no calls), by reason —
        #: mirrored into ``correlate.drop.<reason>`` counters.  Exact:
        #: ``total_samples == used_samples + sum(dropped.values())``.
        self.dropped: Counter = Counter()
        #: Samples that contributed at least one range or call.
        self.used_samples = 0
        #: Distinct (lbr, stack) payloads (only set on the dedup path).
        self.unique_samples = 0
        #: Unwinder cache effectiveness (see :attr:`Unwinder.stats`).
        self.unwinder_stats: Dict[str, int] = {}


def aggregate_samples(binary: Binary, data: Optional[PerfData],
                      use_inferrer: bool = True,
                      dedup: bool = True, *,
                      entries: Optional[List[AggregatedSample]] = None,
                      graph: Optional[TailCallGraph] = None
                      ) -> Tuple[RawAggregation, FrameInferrer]:
    """Unwind every sample and histogram identical ranges/calls.

    With ``dedup=True`` (default) each unique ``(lbr, stack)`` payload is
    unwound once and its ranges/calls credited with the payload's
    multiplicity — exact, because unwinding is deterministic per payload.
    ``dedup=False`` is the per-sample reference path.

    ``entries`` substitutes an explicit payload subset for
    ``data.aggregated()`` — how a shard worker unwinds only its partition
    (``data`` may then be ``None``).  ``graph`` substitutes a prebuilt
    tail-call graph for the one normally derived from ``data.samples``;
    sharded generation builds it once from the *full* stream, because a
    graph built from one shard's payloads would repair frames differently
    and break the byte-identity of the merged profile.
    """
    if entries is not None and not dedup:
        raise ValueError("explicit entries require the dedup path")
    inferrer: Optional[FrameInferrer] = None
    if use_inferrer:
        # The tail-call graph only feeds the inferrer; skip it entirely for
        # context-insensitive modes.
        if graph is None:
            graph = TailCallGraph.from_samples(binary, data.samples)
        inferrer = FrameInferrer(graph)
    unwinder = Unwinder(binary, inferrer, memoize=dedup)
    agg = RawAggregation()
    tel = telemetry.enabled()
    ranges = agg.ranges
    calls = agg.calls
    if dedup:
        if entries is None:
            entries = data.aggregated()
            agg.total_samples = len(data.samples)
        else:
            agg.total_samples = sum(entry.count for entry in entries)
        agg.unique_samples = len(entries)
        for entry in entries:
            count = entry.count
            result = unwinder.unwind_entry(entry)
            if result.broken:
                agg.broken_samples += count
            if result.drop_reason is not None:
                agg.dropped[result.drop_reason] += count
            else:
                agg.used_samples += count
            for key in result.range_keys:
                ranges[key] += count
            for key in result.call_keys:
                calls[key] += count
            if tel and result.events:
                # Replay the payload's events once per represented sample so
                # counters keep their per-sample semantics under dedup.
                for name in result.events:
                    telemetry.count("correlate", name, count)
    else:
        agg.total_samples = len(data.samples)
        for sample in data.samples:
            result = unwinder.unwind(sample)
            if result.broken:
                agg.broken_samples += 1
            if result.drop_reason is not None:
                agg.dropped[result.drop_reason] += 1
            else:
                agg.used_samples += 1
            for r in result.ranges:
                ranges[(r.begin, r.end, r.context)] += 1
            for c in result.calls:
                calls[(c.call_addr, c.target_addr, c.context)] += 1
    agg.unwinder_stats = unwinder.stats
    if tel:
        telemetry.count("correlate", "samples_unwound", agg.total_samples)
        telemetry.count("correlate", "samples_broken", agg.broken_samples)
        telemetry.count("correlate", "samples_used", agg.used_samples)
        for reason, dropped in agg.dropped.items():
            telemetry.count("correlate.drop", reason, dropped)
            obs.emit("samples_dropped", stage="correlate", reason=reason,
                     count=dropped)
        telemetry.count("correlate", "lbr_ranges_attributed",
                        sum(agg.ranges.values()))
        telemetry.count("correlate", "call_transfers_attributed",
                        sum(agg.calls.values()))
        if dedup:
            telemetry.count("correlate", "samples_unique", agg.unique_samples)
        for name, value in unwinder.stats.items():
            if value:
                telemetry.count("correlate.cache", name, value)
    return agg, inferrer


def _index_stats_snapshot(binary: Binary) -> Dict[str, int]:
    return dict(binary.index_stats)


def _emit_index_stats(binary: Binary, before: Dict[str, int]) -> None:
    """Mirror per-run deltas of the binary's persistent index counters."""
    for name, value in binary.index_stats.items():
        delta = value - before.get(name, 0)
        if delta:
            telemetry.count("correlate.cache", name, delta)


# ---------------------------------------------------------------------------
# DWARF (AutoFDO) mode
# ---------------------------------------------------------------------------


def dwarf_range_counts(binary: Binary, agg: RawAggregation,
                       fast: bool = True) -> DwarfRangeCounts:
    """Collapse an aggregation to exact per-address instruction counts and
    per-callsite call-transfer counts — the **additive** DWARF partial
    sharded generation exchanges.  Context is dropped (AutoFDO is
    context-insensitive); the max-heuristic has not run yet, so partials
    merge by plain counter addition."""
    counts = DwarfRangeCounts()
    instr_counts = counts.instr_counts
    in_range = (binary.instructions_in_range if fast
                else binary.scan_instructions_in_range)
    for (begin, end, _ctx), count in agg.ranges.items():
        for minstr in in_range(begin, end):
            instr_counts[minstr.addr] += count
    call_counts = counts.call_counts
    for (call_addr, target_addr, _ctx), count in agg.calls.items():
        call_counts[(call_addr, target_addr)] += count
    return counts


def dwarf_profile_from_counts(binary: Binary,
                              counts: DwarfRangeCounts) -> FlatProfile:
    """Run the max-heuristic collapse on (merged) address-level totals.

    This is the non-additive step: it must see the *complete* per-address
    sums, so sharded generation calls it exactly once, after merging every
    shard's :class:`DwarfRangeCounts`.
    """
    profile = FlatProfile(FlatProfile.KIND_DWARF)
    # Collapse to (function, line, disc) with the max-heuristic.
    for addr, count in counts.instr_counts.items():
        minstr = binary.instr_at(addr)
        if minstr.dloc is None:
            continue
        func = minstr.dloc.leaf_function(minstr.func)
        key = (minstr.dloc.line, minstr.dloc.discriminator)
        profile.get_or_create(func).set_body_max(key, float(count))
    # Head counts and call targets from observed call transfers.
    for (call_addr, target_addr), count in counts.call_counts.items():
        call_instr = binary.instr_at(call_addr)
        callee = binary.function_at(target_addr)
        if callee is None:
            continue
        if binary.symbols[callee].entry_addr == target_addr:
            profile.get_or_create(callee).head += count
        if call_instr.dloc is not None:
            func = call_instr.dloc.leaf_function(call_instr.func)
            key = (call_instr.dloc.line, call_instr.dloc.discriminator)
            profile.get_or_create(func).add_call(key, callee, float(count))
    profile.finalize()
    return profile


def generate_dwarf_profile(binary: Binary, data: PerfData,
                           fast: bool = True) -> FlatProfile:
    tel = telemetry.enabled()
    before = _index_stats_snapshot(binary) if tel else {}
    agg, _ = aggregate_samples(binary, data, use_inferrer=False, dedup=fast)
    profile = dwarf_profile_from_counts(
        binary, dwarf_range_counts(binary, agg, fast=fast))
    if tel:
        _emit_index_stats(binary, before)
    return profile


# ---------------------------------------------------------------------------
# Probe modes
# ---------------------------------------------------------------------------


def _probe_counts(binary: Binary, agg: RawAggregation,
                  use_index: bool = True) -> Tuple[Counter, set]:
    """(context, guid, probe_id, inline_stack) -> count for all anchored
    probes covered by ranges.  Dangling probes get no counts — their counts
    are unknown by construction (paper sec. III.A) — but are reported so the
    annotator can distinguish "unknown" from "cold".

    ``use_index=True`` serves each range from the binary's probe prefix
    index (one contiguous slice, memoized per range) instead of rescanning
    every instruction; record order is identical by construction.
    """
    counts: Counter = Counter()
    dangling: set = set()
    if use_index:
        for (begin, end, ctx), count in agg.ranges.items():
            for record in binary.probe_records_in_range(begin, end):
                if record.dangling:
                    dangling.add((ctx, record.guid, record.probe_id,
                                  record.inline_stack))
                    continue
                counts[(ctx, record.guid, record.probe_id,
                        record.inline_stack)] += count
    else:
        for (begin, end, ctx), count in agg.ranges.items():
            for minstr in binary.scan_instructions_in_range(begin, end):
                for record in minstr.probes:
                    if record.dangling:
                        dangling.add((ctx, record.guid, record.probe_id,
                                      record.inline_stack))
                        continue
                    counts[(ctx, record.guid, record.probe_id,
                            record.inline_stack)] += count
    if telemetry.enabled():
        telemetry.count("correlate", "probe_sites_counted", len(counts))
        telemetry.count("correlate", "dangling_probe_sites", len(dangling))
    return counts, dangling


def _names(binary: Binary, chain: tuple) -> List[Tuple[str, int]]:
    return [(binary.guid_to_name.get(guid, f"guid:{guid:x}"), probe_id)
            for guid, probe_id in chain]


def probe_profile_from_agg(binary: Binary, agg: RawAggregation,
                           probe_meta: ProbeMetadata,
                           fast: bool = True) -> FlatProfile:
    """Build the probe-mode profile from one (partial) aggregation.

    Every count is an additive fold of the aggregation's ranges/calls, so
    the profile this returns is a mergeable partial: summing partials of
    any payload partition reproduces the unpartitioned profile exactly.
    """
    counts, dangling = _probe_counts(binary, agg, use_index=fast)
    profile = FlatProfile(FlatProfile.KIND_PROBE)
    for (_ctx, guid, probe_id, _stack), count in counts.items():
        name = binary.guid_to_name.get(guid)
        if name is None:
            continue
        samples = profile.get_or_create(name)
        samples.add_body(probe_id, float(count))  # duplicates sum up
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
    for (_ctx, guid, probe_id, _stack) in dangling:
        name = binary.guid_to_name.get(guid)
        if name is not None:
            profile.get_or_create(name).dangling.add(probe_id)
    _probe_head_and_calls(binary, agg, probe_meta,
                          lambda name, ctx: profile.get_or_create(name))
    profile.finalize()
    return profile


def generate_probe_profile(binary: Binary, data: PerfData,
                           probe_meta: ProbeMetadata,
                           fast: bool = True) -> FlatProfile:
    """Probe-only CSSPGO: context-insensitive, sum-folded probe counts."""
    tel = telemetry.enabled()
    before = _index_stats_snapshot(binary) if tel else {}
    agg, _ = aggregate_samples(binary, data, use_inferrer=False, dedup=fast)
    profile = probe_profile_from_agg(binary, agg, probe_meta, fast=fast)
    if tel:
        _emit_index_stats(binary, before)
    return profile


def _probe_head_and_calls(binary: Binary, agg: RawAggregation,
                          probe_meta: ProbeMetadata, resolve) -> None:
    """Attribute head counts and call targets; ``resolve(leaf_name, context)``
    returns the FunctionSamples record to credit."""
    for (call_addr, target_addr, ctx), count in agg.calls.items():
        call_instr = binary.instr_at(call_addr)
        callee = binary.function_at(target_addr)
        if callee is None:
            continue
        if not call_instr.call_ctx:
            continue
        lex_guid, probe_id = call_instr.call_ctx[-1]
        lex_name = binary.guid_to_name.get(lex_guid)
        if lex_name is None:
            continue
        caller_samples = resolve(lex_name, (ctx, call_instr.call_ctx[:-1]))
        caller_samples.add_call(probe_id, callee, float(count))
        if binary.symbols[callee].entry_addr == target_addr:
            callee_samples = resolve(
                callee, (ctx, call_instr.call_ctx))
            callee_samples.head += count


def context_profile_from_agg(binary: Binary, agg: RawAggregation,
                             probe_meta: ProbeMetadata,
                             fast: bool = True,
                             trie: Optional[ContextTrie] = None
                             ) -> ContextProfile:
    """Build the context-mode profile from one (partial) aggregation.

    Counts are additive per context, so the result is a mergeable partial
    (see :meth:`~repro.profile.profiles.ContextProfile.merge`).  ``trie``
    supplies the context interner; shard workers each run their own, and
    the parent re-interns keys at merge time to restore canonical-tuple
    identity.
    """
    tel = telemetry.enabled()
    counts, dangling = _probe_counts(binary, agg, use_index=fast)
    profile = ContextProfile()
    if trie is None:
        trie = ContextTrie()
    interned0, intern_hits0 = trie.interned, trie.hits
    #: (ctx, inline_chain, guid) -> (key or None, fallback counter or None).
    memo: Dict[tuple, Tuple[Optional[ContextKey], Optional[str]]] = {}
    memo_hits = 0

    def symbolize(ctx: Optional[tuple], inline_chain: tuple,
                  leaf_guid: int) -> Tuple[Optional[ContextKey], Optional[str]]:
        """Uncached symbolization: (key, fallback-counter-name or None)."""
        leaf_name = binary.guid_to_name.get(leaf_guid)
        if leaf_name is None:
            return None, None
        if ctx is None:
            # Unknown physical context: attribute to the base context.
            return (trie.intern(base_context(leaf_name)),
                    "unknown_context_fallbacks")
        frames: List[Tuple[str, Optional[int]]] = []
        for call_addr in ctx:
            chain = binary.instr_at(call_addr).call_ctx
            if not chain:
                return (trie.intern(base_context(leaf_name)),
                        "unsymbolized_callsite_fallbacks")
            frames.extend(_names(binary, chain))
        frames.extend(_names(binary, inline_chain))
        frames.append((leaf_name, None))
        return trie.intern(frames), None

    def context_key(ctx: Optional[tuple], inline_chain: tuple,
                    leaf_guid: int) -> Optional[ContextKey]:
        nonlocal memo_hits
        if fast:
            cache_key = (ctx, inline_chain, leaf_guid)
            entry = memo.get(cache_key)
            if entry is None:
                entry = symbolize(ctx, inline_chain, leaf_guid)
                memo[cache_key] = entry
            else:
                memo_hits += 1
            key, fallback = entry
        else:
            key, fallback = symbolize(ctx, inline_chain, leaf_guid)
        # Fallbacks are counted per occurrence (memo hits replay them), so
        # memoization is invisible to telemetry.
        if fallback is not None and tel:
            telemetry.count("correlate", fallback)
        return key

    for (ctx, guid, probe_id, inline_stack), count in counts.items():
        key = context_key(ctx, inline_stack, guid)
        if key is None:
            continue
        samples = profile.get_or_create(key)
        samples.add_body(probe_id, float(count))
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
    for (ctx, guid, probe_id, inline_stack) in dangling:
        key = context_key(ctx, inline_stack, guid)
        if key is not None:
            profile.get_or_create(key).dangling.add(probe_id)

    name_to_guid = {n: g for g, n in binary.guid_to_name.items()}

    def resolve(name: str, ctx_pair) -> object:
        ctx, inline_chain = ctx_pair
        guid = name_to_guid.get(name)
        key = context_key(ctx, inline_chain, guid)
        if key is None:
            key = base_context(name)
        samples = profile.get_or_create(key)
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
        return samples

    _probe_head_and_calls(binary, agg, probe_meta, resolve)
    profile.finalize()
    if tel:
        if fast:
            telemetry.count("correlate.cache", "context_key_memo_hits",
                            memo_hits)
            telemetry.count("correlate.cache", "context_key_memo_misses",
                            len(memo))
        telemetry.count("correlate.cache", "contexts_interned",
                        trie.interned - interned0)
        telemetry.count("correlate.cache", "context_intern_hits",
                        trie.hits - intern_hits0)
    return profile


def generate_context_profile(binary: Binary, data: PerfData,
                             probe_meta: ProbeMetadata,
                             use_inferrer: bool = True,
                             fast: bool = True
                             ) -> Tuple[ContextProfile, FrameInferrer]:
    """Full CSSPGO: context-sensitive probe profile via Algorithm 1."""
    tel = telemetry.enabled()
    before = _index_stats_snapshot(binary) if tel else {}
    agg, inferrer = aggregate_samples(binary, data,
                                      use_inferrer=use_inferrer, dedup=fast)
    profile = context_profile_from_agg(binary, agg, probe_meta, fast=fast)
    if tel:
        _emit_index_stats(binary, before)
    return profile, inferrer
