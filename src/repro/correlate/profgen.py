"""Profile generation: raw samples -> compiler-consumable profiles.

This is the llvm-profgen equivalent.  Three modes:

* :func:`generate_dwarf_profile` — AutoFDO: attribute range counts to
  (line, discriminator) keys via the DWARF line table, taking the **max**
  over same-line instructions (the heuristic that breaks under code
  duplication, paper sec. III.A(b));
* :func:`generate_probe_profile` — probe-only CSSPGO: attribute range counts
  to pseudo-probe anchors, **summing** duplicated probes (accurate under
  duplication); dangling probes are skipped (count unknown);
* :func:`generate_context_profile` — full CSSPGO: like probe mode, but every
  count lands under the calling context reconstructed by Algorithm 1; the
  physical frame chain from the unwinder is concatenated with each probe's
  self-describing inline chain.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..codegen.binary import Binary
from ..codegen.probe_metadata import ProbeMetadata
from ..hw.perf_data import PerfData
from ..profile.context import ContextKey, base_context
from ..profile.profiles import ContextProfile, FlatProfile
from .frame_inferrer import FrameInferrer, TailCallGraph
from .unwinder import CallSample, RangeSample, Unwinder


class RawAggregation:
    """Shared first stage: unwound ranges and calls, aggregated by identity."""

    def __init__(self) -> None:
        #: (begin, end, context) -> count
        self.ranges: Counter = Counter()
        #: (call_addr, target_addr, context) -> count
        self.calls: Counter = Counter()
        self.broken_samples = 0
        self.total_samples = 0


def aggregate_samples(binary: Binary, data: PerfData,
                      use_inferrer: bool = True) -> Tuple[RawAggregation, FrameInferrer]:
    """Unwind every sample and histogram identical ranges/calls."""
    graph = TailCallGraph.from_samples(binary, data.samples)
    inferrer = FrameInferrer(graph) if use_inferrer else None
    unwinder = Unwinder(binary, inferrer)
    agg = RawAggregation()
    agg.total_samples = len(data.samples)
    for sample in data.samples:
        result = unwinder.unwind(sample)
        if result.broken:
            agg.broken_samples += 1
        for r in result.ranges:
            agg.ranges[(r.begin, r.end, r.context)] += 1
        for c in result.calls:
            agg.calls[(c.call_addr, c.target_addr, c.context)] += 1
    if telemetry.enabled():
        telemetry.count("correlate", "samples_unwound", agg.total_samples)
        telemetry.count("correlate", "samples_broken", agg.broken_samples)
        telemetry.count("correlate", "lbr_ranges_attributed",
                        sum(agg.ranges.values()))
        telemetry.count("correlate", "call_transfers_attributed",
                        sum(agg.calls.values()))
    return agg, inferrer


# ---------------------------------------------------------------------------
# DWARF (AutoFDO) mode
# ---------------------------------------------------------------------------


def generate_dwarf_profile(binary: Binary, data: PerfData) -> FlatProfile:
    agg, _ = aggregate_samples(binary, data, use_inferrer=False)
    # Per-instruction counts first.
    instr_counts: Counter = Counter()
    for (begin, end, _ctx), count in agg.ranges.items():
        for minstr in binary.instructions_in_range(begin, end):
            instr_counts[minstr.addr] += count
    profile = FlatProfile(FlatProfile.KIND_DWARF)
    # Collapse to (function, line, disc) with the max-heuristic.
    for addr, count in instr_counts.items():
        minstr = binary.instr_at(addr)
        if minstr.dloc is None:
            continue
        func = minstr.dloc.leaf_function(minstr.func)
        key = (minstr.dloc.line, minstr.dloc.discriminator)
        profile.get_or_create(func).set_body_max(key, float(count))
    # Head counts and call targets from observed call transfers.
    for (call_addr, target_addr, _ctx), count in agg.calls.items():
        call_instr = binary.instr_at(call_addr)
        callee = binary.function_at(target_addr)
        if callee is None:
            continue
        if binary.symbols[callee].entry_addr == target_addr:
            profile.get_or_create(callee).head += count
        if call_instr.dloc is not None:
            func = call_instr.dloc.leaf_function(call_instr.func)
            key = (call_instr.dloc.line, call_instr.dloc.discriminator)
            profile.get_or_create(func).add_call(key, callee, float(count))
    profile.finalize()
    return profile


# ---------------------------------------------------------------------------
# Probe modes
# ---------------------------------------------------------------------------


def _probe_counts(binary: Binary, agg: RawAggregation) -> Tuple[Counter, set]:
    """(context, guid, probe_id, inline_stack) -> count for all anchored
    probes covered by ranges.  Dangling probes get no counts — their counts
    are unknown by construction (paper sec. III.A) — but are reported so the
    annotator can distinguish "unknown" from "cold"."""
    counts: Counter = Counter()
    dangling: set = set()
    for (begin, end, ctx), count in agg.ranges.items():
        for minstr in binary.instructions_in_range(begin, end):
            for record in minstr.probes:
                if record.dangling:
                    dangling.add((ctx, record.guid, record.probe_id,
                                  record.inline_stack))
                    continue
                counts[(ctx, record.guid, record.probe_id,
                        record.inline_stack)] += count
    if telemetry.enabled():
        telemetry.count("correlate", "probe_sites_counted", len(counts))
        telemetry.count("correlate", "dangling_probe_sites", len(dangling))
    return counts, dangling


def _names(binary: Binary, chain: tuple) -> List[Tuple[str, int]]:
    return [(binary.guid_to_name.get(guid, f"guid:{guid:x}"), probe_id)
            for guid, probe_id in chain]


def generate_probe_profile(binary: Binary, data: PerfData,
                           probe_meta: ProbeMetadata) -> FlatProfile:
    """Probe-only CSSPGO: context-insensitive, sum-folded probe counts."""
    agg, _ = aggregate_samples(binary, data, use_inferrer=False)
    counts, dangling = _probe_counts(binary, agg)
    profile = FlatProfile(FlatProfile.KIND_PROBE)
    for (_ctx, guid, probe_id, _stack), count in counts.items():
        name = binary.guid_to_name.get(guid)
        if name is None:
            continue
        samples = profile.get_or_create(name)
        samples.add_body(probe_id, float(count))  # duplicates sum up
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
    for (_ctx, guid, probe_id, _stack) in dangling:
        name = binary.guid_to_name.get(guid)
        if name is not None:
            profile.get_or_create(name).dangling.add(probe_id)
    _probe_head_and_calls(binary, agg, probe_meta,
                          lambda name, ctx: profile.get_or_create(name))
    profile.finalize()
    return profile


def _probe_head_and_calls(binary: Binary, agg: RawAggregation,
                          probe_meta: ProbeMetadata, resolve) -> None:
    """Attribute head counts and call targets; ``resolve(leaf_name, context)``
    returns the FunctionSamples record to credit."""
    for (call_addr, target_addr, ctx), count in agg.calls.items():
        call_instr = binary.instr_at(call_addr)
        callee = binary.function_at(target_addr)
        if callee is None:
            continue
        if not call_instr.call_ctx:
            continue
        lex_guid, probe_id = call_instr.call_ctx[-1]
        lex_name = binary.guid_to_name.get(lex_guid)
        if lex_name is None:
            continue
        caller_samples = resolve(lex_name, (ctx, call_instr.call_ctx[:-1]))
        caller_samples.add_call(probe_id, callee, float(count))
        if binary.symbols[callee].entry_addr == target_addr:
            callee_samples = resolve(
                callee, (ctx, call_instr.call_ctx))
            callee_samples.head += count


def generate_context_profile(binary: Binary, data: PerfData,
                             probe_meta: ProbeMetadata,
                             use_inferrer: bool = True
                             ) -> Tuple[ContextProfile, FrameInferrer]:
    """Full CSSPGO: context-sensitive probe profile via Algorithm 1."""
    agg, inferrer = aggregate_samples(binary, data, use_inferrer=use_inferrer)
    counts, dangling = _probe_counts(binary, agg)
    profile = ContextProfile()

    def context_key(ctx: Optional[tuple], inline_chain: tuple,
                    leaf_guid: int) -> Optional[ContextKey]:
        leaf_name = binary.guid_to_name.get(leaf_guid)
        if leaf_name is None:
            return None
        frames: List[Tuple[str, Optional[int]]] = []
        if ctx is None:
            # Unknown physical context: attribute to the base context.
            telemetry.count("correlate", "unknown_context_fallbacks")
            return base_context(leaf_name)
        for call_addr in ctx:
            chain = binary.instr_at(call_addr).call_ctx
            if not chain:
                telemetry.count("correlate", "unsymbolized_callsite_fallbacks")
                return base_context(leaf_name)
            frames.extend(_names(binary, chain))
        frames.extend(_names(binary, inline_chain))
        return tuple(frames) + ((leaf_name, None),)

    for (ctx, guid, probe_id, inline_stack), count in counts.items():
        key = context_key(ctx, inline_stack, guid)
        if key is None:
            continue
        samples = profile.get_or_create(key)
        samples.add_body(probe_id, float(count))
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
    for (ctx, guid, probe_id, inline_stack) in dangling:
        key = context_key(ctx, inline_stack, guid)
        if key is not None:
            profile.get_or_create(key).dangling.add(probe_id)

    name_to_guid = {n: g for g, n in binary.guid_to_name.items()}

    def resolve(name: str, ctx_pair) -> object:
        ctx, inline_chain = ctx_pair
        guid = name_to_guid.get(name)
        key = context_key(ctx, inline_chain, guid)
        if key is None:
            key = base_context(name)
        samples = profile.get_or_create(key)
        if samples.checksum is None:
            samples.checksum = probe_meta.checksums.get(guid)
        return samples

    _probe_head_and_calls(binary, agg, probe_meta, resolve)
    profile.finalize()
    return profile, inferrer
