"""Algorithm 1: reconstruct calling contexts from synchronized LBR + stack
samples (paper sec. III.B).

The unwinder processes one :class:`~repro.hw.perf_data.PerfSample` at a time.
LBR branches are walked in **reverse execution order**, maintaining the
synchronized stack: walking back over a *call* pops the frame it created,
walking back over a *return* re-enters the function it returned from, and
walking back over a *tail call* swaps the replaced frame back in.  Between
each pair of adjacent LBR entries lies one linear execution range, attributed
to the context the stack held at that time.

The calling context is kept as a root-first tuple of **call-site instruction
addresses** — symbolization to names/probe ids happens in profgen.  The
initial context comes from the stack sample; missing tail-call frames are
repaired by the :class:`~repro.correlate.frame_inferrer.FrameInferrer`
before unwinding (the inline-frame expansion of Algorithm 1's pseudocode is
carried by each probe's self-describing inline chain instead — see
DESIGN.md sec. 5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import telemetry
from ..codegen.binary import Binary
from ..hw.perf_data import PerfSample
from .frame_inferrer import FrameInferrer

Context = Tuple[int, ...]  # call-site instruction addresses, root first


class RangeSample:
    """One linear execution range under one calling context."""

    __slots__ = ("begin", "end", "context")

    def __init__(self, begin: int, end: int, context: Context):
        self.begin = begin
        self.end = end
        self.context = context


class CallSample:
    """One observed call/tailcall transfer under a calling context."""

    __slots__ = ("call_addr", "target_addr", "context")

    def __init__(self, call_addr: int, target_addr: int, context: Context):
        self.call_addr = call_addr
        self.target_addr = target_addr
        self.context = context


class UnwindResult:
    __slots__ = ("ranges", "calls", "broken")

    def __init__(self) -> None:
        self.ranges: List[RangeSample] = []
        self.calls: List[CallSample] = []
        #: True when the stack sample was inconsistent with LBR contents
        #: (e.g. skid) and context reconstruction was abandoned part-way.
        self.broken = False


class Unwinder:
    """Per-binary sample unwinder with memoized stack conversion."""

    def __init__(self, binary: Binary,
                 inferrer: Optional[FrameInferrer] = None):
        self.binary = binary
        self.inferrer = inferrer
        self._stack_cache: dict = {}

    # -- initial context from the stack sample -----------------------------
    def context_from_stack(self, stack: Tuple[int, ...]) -> Optional[Context]:
        """Convert a leaf-first stack sample to a root-first callsite tuple.

        Each return address maps to the call instruction preceding it;
        tail-call gaps (call target != observed callee frame) are repaired
        with inferred frames when possible.
        """
        cached = self._stack_cache.get(stack)
        if cached is not None or stack in self._stack_cache:
            return cached
        binary = self.binary
        callsites: List[int] = []
        # stack[0] is the leaf IP; deeper entries are return addresses.
        for ret_addr in reversed(stack[1:]):  # root first
            call_instr = self._call_before(ret_addr)
            if call_instr is None:
                telemetry.count("correlate", "stack_conversion_failures")
                self._stack_cache[stack] = None
                return None
            callsites.append(call_instr.addr)
        # Tail-call repair: walk root->leaf checking that each call's target
        # matches the function of the next-deeper frame.
        if self.inferrer is not None:
            callsites = self._repair(callsites, leaf_ip=stack[0])
            if callsites is None:
                telemetry.count("correlate", "stack_conversion_failures")
                self._stack_cache[stack] = None
                return None
        context = tuple(callsites)
        self._stack_cache[stack] = context
        return context

    def _call_before(self, ret_addr: int):
        binary = self.binary
        if not binary.has_addr(ret_addr):
            return None
        idx = binary.index_of(ret_addr)
        if idx == 0:
            return None
        call_instr = binary.instrs[idx - 1]
        if call_instr.kind not in ("call", "tailcall"):
            return None
        return call_instr

    def _repair(self, callsites: List[int], leaf_ip: int) -> Optional[List[int]]:
        binary = self.binary
        repaired: List[int] = []
        for depth, addr in enumerate(callsites):
            repaired.append(addr)
            call_instr = binary.instr_at(addr)
            expected = call_instr.a  # callee name
            if depth + 1 < len(callsites):
                deeper = binary.function_at(callsites[depth + 1])
            else:
                deeper = binary.function_at(leaf_ip)
            if deeper is None:
                return None
            if expected == deeper:
                continue
            inferred = self.inferrer.infer(expected, deeper)
            if inferred is None:
                return None
            for _func, tailcall_addr in inferred:
                repaired.append(tailcall_addr)
        return repaired

    # -- Algorithm 1 ---------------------------------------------------------
    def unwind(self, sample: PerfSample) -> UnwindResult:
        """Walk the LBR newest-to-oldest, emitting execution ranges.

        Invariant: entering the loop iteration for branch ``b``, the working
        context reflects the program state *between ``b`` and the next-later
        branch* (all later branches have been walked back over).  The range
        ``[b.target, later.source]`` therefore gets the current context, and
        only afterwards is the context adjusted for ``b`` itself: a call or
        tail call pops the frame it created, a return re-enters the function
        it had left.
        """
        result = UnwindResult()
        binary = self.binary
        initial = self.context_from_stack(sample.stack)
        if initial is None:
            result.broken = True
        #: None = unknown context (stack/LBR inconsistency, e.g. skid).
        context_list: Optional[List[int]] = (
            list(initial) if initial is not None else None)

        prev_branch: Optional[Tuple[int, int]] = None
        for source, target in reversed(sample.lbr):
            if not binary.has_addr(source) or not binary.has_addr(target):
                telemetry.count("correlate", "lbr_entries_outside_binary")
                result.broken = True
                context_list = None
                prev_branch = (source, target)
                continue
            kind = binary.instr_at(source).kind
            # 1. Emit the range executed after this branch.
            if prev_branch is not None:
                begin, end = target, prev_branch[0]
                if (begin <= end
                        and binary.function_at(begin) == binary.function_at(end)):
                    ctx = tuple(context_list) if context_list is not None else None
                    result.ranges.append(RangeSample(begin, end, ctx))
                else:
                    # Cross-function or inverted range: not a linear run.
                    telemetry.count("correlate", "lbr_ranges_discarded")
            # 2. Walk back over this branch.
            if kind in ("call", "tailcall"):
                if context_list is not None:
                    if context_list and context_list[-1] == source:
                        context_list.pop()
                    else:
                        # Skid or truncated stack: context is unusable from
                        # here back in time.
                        telemetry.count("correlate", "skid_context_aborts")
                        result.broken = True
                        context_list = None
                # The call sample carries the *caller's* context.
                ctx = tuple(context_list) if context_list is not None else None
                result.calls.append(CallSample(source, target, ctx))
            elif kind == "ret":
                if context_list is not None:
                    call_instr = self._call_before(target)
                    if call_instr is None:
                        telemetry.count("correlate", "ret_without_callsite")
                        result.broken = True
                        context_list = None
                    else:
                        context_list.append(call_instr.addr)
            prev_branch = (source, target)
        return result
