"""Algorithm 1: reconstruct calling contexts from synchronized LBR + stack
samples (paper sec. III.B).

The unwinder processes one :class:`~repro.hw.perf_data.PerfSample` at a time.
LBR branches are walked in **reverse execution order**, maintaining the
synchronized stack: walking back over a *call* pops the frame it created,
walking back over a *return* re-enters the function it returned from, and
walking back over a *tail call* swaps the replaced frame back in.  Between
each pair of adjacent LBR entries lies one linear execution range, attributed
to the context the stack held at that time.

The calling context is kept as a root-first tuple of **call-site instruction
addresses** — symbolization to names/probe ids happens in profgen.  The
initial context comes from the stack sample; missing tail-call frames are
repaired by the :class:`~repro.correlate.frame_inferrer.FrameInferrer`
before unwinding (the inline-frame expansion of Algorithm 1's pseudocode is
carried by each probe's self-describing inline chain instead — see
DESIGN.md sec. 5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import telemetry
from ..codegen.binary import Binary
from ..hw.perf_data import PerfSample
from .frame_inferrer import FrameInferrer

Context = Tuple[int, ...]  # call-site instruction addresses, root first


class RangeSample:
    """One linear execution range under one calling context."""

    __slots__ = ("begin", "end", "context")

    def __init__(self, begin: int, end: int, context: Context):
        self.begin = begin
        self.end = end
        self.context = context


class CallSample:
    """One observed call/tailcall transfer under a calling context."""

    __slots__ = ("call_addr", "target_addr", "context")

    def __init__(self, call_addr: int, target_addr: int, context: Context):
        self.call_addr = call_addr
        self.target_addr = target_addr
        self.context = context


class UnwindResult:
    __slots__ = ("ranges", "calls", "broken", "events", "drop_reason")

    def __init__(self) -> None:
        self.ranges: List[RangeSample] = []
        self.calls: List[CallSample] = []
        #: True when the stack sample was inconsistent with LBR contents
        #: (e.g. skid) and context reconstruction was abandoned part-way.
        self.broken = False
        #: Telemetry counter names recorded while unwinding, one entry per
        #: event (None until the first event — events are rare).  Kept on
        #: the result rather than emitted inline so a memoized result can
        #: replay its events for every sample it stands for.
        self.events: Optional[List[str]] = None
        #: Non-None when the sample yielded *nothing* usable (no ranges, no
        #: calls): the ``correlate.drop.<reason>`` bucket it falls in.
        #: Broken-but-partially-usable samples keep ``drop_reason=None`` —
        #: they degrade (context-less attribution), they are not discarded.
        self.drop_reason: Optional[str] = None

    def note(self, name: str) -> None:
        if self.events is None:
            self.events = []
        self.events.append(name)


#: Sentinel distinguishing "not cached" from a cached ``None`` conversion.
_MISSING = object()


class PayloadResult:
    """Compact unwind of one unique payload: key tuples, no sample objects.

    ``range_keys`` holds ``(begin, end, context)`` and ``call_keys``
    ``(call_addr, target_addr, context)`` — exactly the histogram keys
    :func:`~repro.correlate.profgen.aggregate_samples` needs, so crediting a
    deduplicated payload is a plain ``counter[key] += count`` per entry.
    """

    __slots__ = ("range_keys", "call_keys", "broken", "events", "drop_reason")

    def __init__(self) -> None:
        self.range_keys: List[Tuple[int, int, Optional[Context]]] = []
        self.call_keys: List[Tuple[int, int, Optional[Context]]] = []
        self.broken = False
        self.events: Optional[List[str]] = None
        #: See :attr:`UnwindResult.drop_reason`.
        self.drop_reason: Optional[str] = None

    def note(self, name: str) -> None:
        if self.events is None:
            self.events = []
        self.events.append(name)


class Unwinder:
    """Per-binary sample unwinder with memoized stack conversion and
    (optionally) memoized full unwinds.

    With ``memoize=True`` the complete :class:`UnwindResult` is cached per
    unique ``(lbr, stack)`` payload: unwinding is deterministic given the
    binary and inferrer, so identical payloads — the common case for loopy
    workloads — are walked once.  ``stats`` tracks cache effectiveness.
    """

    def __init__(self, binary: Binary,
                 inferrer: Optional[FrameInferrer] = None,
                 memoize: bool = False):
        self.binary = binary
        self.inferrer = inferrer
        self.memoize = memoize
        self._stack_cache: dict = {}
        self._result_cache: dict = {}
        # Pure per-branch lookups memoized across payloads (the same branch
        # pairs recur in every sliding LBR window of a loop):
        #: (source, target) -> instr kind, or None when outside the binary.
        self._branch_kind: dict = {}
        #: (begin, end) -> is this a linear single-function range?
        self._range_ok: dict = {}
        #: return target -> preceding call-site addr, or None.
        self._ret_site: dict = {}
        self.stats = {"unwind_hits": 0, "unwind_misses": 0,
                      "stack_hits": 0, "stack_misses": 0}

    # -- initial context from the stack sample -----------------------------
    def context_from_stack(self, stack: Tuple[int, ...]) -> Optional[Context]:
        """Convert a leaf-first stack sample to a root-first callsite tuple.

        Each return address maps to the call instruction preceding it;
        tail-call gaps (call target != observed callee frame) are repaired
        with inferred frames when possible.
        """
        cached = self._stack_cache.get(stack, _MISSING)
        if cached is not _MISSING:
            self.stats["stack_hits"] += 1
            return cached
        self.stats["stack_misses"] += 1
        if not stack:
            # Truncated to nothing (fault or collection failure): there is
            # no leaf IP to anchor repair on, so no context can be built.
            if telemetry.enabled():
                telemetry.count("correlate", "stack_conversion_failures")
            self._stack_cache[stack] = None
            return None
        callsites: List[int] = []
        # stack[0] is the leaf IP; deeper entries are return addresses.
        for ret_addr in reversed(stack[1:]):  # root first
            call_instr = self._call_before(ret_addr)
            if call_instr is None:
                if telemetry.enabled():
                    telemetry.count("correlate", "stack_conversion_failures")
                self._stack_cache[stack] = None
                return None
            callsites.append(call_instr.addr)
        # Tail-call repair: walk root->leaf checking that each call's target
        # matches the function of the next-deeper frame.
        if self.inferrer is not None:
            callsites = self._repair(callsites, leaf_ip=stack[0])
            if callsites is None:
                if telemetry.enabled():
                    telemetry.count("correlate", "stack_conversion_failures")
                self._stack_cache[stack] = None
                return None
        context = tuple(callsites)
        self._stack_cache[stack] = context
        return context

    def _call_before(self, ret_addr: int):
        binary = self.binary
        if not binary.has_addr(ret_addr):
            return None
        idx = binary.index_of(ret_addr)
        if idx == 0:
            return None
        call_instr = binary.instrs[idx - 1]
        if call_instr.kind not in ("call", "tailcall"):
            return None
        return call_instr

    def _repair(self, callsites: List[int], leaf_ip: int) -> Optional[List[int]]:
        binary = self.binary
        repaired: List[int] = []
        for depth, addr in enumerate(callsites):
            repaired.append(addr)
            call_instr = binary.instr_at(addr)
            expected = call_instr.a  # callee name
            if depth + 1 < len(callsites):
                deeper = binary.function_at(callsites[depth + 1])
            else:
                deeper = binary.function_at(leaf_ip)
            if deeper is None:
                return None
            if expected == deeper:
                continue
            inferred = self.inferrer.infer(expected, deeper)
            if inferred is None:
                return None
            for _func, tailcall_addr in inferred:
                repaired.append(tailcall_addr)
        return repaired

    # -- Algorithm 1 ---------------------------------------------------------
    def unwind(self, sample: PerfSample) -> UnwindResult:
        """Unwind one sample, emitting its telemetry events.

        With memoization on, identical ``(lbr, stack)`` payloads hit the
        shared compact result; recorded events are replayed into telemetry
        on every call so per-sample counter semantics are unchanged by
        caching.
        """
        if self.memoize:
            payload = self.unwind_payload(sample)
            result = UnwindResult()
            result.broken = payload.broken
            result.events = payload.events
            result.drop_reason = payload.drop_reason
            result.ranges = [RangeSample(*key) for key in payload.range_keys]
            result.calls = [CallSample(*key) for key in payload.call_keys]
        else:
            result = self._unwind_uncached(sample)
        if result.events and telemetry.enabled():
            for name in result.events:
                telemetry.count("correlate", name)
        return result

    def unwind_entry(self, entry) -> PayloadResult:
        """Compact unwind of one aggregated entry (the dedup path).

        Pre-aggregation guarantees each unique payload reaches this loop
        exactly once, so the per-payload result memo of
        :meth:`unwind_payload` can never hit here — storing into it was
        dead weight.  This entry point skips the cache entirely and
        accounts reuse directly: the one real walk is a miss, and the
        ``entry.count - 1`` further samples the payload stands for are
        hits (unwinds served by payload reuse instead of a walk) —
        the same semantics the per-sample memo reports, so the hit rate
        equals ``1 - unique_ratio`` on any workload.
        """
        self.stats["unwind_misses"] += 1
        if entry.count > 1:
            self.stats["unwind_hits"] += entry.count - 1
        return self._unwind_fast(entry.sample)

    def unwind_payload(self, sample: PerfSample) -> PayloadResult:
        """Compact unwind of ``sample``'s payload, memoized per unique
        ``(lbr, stack)``.  Does *not* emit telemetry events — callers
        aggregating deduplicated samples scale ``result.events`` by the
        payload's multiplicity themselves."""
        if not self.memoize:
            return self._unwind_fast(sample)
        key = (sample.lbr, sample.stack)
        result = self._result_cache.get(key)
        if result is not None:
            self.stats["unwind_hits"] += 1
            return result
        self.stats["unwind_misses"] += 1
        result = self._unwind_fast(sample)
        self._result_cache[key] = result
        return result

    def _unwind_fast(self, sample: PerfSample) -> PayloadResult:
        """Cache-accelerated Algorithm 1 (same walk as
        :meth:`_unwind_uncached`, which stays as the memo-free reference;
        differential tests pin the two bit-for-bit).

        Every per-branch decision is a pure function of the binary, so it is
        memoized across payloads: branch classification, range linearity,
        and return-site lookup each collapse to one dict probe.  The working
        context keeps a lazily refreshed tuple mirror so repeated range
        emissions under an unchanged context reuse one tuple.
        """
        result = PayloadResult()
        range_keys = result.range_keys
        call_keys = result.call_keys
        branch_kind = self._branch_kind
        range_ok = self._range_ok
        ret_site = self._ret_site
        addr_index = self.binary._addr_to_index
        instrs = self.binary.instrs
        function_at = self.binary.function_at

        initial = self.context_from_stack(sample.stack)
        if initial is None:
            result.broken = True
        context_list: Optional[List[int]] = (
            list(initial) if initial is not None else None)
        #: Tuple mirror of context_list; None = stale (rebuild on demand).
        context_tuple: Optional[Context] = initial

        valid_branches = 0
        prev_source = -1  # source addr of the next-later branch, -1 = none
        for source, target in reversed(sample.lbr):
            kind = branch_kind.get((source, target), _MISSING)
            if kind is _MISSING:
                if source in addr_index and target in addr_index:
                    kind = instrs[addr_index[source]].kind
                else:
                    kind = None
                branch_kind[(source, target)] = kind
            if kind is None:
                result.note("lbr_entries_outside_binary")
                result.broken = True
                context_list = None
                prev_source = source
                continue
            valid_branches += 1
            # 1. Emit the range executed after this branch.
            if prev_source >= 0:
                key = (target, prev_source)
                ok = range_ok.get(key, _MISSING)
                if ok is _MISSING:
                    ok = (target <= prev_source
                          and function_at(target) == function_at(prev_source))
                    range_ok[key] = ok
                if ok:
                    if context_list is None:
                        range_keys.append((target, prev_source, None))
                    else:
                        if context_tuple is None:
                            context_tuple = tuple(context_list)
                        range_keys.append((target, prev_source, context_tuple))
                else:
                    # Cross-function or inverted range: not a linear run.
                    result.note("lbr_ranges_discarded")
            # 2. Walk back over this branch.
            if kind == "call" or kind == "tailcall":
                if context_list is not None:
                    if context_list and context_list[-1] == source:
                        context_list.pop()
                        context_tuple = None
                    else:
                        # Skid or truncated stack: context is unusable from
                        # here back in time.
                        result.note("skid_context_aborts")
                        result.broken = True
                        context_list = None
                # The call sample carries the *caller's* context.
                if context_list is None:
                    call_keys.append((source, target, None))
                else:
                    if context_tuple is None:
                        context_tuple = tuple(context_list)
                    call_keys.append((source, target, context_tuple))
            elif kind == "ret":
                if context_list is not None:
                    site = ret_site.get(target, _MISSING)
                    if site is _MISSING:
                        call_instr = self._call_before(target)
                        site = None if call_instr is None else call_instr.addr
                        ret_site[target] = site
                    if site is None:
                        result.note("ret_without_callsite")
                        result.broken = True
                        context_list = None
                    else:
                        context_list.append(site)
                        context_tuple = None
            prev_source = source
        if not range_keys and not call_keys:
            result.drop_reason = _classify_drop(sample.lbr, valid_branches)
        return result

    def _unwind_uncached(self, sample: PerfSample) -> UnwindResult:
        """Walk the LBR newest-to-oldest, emitting execution ranges.

        Invariant: entering the loop iteration for branch ``b``, the working
        context reflects the program state *between ``b`` and the next-later
        branch* (all later branches have been walked back over).  The range
        ``[b.target, later.source]`` therefore gets the current context, and
        only afterwards is the context adjusted for ``b`` itself: a call or
        tail call pops the frame it created, a return re-enters the function
        it had left.
        """
        result = UnwindResult()
        binary = self.binary
        initial = self.context_from_stack(sample.stack)
        if initial is None:
            result.broken = True
        #: None = unknown context (stack/LBR inconsistency, e.g. skid).
        context_list: Optional[List[int]] = (
            list(initial) if initial is not None else None)

        valid_branches = 0
        prev_branch: Optional[Tuple[int, int]] = None
        for source, target in reversed(sample.lbr):
            if not binary.has_addr(source) or not binary.has_addr(target):
                result.note("lbr_entries_outside_binary")
                result.broken = True
                context_list = None
                prev_branch = (source, target)
                continue
            valid_branches += 1
            kind = binary.instr_at(source).kind
            # 1. Emit the range executed after this branch.
            if prev_branch is not None:
                begin, end = target, prev_branch[0]
                if (begin <= end
                        and binary.function_at(begin) == binary.function_at(end)):
                    ctx = tuple(context_list) if context_list is not None else None
                    result.ranges.append(RangeSample(begin, end, ctx))
                else:
                    # Cross-function or inverted range: not a linear run.
                    result.note("lbr_ranges_discarded")
            # 2. Walk back over this branch.
            if kind in ("call", "tailcall"):
                if context_list is not None:
                    if context_list and context_list[-1] == source:
                        context_list.pop()
                    else:
                        # Skid or truncated stack: context is unusable from
                        # here back in time.
                        result.note("skid_context_aborts")
                        result.broken = True
                        context_list = None
                # The call sample carries the *caller's* context.
                ctx = tuple(context_list) if context_list is not None else None
                result.calls.append(CallSample(source, target, ctx))
            elif kind == "ret":
                if context_list is not None:
                    call_instr = self._call_before(target)
                    if call_instr is None:
                        result.note("ret_without_callsite")
                        result.broken = True
                        context_list = None
                    else:
                        context_list.append(call_instr.addr)
            prev_branch = (source, target)
        if not result.ranges and not result.calls:
            result.drop_reason = _classify_drop(sample.lbr, valid_branches)
        return result


def _classify_drop(lbr: Tuple[Tuple[int, int], ...],
                   valid_branches: int) -> str:
    """Bucket a sample that produced no ranges and no calls.

    ``empty_lbr`` — nothing to walk (truncated ring); ``lbr_outside_binary``
    — every entry referenced addresses outside the binary (corruption or a
    different build); ``no_linear_ranges`` — entries were valid but no
    usable linear range or call transfer fell out of the walk.
    """
    if not lbr:
        return "empty_lbr"
    if valid_branches == 0:
        return "lbr_outside_binary"
    return "no_linear_ranges"
