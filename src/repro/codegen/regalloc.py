"""Register allocation: profile-guided spill selection.

This models the PGO mechanism the paper cares about (sec. III.B: inaccurate
post-inline profile "potentially causing sub-optimal spill placement"): with
``NUM_PHYS_REGS`` physical registers, functions whose block-level register
pressure exceeds the budget must spill some virtual registers to stack slots.

The allocator ranks registers by *profile-weighted* usage — the sum of the
annotated counts of every block that touches the register (falling back to a
static loop-depth estimate when no profile is annotated) — and spills the
cheapest registers until every block's pressure fits.  When the annotated
profile is wrong (e.g. context-insensitively scaled post-inline counts), hot
registers get spilled and every dynamic use pays a memory access: exactly how
bad profiles turn into lost cycles.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.cfg import natural_loops
from ..ir.function import Function
from ..ir.instructions import PseudoProbe
from ..opt.liveness import compute_liveness

#: Physical integer register budget (callee/caller-saved distinction elided).
NUM_PHYS_REGS = 12


def _static_block_weights(fn: Function) -> Dict[str, float]:
    """Loop-depth-based frequency estimate: 10^depth."""
    depth: Dict[str, int] = {b.label: 0 for b in fn.blocks}
    for loop in natural_loops(fn):
        for label in loop.body:
            depth[label] = depth.get(label, 0) + 1
    return {label: float(10 ** min(d, 4)) for label, d in depth.items()}


def block_frequencies(fn: Function) -> Dict[str, float]:
    """Annotated counts when available, else the static estimate."""
    if any(b.count is not None for b in fn.blocks):
        return {b.label: (b.count or 0.0) for b in fn.blocks}
    return _static_block_weights(fn)


def spill_weights(fn: Function) -> Dict[str, float]:
    """Per-register spill cost: profile-weighted number of touches."""
    freqs = block_frequencies(fn)
    weights: Dict[str, float] = {}
    for block in fn.blocks:
        freq = freqs.get(block.label, 0.0)
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe):
                continue
            touched = list(instr.uses())
            defined = instr.defined()
            if defined is not None:
                touched.append(defined)
            for reg in touched:
                weights[reg] = weights.get(reg, 0.0) + freq + 0.001
    for param in fn.params:
        weights.setdefault(param, 0.001)
    return weights


def _block_peak_live(fn: Function, live_out: Dict[str, Set[str]],
                     spilled: Set[str]) -> Dict[str, Set[str]]:
    """Per block: the register set live at the point of maximum pressure.

    Point-accurate within a block (backward walk), so short-lived temporaries
    (e.g. if-conversion's speculation registers, dead immediately after their
    select) do not inflate pressure the way block-granularity sets would.
    """
    peaks: Dict[str, Set[str]] = {}
    for block in fn.blocks:
        live = set(live_out[block.label]) - spilled
        peak = set(live)
        for instr in reversed(block.instrs):
            if isinstance(instr, PseudoProbe):
                continue
            defined = instr.defined()
            if defined is not None:
                live.discard(defined)
            for reg in instr.uses():
                if reg not in spilled:
                    live.add(reg)
            if len(live) > len(peak):
                peak = set(live)
        peaks[block.label] = peak
    return peaks


def choose_spills(fn: Function, num_regs: int = NUM_PHYS_REGS) -> List[str]:
    """Registers to spill so point register pressure fits ``num_regs``.

    While any program point holds more than ``num_regs`` values live, the
    cheapest (by profile-weighted use count) register live at the worst point
    is spilled.  Spilled registers live in stack slots; their reload
    temporaries are transient and excluded from pressure.
    """
    liveness = compute_liveness(fn)
    weights = spill_weights(fn)
    spilled: Set[str] = set()
    while True:
        peaks = _block_peak_live(fn, liveness.live_out, spilled)
        worst = max(peaks.values(), key=len, default=set())
        if len(worst) <= num_regs:
            return sorted(spilled)
        victim = min(worst, key=lambda r: weights.get(r, 0.0))
        spilled.add(victim)
