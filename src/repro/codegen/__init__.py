"""Code generation: lowering, linking, debug/probe sections, sizes."""

from .binary import TEXT_BASE, Binary, FunctionSymbol, link
from .dwarf import DwarfInfo, LineRow, build_dwarf
from .lower import LowerConfig, lower_function, lower_module
from .mir import INSTR_SIZES, MBlock, MFunction, MInstr, ProbeRecord
from .probe_metadata import ProbeAnchor, ProbeMetadata, build_probe_metadata
from .regalloc import (NUM_PHYS_REGS, block_frequencies, choose_spills,
                       spill_weights)
from .sizes import BinarySizes, measure_sizes

__all__ = [
    "Binary", "BinarySizes", "DwarfInfo", "FunctionSymbol", "INSTR_SIZES",
    "LineRow", "LowerConfig", "MBlock", "MFunction", "MInstr",
    "NUM_PHYS_REGS", "ProbeAnchor", "ProbeMetadata", "ProbeRecord",
    "TEXT_BASE", "block_frequencies", "build_dwarf", "build_probe_metadata",
    "choose_spills", "link", "lower_function", "lower_module",
    "measure_sizes", "spill_weights",
]
