"""The linked binary: addressed machine code plus symbolization queries.

Layout policy (what function splitting + profile-guided function ordering
give the paper's variants):

* functions are placed hottest-first when entry counts are known (original
  module order otherwise);
* every function's cold blocks (marked by the hot/cold splitter) are exiled
  to a ``.text.cold`` region placed after *all* hot text, so cold paths stop
  polluting the instruction cache.

The binary also exposes the queries the profiling stack needs: instruction at
an address, next instruction address (Algorithm 1's ``NextInstrAddr``),
enclosing function, DWARF line rows, and pseudo-probe records.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from ..ir.function import Module
from .lower import LowerConfig, lower_module
from .mir import MFunction, MInstr, ProbeRecord

#: Base address of the text section (arbitrary, nonzero for realism).
TEXT_BASE = 0x400000


class FunctionSymbol:
    """Symbol-table entry: where a function lives in the binary."""

    __slots__ = ("name", "guid", "entry_addr", "hot_range", "cold_range",
                 "params", "local_arrays", "entry_count", "num_instrs")

    def __init__(self, name: str, guid: int):
        self.name = name
        self.guid = guid
        self.entry_addr = -1
        self.hot_range: Tuple[int, int] = (0, 0)
        self.cold_range: Optional[Tuple[int, int]] = None
        self.params: List[str] = []
        self.local_arrays: Dict[str, int] = {}
        self.entry_count: Optional[float] = None
        self.num_instrs = 0

    def contains(self, addr: int) -> bool:
        if self.hot_range[0] <= addr < self.hot_range[1]:
            return True
        return (self.cold_range is not None
                and self.cold_range[0] <= addr < self.cold_range[1])


class Binary:
    """A fully linked program image."""

    def __init__(self, name: str):
        self.name = name
        self.instrs: List[MInstr] = []
        self._addrs: List[int] = []
        self._addr_to_index: Dict[int, int] = {}
        self.symbols: Dict[str, FunctionSymbol] = {}
        self._ranges: List[Tuple[int, int, str]] = []  # (start, end, func)
        self.global_arrays: Dict[str, int] = {}
        self.entry_function = "main"
        self.text_size = 0
        self.guid_to_name: Dict[int, str] = {}
        #: Pre-decoded executor programs, keyed by observer variant (see
        #: :mod:`repro.hw.decoded`).  Holding the cache here means repeated
        #: runs of the same artifact — continuous-profiling iterations,
        #: evaluation runs, benchmark sweeps — skip decoding entirely.
        self._decoded_cache: Dict[object, object] = {}
        #: Decode-cache effectiveness counters (mirrored into telemetry).
        self.decode_stats: Dict[str, int] = {"decodes": 0, "cache_hits": 0}
        #: Range->probe-records prefix index (built lazily, see
        #: :meth:`probe_records_in_range`).
        self._probe_flat: Optional[List[ProbeRecord]] = None
        self._probe_offsets: Optional[List[int]] = None
        #: Memoized per-(begin, end) range lookups and per-addr symbolization.
        self._probe_range_cache: Dict[Tuple[int, int], List[ProbeRecord]] = {}
        self._instr_range_cache: Dict[Tuple[int, int], List[MInstr]] = {}
        self._func_at_cache: Dict[int, Optional[str]] = {}
        #: Memoized :meth:`identity` digest (stable once linked).
        self._identity: Optional[str] = None
        #: Index/cache effectiveness counters (read by bench_profgen and
        #: mirrored into telemetry by profgen).
        self.index_stats: Dict[str, int] = {
            "probe_range_hits": 0, "probe_range_misses": 0,
            "instr_range_hits": 0, "instr_range_misses": 0,
            "function_at_hits": 0, "function_at_misses": 0,
        }

    def identity(self) -> str:
        """Stable identity of this build, for profile/sample provenance.

        Hashes the symbol layout (names, entry addresses, ranges) and the
        probe GUID map — anything that moves a function or changes the probe
        universe changes the identity.  Two binaries with equal identity
        interpret the same addresses the same way, which is the property
        sample merging (:meth:`~repro.hw.perf_data.PerfData.extend`) and
        profile application rely on.
        """
        cached = self._identity
        if cached is None:
            hasher = hashlib.md5()
            for name in sorted(self.symbols):
                sym = self.symbols[name]
                hasher.update(
                    f"{name}:{sym.guid:x}:{sym.entry_addr:x}:"
                    f"{sym.hot_range}:{sym.cold_range}|".encode())
            for guid in sorted(self.guid_to_name):
                hasher.update(f"{guid:x}={self.guid_to_name[guid]};".encode())
            cached = hasher.hexdigest()[:16]
            self._identity = cached
        return cached

    # -- decoded-program cache ----------------------------------------------
    def cached_decoded(self, key, builder):
        """Return the decoded program for ``key``, building it on first use.

        ``builder`` is ``binary -> program``; the result is cached for the
        binary's lifetime.  Decoded programs hold closures, so the cache is
        dropped on pickling (see ``__getstate__``) and rebuilt lazily in the
        receiving process.
        """
        program = self._decoded_cache.get(key)
        if program is not None:
            self.decode_stats["cache_hits"] += 1
            return program
        program = builder(self)
        self._decoded_cache[key] = program
        self.decode_stats["decodes"] += 1
        return program

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_decoded_cache"] = {}
        state["decode_stats"] = {"decodes": 0, "cache_hits": 0}
        # Derived indexes/caches rebuild lazily in the receiving process;
        # shipping them would only bloat the pickle.
        state["_probe_flat"] = None
        state["_probe_offsets"] = None
        state["_probe_range_cache"] = {}
        state["_instr_range_cache"] = {}
        state["_func_at_cache"] = {}
        state["index_stats"] = {key: 0 for key in self.index_stats}
        return state

    # -- address queries ----------------------------------------------------
    def index_of(self, addr: int) -> int:
        return self._addr_to_index[addr]

    def instr_at(self, addr: int) -> MInstr:
        return self.instrs[self._addr_to_index[addr]]

    def has_addr(self, addr: int) -> bool:
        return addr in self._addr_to_index

    def next_instr_addr(self, addr: int) -> Optional[int]:
        """Address of the instruction following the one at ``addr``."""
        idx = self._addr_to_index[addr] + 1
        if idx >= len(self.instrs):
            return None
        return self.instrs[idx].addr

    def function_at(self, addr: int) -> Optional[str]:
        cache = self._func_at_cache
        stats = self.index_stats
        if addr in cache:
            stats["function_at_hits"] += 1
            return cache[addr]
        stats["function_at_misses"] += 1
        name: Optional[str] = None
        i = bisect.bisect_right(self._ranges, (addr, float("inf"), "")) - 1
        if i >= 0:
            start, end, candidate = self._ranges[i]
            if start <= addr < end:
                name = candidate
        cache[addr] = name
        return name

    def probes_at(self, addr: int) -> List[ProbeRecord]:
        if not self.has_addr(addr):
            return []
        return self.instr_at(addr).probes

    def dloc_at(self, addr: int):
        if not self.has_addr(addr):
            return None
        return self.instr_at(addr).dloc

    def instructions_in_range(self, begin: int, end: int) -> List[MInstr]:
        """Instructions with begin <= addr <= end (inclusive, like LBR ranges).

        Memoized per (begin, end): aggregated LBR ranges repeat the same few
        hot intervals thousands of times, so profgen's rescans collapse to
        dict hits.  Cached lists must be treated as read-only.
        """
        cache = self._instr_range_cache
        stats = self.index_stats
        instrs = cache.get((begin, end))
        if instrs is not None:
            stats["instr_range_hits"] += 1
            return instrs
        stats["instr_range_misses"] += 1
        lo = bisect.bisect_left(self._addrs, begin)
        hi = bisect.bisect_right(self._addrs, end)
        instrs = self.instrs[lo:hi]
        cache[(begin, end)] = instrs
        return instrs

    def scan_instructions_in_range(self, begin: int, end: int) -> List[MInstr]:
        """Cache-free reference scan for :meth:`instructions_in_range`;
        used by profgen's legacy path and the differential tests."""
        lo = bisect.bisect_left(self._addrs, begin)
        hi = bisect.bisect_right(self._addrs, end)
        return self.instrs[lo:hi]

    # -- probe range index ---------------------------------------------------
    def _build_probe_index(self) -> None:
        """One-time prefix-sum index: instruction i's probe records live at
        ``_probe_flat[_probe_offsets[i]:_probe_offsets[i + 1]]``, so any
        address range maps to one contiguous slice with no per-instruction
        scanning."""
        flat: List[ProbeRecord] = []
        offsets: List[int] = [0]
        for minstr in self.instrs:
            if minstr.probes:
                flat.extend(minstr.probes)
            offsets.append(len(flat))
        self._probe_flat = flat
        self._probe_offsets = offsets

    def probe_records_in_range(self, begin: int, end: int) -> List[ProbeRecord]:
        """All probe records on instructions with begin <= addr <= end, in
        instruction order (identical to scanning :meth:`instructions_in_range`
        and concatenating each ``minstr.probes``).  Served from the prefix
        index plus a per-(begin, end) memo; results are read-only."""
        cache = self._probe_range_cache
        stats = self.index_stats
        records = cache.get((begin, end))
        if records is not None:
            stats["probe_range_hits"] += 1
            return records
        stats["probe_range_misses"] += 1
        if self._probe_flat is None:
            self._build_probe_index()
        lo = bisect.bisect_left(self._addrs, begin)
        hi = bisect.bisect_right(self._addrs, end)
        records = self._probe_flat[self._probe_offsets[lo]:
                                  self._probe_offsets[hi]]
        cache[(begin, end)] = records
        return records


def link(module: Module, lowered: Optional[Dict[str, MFunction]] = None,
         config: Optional[LowerConfig] = None) -> Binary:
    """Lower (if needed) and link ``module`` into a :class:`Binary`."""
    if lowered is None:
        lowered = lower_module(module, config)
    binary = Binary(module.name)
    binary.global_arrays = dict(module.global_arrays)
    binary.entry_function = module.entry_function
    # Probe GUIDs resolve through insertion-time records, so inlined-away
    # (DFE'd) functions keep their identity in the metadata.
    binary.guid_to_name.update(module.probe_guid_names)

    profiled = any(m.entry_count is not None for m in lowered.values())
    order = list(lowered.values())
    if profiled:
        order.sort(key=lambda m: -(m.entry_count or 0.0))

    cursor = TEXT_BASE
    block_addr: Dict[Tuple[str, str], int] = {}

    def place(mfn: MFunction, blocks) -> Tuple[int, int]:
        nonlocal cursor
        start = cursor
        # Address assignment is reverse order independent: empty blocks share
        # the address of whatever comes next.
        pending_empty: List[str] = []
        for mblock in blocks:
            if not mblock.instrs:
                pending_empty.append(mblock.label)
                continue
            for label in pending_empty:
                block_addr[(mfn.name, label)] = cursor
            pending_empty.clear()
            block_addr[(mfn.name, mblock.label)] = cursor
            for minstr in mblock.instrs:
                minstr.addr = cursor
                binary.instrs.append(minstr)
                cursor += minstr.size
        for label in pending_empty:
            block_addr[(mfn.name, label)] = cursor
        return start, cursor

    # Hot text.
    for mfn in order:
        symbol = FunctionSymbol(mfn.name, mfn.guid)
        symbol.params = list(mfn.params)
        symbol.local_arrays = dict(mfn.local_arrays)
        symbol.entry_count = mfn.entry_count
        start, end = place(mfn, mfn.hot_blocks())
        symbol.entry_addr = start
        symbol.hot_range = (start, end)
        binary.symbols[mfn.name] = symbol
        binary.guid_to_name[mfn.guid] = mfn.name
    # Cold text, far after everything hot.
    for mfn in order:
        cold = mfn.cold_blocks()
        if not cold:
            continue
        start, end = place(mfn, cold)
        if start != end:
            binary.symbols[mfn.name].cold_range = (start, end)

    binary.text_size = cursor - TEXT_BASE

    # Resolve branch targets.
    for mfn in order:
        for mblock in mfn.blocks:
            for minstr in mblock.instrs:
                if minstr.kind in ("jmp", "br"):
                    minstr.target_addr = block_addr[(mfn.name, minstr.target)]
                elif minstr.kind in ("call", "tailcall"):
                    minstr.target_addr = binary.symbols[minstr.a].entry_addr
        binary.symbols[mfn.name].num_instrs = len(mfn.instructions())

    binary._addrs = [i.addr for i in binary.instrs]
    binary._addr_to_index = {addr: i for i, addr in enumerate(binary._addrs)}
    ranges = []
    for symbol in binary.symbols.values():
        ranges.append((symbol.hot_range[0], symbol.hot_range[1], symbol.name))
        if symbol.cold_range is not None:
            ranges.append((symbol.cold_range[0], symbol.cold_range[1],
                           symbol.name))
    binary._ranges = sorted(ranges)
    return binary
