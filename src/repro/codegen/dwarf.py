"""DWARF-like debug information: the line table and its size model.

This is what AutoFDO correlates against.  Each machine instruction gets a row
``(addr, root_function, line, discriminator, inline_stack)`` taken verbatim
from its (possibly optimizer-degraded) :class:`~repro.ir.debug_info.DebugLoc`
— degradation happened upstream, in the passes; the line table just faithfully
records whatever survived, exactly like a production compiler.

The size model approximates ``-g2`` output: a per-function DIE overhead, a
per-row statement entry, per-inline-frame ``DW_TAG_inlined_subroutine`` cost,
and variable/type info proportional to code size.  Absolute bytes are not the
point; the *ratio* against text and probe metadata (Fig. 9) is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.debug_info import DebugLoc
from .binary import Binary

#: Size-model constants (bytes).
FUNCTION_DIE_OVERHEAD = 48
LINE_ROW_COST = 3
INLINE_FRAME_COST = 6
VARIABLE_INFO_PER_INSTR = 2


class LineRow:
    """One line-table row."""

    __slots__ = ("addr", "func", "line", "discriminator", "inline_stack")

    def __init__(self, addr: int, func: str, line: int, discriminator: int,
                 inline_stack: tuple):
        self.addr = addr
        self.func = func
        self.line = line
        self.discriminator = discriminator
        self.inline_stack = inline_stack

    def leaf_function(self) -> str:
        if self.inline_stack:
            return self.inline_stack[-1].callee
        return self.func


class DwarfInfo:
    """Line table plus the debug-info size estimate for one binary."""

    def __init__(self) -> None:
        self.rows: Dict[int, LineRow] = {}
        self.size_bytes = 0

    def row_at(self, addr: int) -> Optional[LineRow]:
        return self.rows.get(addr)


def build_dwarf(binary: Binary) -> DwarfInfo:
    info = DwarfInfo()
    size = len(binary.symbols) * FUNCTION_DIE_OVERHEAD
    for minstr in binary.instrs:
        size += VARIABLE_INFO_PER_INSTR
        dloc = minstr.dloc
        if dloc is None:
            continue
        func = minstr.func
        row = LineRow(minstr.addr, func, dloc.line, dloc.discriminator,
                      dloc.inline_stack)
        info.rows[minstr.addr] = row
        size += LINE_ROW_COST + INLINE_FRAME_COST * len(dloc.inline_stack)
    info.size_bytes = size
    return info
