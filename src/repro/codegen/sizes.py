"""Binary size accounting (Figs. 7 and 9).

``text`` is what Fig. 7 compares across PGO variants; ``probe_metadata`` as a
share of the whole image (text + debug info + probe metadata) is Fig. 9.
"""

from __future__ import annotations

from typing import Optional

from .binary import Binary
from .dwarf import DwarfInfo, build_dwarf
from .probe_metadata import ProbeMetadata, build_probe_metadata


class BinarySizes:
    """Section sizes for one linked binary (bytes)."""

    def __init__(self, text: int, dwarf: int, probe_metadata: int):
        self.text = text
        self.dwarf = dwarf
        self.probe_metadata = probe_metadata

    @property
    def total(self) -> int:
        """Full image size: text + ``-g2`` debug info + probe metadata."""
        return self.text + self.dwarf + self.probe_metadata

    def probe_metadata_share(self) -> float:
        return self.probe_metadata / self.total if self.total else 0.0

    def dwarf_share(self) -> float:
        return self.dwarf / self.total if self.total else 0.0

    def __repr__(self) -> str:
        return (f"<BinarySizes text={self.text} dwarf={self.dwarf} "
                f"probes={self.probe_metadata}>")


def measure_sizes(binary: Binary, dwarf: Optional[DwarfInfo] = None,
                  probe_meta: Optional[ProbeMetadata] = None) -> BinarySizes:
    if dwarf is None:
        dwarf = build_dwarf(binary)
    if probe_meta is None:
        probe_meta = build_probe_metadata(binary)
    return BinarySizes(binary.text_size, dwarf.size_bytes,
                       probe_meta.size_bytes)
