"""Lowering: IR functions to machine IR.

Responsibilities:

* expand spilled registers into ``spill_ld``/``spill_st`` around each use/def
  (spill set from :mod:`repro.codegen.regalloc`);
* materialize pseudo-probes as metadata on the next real instruction —
  probes emit **zero** machine instructions (the paper's core low-overhead
  property), while ``InstrProfIncrement`` lowers to a real ``count``
  instruction;
* pick branch shapes: a conditional branch whose false (or true, inverted)
  target is the fall-through block needs only one ``br``; otherwise a
  ``br`` + ``jmp`` pair is emitted;
* tail-call elimination: ``call f; ret f()``'s result lowers to ``tailcall``
  (frame reuse), which is what removes the caller frame from stack samples
  and motivates the paper's missing-frame inferrer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Call, Cmp, CondBr, Instr,
                               InstrProfIncrement, Load, PseudoProbe, Ret,
                               Select, Store)
from .mir import MBlock, MFunction, MInstr, ProbeRecord
from .regalloc import NUM_PHYS_REGS, choose_spills


class LowerConfig:
    """Codegen knobs."""

    def __init__(self, enable_tce: bool = True,
                 num_phys_regs: int = NUM_PHYS_REGS):
        self.enable_tce = enable_tce
        self.num_phys_regs = num_phys_regs


def lower_function(fn: Function, config: Optional[LowerConfig] = None) -> MFunction:
    config = config or LowerConfig()
    spilled = set(choose_spills(fn, config.num_phys_regs))
    mfn = MFunction(fn.name, fn.guid, fn.entry_count)
    mfn.spilled_regs = sorted(spilled)
    mfn.local_arrays = dict(fn.local_arrays)
    mfn.params = list(fn.params)

    # Intra-function layout: hot blocks in current order, cold blocks sunk.
    layout = [b for b in fn.blocks if not b.is_cold] + \
             [b for b in fn.blocks if b.is_cold]
    next_label: Dict[str, Optional[str]] = {}
    for i, block in enumerate(layout):
        is_last = i + 1 >= len(layout)
        same_section = (not is_last
                        and layout[i + 1].is_cold == block.is_cold)
        next_label[block.label] = layout[i + 1].label if same_section else None

    for block in layout:
        mblock = MBlock(block.label, block.is_cold)
        mblock.source_count = block.count
        _lower_block(fn, block, mblock, spilled, next_label[block.label], config)
        mfn.blocks.append(mblock)
    return mfn


def _lower_block(fn: Function, block: BasicBlock, mblock: MBlock,
                 spilled: set, fallthrough: Optional[str],
                 config: LowerConfig) -> None:
    pending_probes: List[ProbeRecord] = []
    out = mblock.instrs
    # Spilled registers already materialized in a scratch register within
    # this block: reload only at the first use, re-store after each def
    # (region-level spill placement, like a splitting allocator would do).
    loaded: set = set()

    def emit(minstr: MInstr) -> MInstr:
        minstr.func = fn.name
        minstr.block_label = block.label
        if pending_probes:
            minstr.probes.extend(pending_probes)
            pending_probes.clear()
        out.append(minstr)
        return minstr

    def use(reg_or_const, dloc) -> object:
        """Reload a spilled register before its first use in the block."""
        if (isinstance(reg_or_const, str) and reg_or_const in spilled
                and reg_or_const not in loaded):
            emit(MInstr("spill_ld", dst=reg_or_const, a=f"slot:{reg_or_const}",
                        dloc=dloc))
            loaded.add(reg_or_const)
        return reg_or_const

    def define(reg: Optional[str], dloc) -> None:
        """Store a spilled register after definition."""
        if reg is not None and reg in spilled:
            emit(MInstr("spill_st", a=f"slot:{reg}", b=reg, dloc=dloc))
            loaded.add(reg)

    instrs = block.instrs
    for idx, instr in enumerate(instrs):
        dloc = instr.dloc
        if isinstance(instr, PseudoProbe):
            pending_probes.append(ProbeRecord(instr.guid, instr.probe_id,
                                              instr.inline_stack,
                                              instr.dangling))
        elif isinstance(instr, InstrProfIncrement):
            emit(MInstr("count", a=instr.func_name, b=instr.counter_id,
                        dloc=dloc))
        elif isinstance(instr, Assign):
            use(instr.src, dloc)
            emit(MInstr("mov", dst=instr.dst, a=instr.src, dloc=dloc))
            define(instr.dst, dloc)
        elif isinstance(instr, BinOp):
            use(instr.lhs, dloc)
            use(instr.rhs, dloc)
            emit(MInstr("binop", op=instr.op, dst=instr.dst, a=instr.lhs,
                        b=instr.rhs, dloc=dloc))
            define(instr.dst, dloc)
        elif isinstance(instr, Cmp):
            use(instr.lhs, dloc)
            use(instr.rhs, dloc)
            emit(MInstr("cmp", op=instr.pred, dst=instr.dst, a=instr.lhs,
                        b=instr.rhs, dloc=dloc))
            define(instr.dst, dloc)
        elif isinstance(instr, Select):
            use(instr.cond, dloc)
            use(instr.tval, dloc)
            use(instr.fval, dloc)
            emit(MInstr("select", dst=instr.dst, a=instr.cond, b=instr.tval,
                        c=instr.fval, dloc=dloc))
            define(instr.dst, dloc)
        elif isinstance(instr, Load):
            use(instr.index, dloc)
            emit(MInstr("load", dst=instr.dst, a=instr.array, b=instr.index,
                        dloc=dloc))
            define(instr.dst, dloc)
        elif isinstance(instr, Store):
            use(instr.index, dloc)
            use(instr.value, dloc)
            emit(MInstr("store", a=instr.array, b=instr.index, c=instr.value,
                        dloc=dloc))
        elif isinstance(instr, Call):
            tce = (config.enable_tce and idx + 1 < len(instrs)
                   and _is_tail_position(instrs, idx, instr))
            for arg in instr.args:
                use(arg, dloc)
            if tce:
                minstr = MInstr("tailcall", a=instr.callee,
                                args=list(instr.args), dloc=dloc)
                minstr.call_ctx = instr.probe_context()
                emit(minstr)
                # The paired Ret (and any interleaved probes) are consumed.
                _absorb_trailing_probes(instrs, idx + 1, pending_probes)
                break
            minstr = MInstr("call", a=instr.callee, args=list(instr.args),
                            dst=instr.dst, dloc=dloc)
            minstr.call_ctx = instr.probe_context()
            emit(minstr)
            define(instr.dst, dloc)
        elif isinstance(instr, Br):
            if instr.target != fallthrough:
                emit(MInstr("jmp", target=instr.target, dloc=dloc))
            elif pending_probes:
                emit(MInstr("nop", dloc=dloc))  # anchor for trailing probes
        elif isinstance(instr, CondBr):
            use(instr.cond, dloc)
            if instr.false_target == fallthrough:
                emit(MInstr("br", a=instr.cond, target=instr.true_target,
                            dloc=dloc))
            elif instr.true_target == fallthrough:
                emit(MInstr("br", a=instr.cond, target=instr.false_target,
                            negated=True, dloc=dloc))
            else:
                emit(MInstr("br", a=instr.cond, target=instr.true_target,
                            dloc=dloc))
                emit(MInstr("jmp", target=instr.false_target, dloc=dloc))
        elif isinstance(instr, Ret):
            use(instr.value, dloc)
            emit(MInstr("ret", a=instr.value, dloc=dloc))
        else:
            raise TypeError(f"unhandled IR instruction {instr!r}")
    if pending_probes:
        # Block produced no real instruction after the probes: anchor them.
        emit(MInstr("nop"))


def _is_tail_position(instrs: List[Instr], idx: int, call: Call) -> bool:
    """True when the call is immediately followed (modulo probes) by a Ret of
    exactly the call's result."""
    j = idx + 1
    while j < len(instrs) and isinstance(instrs[j], PseudoProbe):
        j += 1
    if j != len(instrs) - 1:
        return False
    term = instrs[j]
    if not isinstance(term, Ret):
        return False
    if call.dst is None:
        return term.value is None
    return term.value == call.dst


def _absorb_trailing_probes(instrs: List[Instr], start: int,
                            pending: List[ProbeRecord]) -> None:
    for instr in instrs[start:]:
        if isinstance(instr, PseudoProbe):
            pending.append(ProbeRecord(instr.guid, instr.probe_id,
                                       instr.inline_stack, instr.dangling))


def lower_module(module: Module,
                 config: Optional[LowerConfig] = None) -> Dict[str, MFunction]:
    config = config or LowerConfig()
    return {name: lower_function(fn, config)
            for name, fn in module.functions.items()}
