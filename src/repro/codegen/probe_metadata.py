""".pseudo_probe-like metadata section: encoding, lookup, and size model.

Pseudo-probes never become machine instructions; they are materialized here as
metadata mapping a binary address to the probes anchored at it (paper
sec. III.A).  The section is self-contained — no relocations against the rest
of the binary — so it can be split out of the image and is never loaded at
run time; its size matters only for build artifacts (Fig. 9), not performance.

Size model follows LLVM's encoding: per function a GUID + CFG checksum header,
then per probe a varint-coded (id, type, address-delta) plus the inline-frame
chain for inlined probes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .binary import Binary
from .mir import ProbeRecord

#: Size-model constants (bytes).
FUNCTION_HEADER_COST = 24          # GUID (8) + checksum (8) + counts/name idx
PROBE_BASE_COST = 6                # id varint + type/flags + addr delta
INLINE_FRAME_COST = 8              # (guid index, probe id) varint pair


class ProbeAnchor:
    """All probes anchored at one binary address."""

    __slots__ = ("addr", "records")

    def __init__(self, addr: int, records: List[ProbeRecord]):
        self.addr = addr
        self.records = records


class ProbeMetadata:
    """Decoded view of the probe section for one binary."""

    def __init__(self) -> None:
        self.anchors: Dict[int, ProbeAnchor] = {}
        #: Function GUID -> persisted CFG checksum.
        self.checksums: Dict[int, int] = {}
        self.size_bytes = 0
        #: Number of probe records materialized (diagnostics).
        self.num_records = 0

    def probes_at(self, addr: int) -> List[ProbeRecord]:
        anchor = self.anchors.get(addr)
        return anchor.records if anchor is not None else []

    def iter_records(self) -> Iterator[Tuple[int, ProbeRecord]]:
        for addr in sorted(self.anchors):
            for record in self.anchors[addr].records:
                yield addr, record


def build_probe_metadata(binary: Binary, module=None) -> ProbeMetadata:
    """Collect probe records off the lowered instructions into the section.

    ``module`` (optional) supplies per-function CFG checksums persisted at
    probe-insertion time.
    """
    meta = ProbeMetadata()
    size = 0
    guids_seen = set()
    for minstr in binary.instrs:
        if not minstr.probes:
            continue
        anchor = meta.anchors.get(minstr.addr)
        if anchor is None:
            anchor = ProbeAnchor(minstr.addr, [])
            meta.anchors[minstr.addr] = anchor
        for record in minstr.probes:
            anchor.records.append(record)
            meta.num_records += 1
            size += PROBE_BASE_COST + INLINE_FRAME_COST * len(record.inline_stack)
            guids_seen.add(record.guid)
    size += FUNCTION_HEADER_COST * max(len(guids_seen), 0)
    meta.size_bytes = size
    if module is not None:
        meta.checksums.update(module.probe_guid_checksums)
        for fn in module.functions.values():
            if fn.probe_checksum is not None:
                meta.checksums[fn.guid] = fn.probe_checksum
    return meta
