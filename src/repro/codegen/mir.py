"""Machine IR: the lowered, addressable instruction stream.

A :class:`MInstr` is a self-contained machine instruction (the executor in
:mod:`repro.hw` interprets it directly).  Each carries:

* ``addr``/``size`` — its place in the binary (sizes are fixed per kind,
  loosely modeled on x86-64 encodings);
* ``dloc`` — the DWARF-like debug location lowered from IR (degraded exactly
  as the optimizer degraded it);
* ``probes`` — pseudo-probe records materialized "against the location of the
  physical instruction next to" the probe (paper sec. III.A).  Probes occupy
  zero bytes of text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.debug_info import DebugLoc

#: Instruction sizes in bytes by kind (loosely x86-64-like).
INSTR_SIZES: Dict[str, int] = {
    "mov": 3,
    "binop": 4,
    "cmp": 4,
    "select": 4,
    "load": 4,
    "store": 4,
    "spill_ld": 4,
    "spill_st": 4,
    "call": 5,
    "tailcall": 5,
    "jmp": 2,
    "br": 2,
    "ret": 1,
    "count": 7,  # lock-inc of a memory counter
    "nop": 1,
}


class ProbeRecord:
    """A pseudo-probe materialized at a machine address."""

    __slots__ = ("guid", "probe_id", "inline_stack", "dangling")

    def __init__(self, guid: int, probe_id: int,
                 inline_stack: Tuple[Tuple[int, int], ...], dangling: bool):
        self.guid = guid
        self.probe_id = probe_id
        self.inline_stack = inline_stack
        self.dangling = dangling

    def key(self) -> tuple:
        return (self.guid, self.probe_id, self.inline_stack)

    def __repr__(self) -> str:
        stack = "".join(f"@{g:x}:{i}" for g, i in self.inline_stack)
        return f"<probe {self.guid:x}:{self.probe_id}{stack}{' dangling' if self.dangling else ''}>"


class MInstr:
    """One machine instruction.

    Operand conventions by kind (operands are register names, array names,
    ints, or labels depending on kind):

    ==========  =====================================================
    kind        operands
    ==========  =====================================================
    mov         dst, a=src
    binop       op, dst, a, b
    cmp         op=pred, dst, a, b
    select      dst, a=cond, b=tval, c=fval
    load        dst, a=array, b=index
    store       a=array, b=index, c=value
    spill_ld    dst, a=slot-name
    spill_st    a=slot-name, b=src
    call        a=callee, args=[...], dst
    tailcall    a=callee, args=[...]
    jmp         target (label then addr)
    br          a=cond reg, target, negated
    ret         a=value or None
    count       a=func name, b=counter id
    nop         —
    ==========  =====================================================
    """

    __slots__ = ("kind", "op", "dst", "a", "b", "c", "args", "target",
                 "negated", "addr", "size", "dloc", "probes", "func",
                 "block_label", "target_addr", "call_ctx")

    def __init__(self, kind: str, *, op: Optional[str] = None,
                 dst: Optional[str] = None, a=None, b=None, c=None,
                 args: Optional[list] = None, target: Optional[str] = None,
                 negated: bool = False, dloc: Optional[DebugLoc] = None):
        self.kind = kind
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.c = c
        self.args = args
        self.target = target          # block label (pre-link) — see target_addr
        self.negated = negated
        self.addr = -1
        self.size = INSTR_SIZES[kind]
        self.dloc = dloc
        self.probes: List[ProbeRecord] = []
        self.func: Optional[str] = None
        self.block_label: Optional[str] = None
        self.target_addr: Optional[int] = None  # resolved by the linker
        #: For call/tailcall: the probe-context chain of the call site
        #: (outermost-first (guid, callsite_probe_id) pairs), () when the
        #: module is not probe-instrumented.
        self.call_ctx: tuple = ()

    def is_control(self) -> bool:
        return self.kind in ("jmp", "br", "call", "tailcall", "ret")

    def __repr__(self) -> str:
        fields = [self.kind]
        if self.op:
            fields.append(self.op)
        if self.dst:
            fields.append(f"dst={self.dst}")
        for name, val in (("a", self.a), ("b", self.b), ("c", self.c)):
            if val is not None:
                fields.append(f"{name}={val}")
        if self.target is not None:
            fields.append(f"-> {self.target}")
        return f"<{self.addr:#06x} {' '.join(map(str, fields))}>"


class MBlock:
    """A lowered block: label plus machine instructions (may be empty when
    the block was pure fall-through)."""

    __slots__ = ("label", "instrs", "is_cold", "source_count")

    def __init__(self, label: str, is_cold: bool = False):
        self.label = label
        self.instrs: List[MInstr] = []
        self.is_cold = is_cold
        self.source_count: Optional[float] = None


class MFunction:
    """A lowered function: blocks in final intra-function layout order."""

    def __init__(self, name: str, guid: int, entry_count: Optional[float]):
        self.name = name
        self.guid = guid
        self.entry_count = entry_count
        self.blocks: List[MBlock] = []
        #: Registers the allocator spilled (kept for diagnostics/tests).
        self.spilled_regs: List[str] = []
        #: Local array name -> size, copied from IR for frame setup.
        self.local_arrays: Dict[str, int] = {}
        self.params: List[str] = []

    def hot_blocks(self) -> List[MBlock]:
        return [b for b in self.blocks if not b.is_cold]

    def cold_blocks(self) -> List[MBlock]:
        return [b for b in self.blocks if b.is_cold]

    def instructions(self) -> List[MInstr]:
        return [i for b in self.blocks for i in b.instrs]
