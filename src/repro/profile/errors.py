"""Typed error hierarchy for profile consumption (DESIGN.md sec. 10).

Every boundary of the profile pipeline raises (strict mode) or counts
(permissive mode) one of these instead of bare ``ValueError``/``KeyError``:

* :class:`ProfileParseError` — malformed serialized profile text;
* :class:`ProfileStaleError` — profile recorded a different CFG shape than
  the IR it is being applied to (checksum mismatch: source drift);
* :class:`BinaryMismatchError` — profile or sample data belongs to a
  different build entirely (GUID/identity conflict, merged incompatible
  perf sessions).

:class:`ProfileParseError` subclasses :class:`ValueError` so pre-existing
callers that caught ``ValueError`` around loads keep working.
"""

from __future__ import annotations

from typing import Optional


class ProfileError(Exception):
    """Base class of every profile-quality failure."""


class ProfileParseError(ProfileError, ValueError):
    """Serialized profile text could not be parsed.

    ``line`` is the 1-based line number in the input text, when known.
    """

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ProfileStaleError(ProfileError):
    """Profile was collected from a different CFG shape (source drift)."""


class BinaryMismatchError(ProfileError):
    """Profile/samples come from a different binary than the one in use."""
