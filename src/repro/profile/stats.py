"""Profile statistics helpers."""

from __future__ import annotations

from typing import Dict, Union

from .profiles import ContextProfile, FlatProfile
from .text_format import profile_size_bytes


def profile_stats(profile: Union[FlatProfile, ContextProfile]) -> Dict[str, float]:
    if isinstance(profile, ContextProfile):
        num_records = len(profile.contexts)
        max_depth = max((len(c) for c in profile.contexts), default=0)
    else:
        num_records = len(profile.functions)
        max_depth = 1
    return {
        "records": float(num_records),
        "total_samples": profile.total_samples(),
        "size_bytes": float(profile_size_bytes(profile)),
        "max_context_depth": float(max_depth),
    }
