"""First-class mergeable profiles: the unit sharded profile generation and
rolling fleet merges exchange.

A :class:`ProfileMap` bundles one *mergeable* profile payload with the exact
sample accounting that produced it:

* the payload — a :class:`~repro.profile.profiles.FlatProfile` (probe /
  instr kinds), a :class:`~repro.profile.profiles.ContextProfile`, or a
  :class:`DwarfRangeCounts` pre-collapse partial;
* per-reason drop counts plus total/used/broken/unique sample tallies,
  preserving ``used + dropped == total`` under every merge;
* the :meth:`~repro.codegen.binary.Binary.identity` stamp of the profiled
  build — merging partials collected on different builds is refused with
  :class:`~repro.profile.errors.BinaryMismatchError`, the same contract as
  :meth:`~repro.hw.perf_data.PerfData.extend`.

Merging is **order-invariant**: every count is an integer-valued float sum
(exact in IEEE double far past any realistic sample volume), dangling sets
union, and checksums agree by construction (one probe-metadata table per
binary).  A profile assembled from any partition of the sample payloads is
therefore byte-identical — in text-format output — to the profile generated
from the unpartitioned stream, which is the invariant the sharded engine's
differential tests pin.

The one non-additive profile kind is DWARF: its max-heuristic
(:meth:`~repro.profile.function_samples.FunctionSamples.set_body_max`) takes
a maximum over per-address sums, and a max of partial sums is not the max of
the total.  DWARF partials therefore exchange **address-level** counts
(:class:`DwarfRangeCounts`, plain sums) and collapse to ``(line, disc)``
keys once, on the merged totals — see
``repro.correlate.profgen.dwarf_profile_from_counts``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Union

from .context import ContextTrie
from .errors import BinaryMismatchError
from .profiles import ContextProfile, FlatProfile

#: Payload kinds a ProfileMap can carry.
KIND_DWARF_RANGES = "dwarf_ranges"


class DwarfRangeCounts:
    """Pre-collapse DWARF partial: exact per-address and per-callsite sums.

    ``instr_counts`` maps instruction address -> sample count;
    ``call_counts`` maps ``(call_addr, target_addr)`` -> observed transfer
    count.  Both are plain sums, so partials merge by counter addition —
    exact and order-invariant — and the max-heuristic collapse runs once on
    the merged totals.
    """

    __slots__ = ("instr_counts", "call_counts")

    def __init__(self, instr_counts: Optional[Counter] = None,
                 call_counts: Optional[Counter] = None):
        self.instr_counts: Counter = (Counter() if instr_counts is None
                                      else instr_counts)
        self.call_counts: Counter = (Counter() if call_counts is None
                                     else call_counts)

    def merge(self, other: "DwarfRangeCounts") -> None:
        self.instr_counts.update(other.instr_counts)
        self.call_counts.update(other.call_counts)

    def __repr__(self) -> str:
        return (f"<DwarfRangeCounts {len(self.instr_counts)} addrs, "
                f"{len(self.call_counts)} callsites>")


Payload = Union[FlatProfile, ContextProfile, DwarfRangeCounts]


def _payload_kind(payload: Payload) -> str:
    if isinstance(payload, DwarfRangeCounts):
        return KIND_DWARF_RANGES
    if isinstance(payload, ContextProfile):
        return "context"
    return payload.kind


class ProfileMap:
    """One mergeable profile partial plus its exact sample accounting."""

    __slots__ = ("payload", "kind", "binary_id", "total_samples",
                 "used_samples", "broken_samples", "unique_samples",
                 "dropped")

    def __init__(self, payload: Payload, *,
                 binary_id: Optional[str] = None):
        self.payload = payload
        self.kind = _payload_kind(payload)
        #: Build identity of the profiled binary (``None`` = unstamped).
        self.binary_id = binary_id
        self.total_samples = 0
        self.used_samples = 0
        self.broken_samples = 0
        #: Distinct deduplicated payloads this partial covers.
        self.unique_samples = 0
        #: Per-reason counts of samples discarded entirely.
        self.dropped: Counter = Counter()

    # -- construction --------------------------------------------------------
    @classmethod
    def empty(cls, kind: str, *,
              binary_id: Optional[str] = None) -> "ProfileMap":
        """An identity element for :meth:`merge` of the given kind
        (``dwarf_ranges`` / ``context`` / a FlatProfile kind)."""
        if kind == KIND_DWARF_RANGES:
            payload: Payload = DwarfRangeCounts()
        elif kind == "context":
            payload = ContextProfile()
        else:
            payload = FlatProfile(kind)
        return cls(payload, binary_id=binary_id)

    # -- merge algebra -------------------------------------------------------
    def merge(self, other: "ProfileMap",
              trie: Optional[ContextTrie] = None) -> None:
        """Fold ``other`` into this partial.

        Commutative and associative on the counts (integer-valued sums,
        set unions); raises :class:`BinaryMismatchError` on a build-identity
        conflict and :class:`ValueError` on a kind conflict.  ``other`` is
        never mutated, and records only present in ``other`` are cloned in,
        so partials stay independently reusable.  ``trie`` re-interns
        context keys through one shared interner (canonical-tuple identity
        across shard-local interners).
        """
        if (self.binary_id is not None and other.binary_id is not None
                and self.binary_id != other.binary_id):
            raise BinaryMismatchError(
                f"cannot merge profile partial from binary {other.binary_id} "
                f"into partial from binary {self.binary_id}")
        if self.binary_id is None:
            self.binary_id = other.binary_id
        if self.kind != other.kind:
            raise ValueError(
                f"cannot merge {other.kind!r} partial into {self.kind!r} "
                f"partial")
        payload = self.payload
        if isinstance(payload, DwarfRangeCounts):
            payload.merge(other.payload)
        elif isinstance(payload, ContextProfile):
            payload.merge(other.payload, trie=trie)
        else:
            payload.merge(other.payload)
        self.total_samples += other.total_samples
        self.used_samples += other.used_samples
        self.broken_samples += other.broken_samples
        self.unique_samples += other.unique_samples
        self.dropped.update(other.dropped)

    # -- accounting ----------------------------------------------------------
    def record_aggregation(self, agg) -> None:
        """Adopt a :class:`~repro.correlate.profgen.RawAggregation`'s exact
        sample accounting (one shard's unwind pass)."""
        self.total_samples += agg.total_samples
        self.used_samples += agg.used_samples
        self.broken_samples += agg.broken_samples
        self.unique_samples += agg.unique_samples
        self.dropped.update(agg.dropped)

    def accounting_consistent(self) -> bool:
        """The drop-accounting invariant every merge must preserve."""
        return (self.used_samples + sum(self.dropped.values())
                == self.total_samples)

    def provenance(self) -> Dict[str, object]:
        """This partial's accounting as a manifest-ready shard record."""
        return {
            "samples": self.total_samples,
            "used": self.used_samples,
            "broken": self.broken_samples,
            "unique": self.unique_samples,
            "dropped": {reason: int(count)
                        for reason, count in sorted(self.dropped.items())},
        }

    def __repr__(self) -> str:
        return (f"<ProfileMap {self.kind} samples={self.total_samples} "
                f"used={self.used_samples} "
                f"dropped={sum(self.dropped.values())}>")
