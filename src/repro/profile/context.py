"""Calling-context keys.

A context identifies one inline/call chain, LLVM-CSSPGO-style:
``[main:12 @ svc_0:3 @ mid_1]`` means "mid_1 called from line/probe 3 of
svc_0, itself called from line/probe 12 of main".  We represent it as a tuple
of frames, outermost first; every frame is ``(function_name, callsite_id)``
with ``callsite_id is None`` for the leaf (the profiled function itself).
"""

from __future__ import annotations

from typing import Optional, Tuple

Frame = Tuple[str, Optional[int]]
ContextKey = Tuple[Frame, ...]


def make_context(*frames: Frame) -> ContextKey:
    return tuple(frames)


def base_context(function_name: str) -> ContextKey:
    """The context-insensitive ("base") context of a function."""
    return ((function_name, None),)


def leaf_function(context: ContextKey) -> str:
    return context[-1][0]


def parent_context(context: ContextKey) -> Optional[ContextKey]:
    """The caller context: drop the leaf, clear the new leaf's callsite."""
    if len(context) <= 1:
        return None
    head = context[:-2]
    caller, _site = context[-2]
    return head + ((caller, None),)


def caller_frame(context: ContextKey) -> Optional[Frame]:
    """The (caller, callsite) pair directly above the leaf."""
    if len(context) <= 1:
        return None
    return context[-2]


def extend_context(context: ContextKey, callsite_id: int,
                   callee: str) -> ContextKey:
    """Context of ``callee`` called from ``callsite_id`` of this context's leaf."""
    head = context[:-1]
    leaf, _none = context[-1]
    return head + ((leaf, callsite_id), (callee, None))


def format_context(context: ContextKey) -> str:
    parts = []
    for func, site in context:
        parts.append(func if site is None else f"{func}:{site}")
    return "[" + " @ ".join(parts) + "]"


def parse_context(text: str) -> ContextKey:
    inner = text.strip()
    if inner.startswith("[") and inner.endswith("]"):
        inner = inner[1:-1]
    frames = []
    for part in inner.split(" @ "):
        part = part.strip()
        if ":" in part:
            func, site = part.rsplit(":", 1)
            frames.append((func, int(site)))
        else:
            frames.append((part, None))
    return tuple(frames)


def is_prefix(prefix: ContextKey, context: ContextKey) -> bool:
    """True when ``context`` is ``prefix`` extended by deeper frames.

    The prefix's leaf frame matches on function name only (its callsite slot
    is None while the longer context records a real callsite there).
    """
    if len(prefix) > len(context):
        return False
    for i, (func, site) in enumerate(prefix[:-1]):
        if context[i] != (func, site):
            return False
    leaf_func, _ = prefix[-1]
    return context[len(prefix) - 1][0] == leaf_func
