"""Calling-context keys.

A context identifies one inline/call chain, LLVM-CSSPGO-style:
``[main:12 @ svc_0:3 @ mid_1]`` means "mid_1 called from line/probe 3 of
svc_0, itself called from line/probe 12 of main".  We represent it as a tuple
of frames, outermost first; every frame is ``(function_name, callsite_id)``
with ``callsite_id is None`` for the leaf (the profiled function itself).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

Frame = Tuple[str, Optional[int]]
ContextKey = Tuple[Frame, ...]


def make_context(*frames: Frame) -> ContextKey:
    return tuple(frames)


def base_context(function_name: str) -> ContextKey:
    """The context-insensitive ("base") context of a function."""
    return ((function_name, None),)


def leaf_function(context: ContextKey) -> str:
    return context[-1][0]


def parent_context(context: ContextKey) -> Optional[ContextKey]:
    """The caller context: drop the leaf, clear the new leaf's callsite."""
    if len(context) <= 1:
        return None
    head = context[:-2]
    caller, _site = context[-2]
    return head + ((caller, None),)


def caller_frame(context: ContextKey) -> Optional[Frame]:
    """The (caller, callsite) pair directly above the leaf."""
    if len(context) <= 1:
        return None
    return context[-2]


def extend_context(context: ContextKey, callsite_id: int,
                   callee: str) -> ContextKey:
    """Context of ``callee`` called from ``callsite_id`` of this context's leaf."""
    head = context[:-1]
    leaf, _none = context[-1]
    return head + ((leaf, callsite_id), (callee, None))


def format_context(context: ContextKey) -> str:
    parts = []
    for func, site in context:
        parts.append(func if site is None else f"{func}:{site}")
    return "[" + " @ ".join(parts) + "]"


def parse_context(text: str) -> ContextKey:
    inner = text.strip()
    if inner.startswith("[") and inner.endswith("]"):
        inner = inner[1:-1]
    frames = []
    for part in inner.split(" @ "):
        part = part.strip()
        if ":" in part:
            func, site = part.rsplit(":", 1)
            frames.append((func, int(site)))
        else:
            frames.append((part, None))
    return tuple(frames)


class _TrieNode:
    __slots__ = ("children", "key")

    def __init__(self) -> None:
        self.children: dict = {}
        self.key: Optional[ContextKey] = None


class ContextTrie:
    """Frame-trie interner for :data:`ContextKey` tuples.

    The SampleContextTracker idea from llvm-profgen: contexts share long
    prefixes (everything under ``main`` starts the same way), so interning
    them through a trie keyed frame-by-frame returns one canonical tuple
    object per distinct context.  Equal contexts then share storage and
    compare identically everywhere downstream (profile dicts, trimming,
    the pre-inliner) instead of each count tuple materializing its own copy.

    ``interned``/``hits`` count distinct contexts vs. re-interned lookups.
    """

    __slots__ = ("_root", "interned", "hits")

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.interned = 0
        self.hits = 0

    def intern(self, frames: Iterable[Frame]) -> ContextKey:
        """Canonical :data:`ContextKey` equal to ``tuple(frames)``."""
        node = self._root
        for frame in frames:
            child = node.children.get(frame)
            if child is None:
                child = _TrieNode()
                node.children[frame] = child
            node = child
        if node.key is None:
            node.key = tuple(frames)
            self.interned += 1
        else:
            self.hits += 1
        return node.key

    def __len__(self) -> int:
        return self.interned

    def __repr__(self) -> str:
        return f"<ContextTrie {self.interned} contexts, {self.hits} hits>"


def is_prefix(prefix: ContextKey, context: ContextKey) -> bool:
    """True when ``context`` is ``prefix`` extended by deeper frames.

    The prefix's leaf frame matches on function name only (its callsite slot
    is None while the longer context records a real callsite there).
    """
    if len(prefix) > len(context):
        return False
    for i, (func, site) in enumerate(prefix[:-1]):
        if context[i] != (func, site):
            return False
    leaf_func, _ = prefix[-1]
    return context[len(prefix) - 1][0] == leaf_func
