"""Profile data model: flat, context-sensitive, serialization, trimming."""

from .context import (ContextKey, ContextTrie, Frame, base_context,
                      caller_frame, extend_context, format_context, is_prefix,
                      leaf_function, make_context, parent_context,
                      parse_context)
from .errors import (BinaryMismatchError, ProfileError, ProfileParseError,
                     ProfileStaleError)
from .function_samples import ATTR_SHOULD_INLINE, FunctionSamples
from .merge import KIND_DWARF_RANGES, DwarfRangeCounts, ProfileMap
from .profiles import ContextProfile, FlatProfile
from .stats import profile_stats
from .text_format import (dump_context_profile, dump_flat_profile,
                          load_context_profile, load_flat_profile,
                          profile_size_bytes)
from .trimming import trim_cold_contexts

__all__ = [
    "ATTR_SHOULD_INLINE", "BinaryMismatchError", "ContextKey",
    "ContextProfile", "ContextTrie", "DwarfRangeCounts", "FlatProfile",
    "Frame", "FunctionSamples", "KIND_DWARF_RANGES", "ProfileError",
    "ProfileMap", "ProfileParseError",
    "ProfileStaleError", "base_context", "caller_frame",
    "dump_context_profile", "dump_flat_profile", "extend_context",
    "format_context", "is_prefix", "leaf_function", "load_context_profile",
    "load_flat_profile", "make_context", "parent_context", "parse_context",
    "profile_size_bytes", "profile_stats", "trim_cold_contexts",
]
