"""Per-function sample records — the common unit of every profile kind.

``body`` is keyed by the correlation anchor of the producing pipeline:
``(line, discriminator)`` tuples for DWARF-based AutoFDO profiles, or integer
probe ids for CSSPGO profiles.  ``calls`` maps a callsite key to per-callee
counts (the dynamic call graph slice used by inliners and the pre-inliner).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Union

BodyKey = Union[int, tuple]

#: Pre-inliner attribute persisted in CSSPGO profiles (paper Algorithm 2:
#: ``MarkContextInlined``): the compiler should inline this context.
ATTR_SHOULD_INLINE = "ShouldBeInlined"


class FunctionSamples:
    """Counts for one function (or one calling context of a function)."""

    __slots__ = ("name", "total", "head", "body", "calls", "checksum",
                 "attributes", "dangling")

    def __init__(self, name: str):
        self.name = name
        #: Sum of all body counts (recomputed by finalize()).
        self.total = 0.0
        #: Entry count (function head samples / entry probe count).
        self.head = 0.0
        self.body: Dict[BodyKey, float] = {}
        self.calls: Dict[BodyKey, Dict[str, float]] = {}
        #: CFG checksum at probe-insertion time (probe profiles only).
        self.checksum: Optional[int] = None
        self.attributes: Set[str] = set()
        #: Probe ids observed only as dangling anchors (count unknown, not
        #: zero — if-converted blocks, paper sec. III.A).
        self.dangling: Set[BodyKey] = set()

    def add_body(self, key: BodyKey, count: float = 1.0) -> None:
        self.body[key] = self.body.get(key, 0.0) + count

    def set_body_max(self, key: BodyKey, count: float) -> None:
        """DWARF max-heuristic accumulation (paper sec. III.A(b))."""
        if count > self.body.get(key, 0.0):
            self.body[key] = count

    def add_call(self, key: BodyKey, callee: str, count: float = 1.0) -> None:
        targets = self.calls.setdefault(key, {})
        targets[callee] = targets.get(callee, 0.0) + count

    def finalize(self) -> None:
        self.total = sum(self.body.values())

    def merge(self, other: "FunctionSamples", scale: float = 1.0) -> None:
        """Accumulate ``other`` into this record (context trimming/merging)."""
        self.head += other.head * scale
        for key, count in other.body.items():
            self.add_body(key, count * scale)
        for key, targets in other.calls.items():
            for callee, count in targets.items():
                self.add_call(key, callee, count * scale)
        self.dangling |= other.dangling
        self.finalize()

    def body_count(self, key: BodyKey) -> float:
        return self.body.get(key, 0.0)

    def clone(self) -> "FunctionSamples":
        copy = FunctionSamples(self.name)
        copy.total = self.total
        copy.head = self.head
        copy.body = dict(self.body)
        copy.calls = {k: dict(v) for k, v in self.calls.items()}
        copy.checksum = self.checksum
        copy.attributes = set(self.attributes)
        copy.dangling = set(self.dangling)
        return copy

    def __repr__(self) -> str:
        return (f"<FunctionSamples {self.name} total={self.total:g} "
                f"head={self.head:g} keys={len(self.body)}>")
