"""Profile summary: global hot/cold count thresholds.

Mirrors LLVM's ProfileSummary: sort all annotated block counts descending,
accumulate, and define the *hot* threshold as the count at which cumulative
coverage reaches ``hot_coverage`` (99% by default) of all samples — any block
at or above it is "hot" — and the *cold* threshold at ``cold_coverage``
(99.99%).  Optimization heuristics (inliner, unroller, hot/cold splitter)
compare block counts against these global cutoffs rather than per-function
ratios, which is what makes hotness comparable across a whole program.
"""

from __future__ import annotations

from typing import List, Optional


class ProfileSummary:
    """Global hotness thresholds derived from annotated counts."""

    def __init__(self, hot_count: float, cold_count: float, total: float,
                 num_counts: int):
        self.hot_count = hot_count
        self.cold_count = cold_count
        self.total = total
        self.num_counts = num_counts

    def is_hot(self, count: Optional[float]) -> bool:
        return count is not None and count >= self.hot_count and count > 0

    def is_cold(self, count: Optional[float]) -> bool:
        return count is not None and count < self.cold_count

    def __repr__(self) -> str:
        return (f"<ProfileSummary hot>={self.hot_count:g} "
                f"cold<={self.cold_count:g} total={self.total:g}>")

    @classmethod
    def from_counts(cls, counts: List[float], hot_coverage: float = 0.99,
                    cold_coverage: float = 0.9999) -> "ProfileSummary":
        positive = sorted((c for c in counts if c > 0), reverse=True)
        total = sum(positive)
        if not positive or total <= 0:
            return cls(float("inf"), 0.0, 0.0, 0)
        hot_count = positive[-1]
        cold_count = 0.0
        cumulative = 0.0
        hot_set = False
        for count in positive:
            cumulative += count
            if not hot_set and cumulative >= hot_coverage * total:
                hot_count = count
                hot_set = True
            if cumulative >= cold_coverage * total:
                cold_count = count
                break
        return cls(hot_count, cold_count, total, len(positive))

    @classmethod
    def from_module(cls, module, hot_coverage: float = 0.99,
                    cold_coverage: float = 0.9999) -> "ProfileSummary":
        counts: List[float] = []
        for fn in module.functions.values():
            for block in fn.blocks:
                if block.count is not None:
                    counts.append(block.count)
        return cls.from_counts(counts, hot_coverage, cold_coverage)
