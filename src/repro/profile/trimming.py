"""Cold-context trimming (paper sec. III.B, "Scalability").

Context-sensitive profiles can be ~10x larger than flat profiles on dense
dynamic call graphs.  Since cold functions are unlikely to be inlined, the
paper keeps context-sensitive profile only for hot contexts and merges cold
contexts back into the leaf function's base (context-insensitive) profile —
"comparable in size to regular profile, without losing its benefit".
"""

from __future__ import annotations

from typing import Tuple

from .context import base_context
from .profiles import ContextProfile


def trim_cold_contexts(profile: ContextProfile,
                       hot_fraction: float = 0.002) -> Tuple[int, int]:
    """Merge cold contexts into base contexts, in place.

    A context is cold when its total is below ``hot_fraction`` of the whole
    profile's total samples.  Returns (kept, merged) context counts.
    """
    total = profile.total_samples()
    threshold = total * hot_fraction
    merged = 0
    # A context is trimmed only when its whole *subtree* is cold: a thin
    # wrapper on a hot path must keep its trie node, or the hot descendants
    # would be orphaned from the context trie.
    for context in sorted(list(profile.contexts), key=len, reverse=True):
        if len(context) == 1:
            continue  # already a base context
        samples = profile.contexts.get(context)
        if samples is None:
            continue
        if profile.subtree_total(context) < threshold:
            profile.merge_context_into_base(context)
            merged += 1
    return len(profile.contexts), merged
