"""Text serialization of profiles (llvm-profdata-style).

Besides persistence and debuggability, serialization is how profile *size* is
measured for the scalability experiment (paper sec. III.B: raw
context-sensitive profiles can be ~10x larger; trimming brings them back in
line): :func:`profile_size_bytes` is the byte length of this encoding.

Flat profile format (one record per function)::

    main:12345:678
     1.0: 42
     2.0: 40 callee:40
    !checksum: 1234567890

Context profile format (one record per context)::

    [main:12 @ svc_0:3 @ mid_1]:2345:678
     1: 42
     ...

Numbers after the name are total and head counts.  Body lines are
``key: count [callee:count ...]``; dwarf keys print as ``line.disc``,
probe keys as bare ints.

Loading has two modes (DESIGN.md sec. 10): ``strict=True`` (default) raises
:class:`~repro.profile.errors.ProfileParseError` with the offending line
number on the first malformed construct; ``strict=False`` skips malformed
lines/records and tallies one ``profile.drop.*`` telemetry counter per
discarded construct, so a truncated or bit-flipped profile degrades to "the
parseable subset" instead of an exception.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from .. import telemetry
from .context import format_context, parse_context
from .errors import ProfileParseError
from .function_samples import FunctionSamples
from .profiles import ContextProfile, FlatProfile


def _format_key(key) -> str:
    if isinstance(key, tuple):
        return f"{key[0]}.{key[1]}"
    return str(key)


def _parse_key(text: str):
    if "." in text:
        line, disc = text.split(".", 1)
        return (int(line), int(disc))
    return int(text)


def _format_samples(header: str, samples: FunctionSamples) -> List[str]:
    lines = [f"{header}:{samples.total:g}:{samples.head:g}"]
    keys = set(samples.body) | set(samples.calls)
    for key in sorted(keys, key=_format_key):
        row = f" {_format_key(key)}: {samples.body.get(key, 0.0):g}"
        targets = samples.calls.get(key)
        if targets:
            for callee in sorted(targets):
                row += f" {callee}:{targets[callee]:g}"
        lines.append(row)
    if samples.checksum is not None:
        lines.append(f" !checksum: {samples.checksum}")
    if samples.dangling:
        keys = ",".join(sorted(_format_key(k) for k in samples.dangling))
        lines.append(f" !dangling: {keys}")
    for attr in sorted(samples.attributes):
        lines.append(f" !attribute: {attr}")
    return lines


def _drop(reason: str) -> None:
    telemetry.count("profile.drop", reason)


def _parse_samples(name: str, header_rest: str, header_line: int,
                   body_lines: List[Tuple[int, str]],
                   strict: bool) -> Optional[FunctionSamples]:
    """Parse one record; permissive mode returns None on a bad header and
    skips (counting) bad body lines."""
    samples = FunctionSamples(name)
    # header_rest is "total:head"
    try:
        total_text, head_text = header_rest.split(":", 1)
        samples.total = float(total_text)
        samples.head = float(head_text)
    except ValueError:
        if strict:
            raise ProfileParseError(
                f"malformed record header counts {header_rest!r}",
                header_line)
        _drop("malformed_record")
        return None
    for lineno, line in body_lines:
        line = line.strip()
        try:
            if line.startswith("!checksum:"):
                samples.checksum = int(line.split(":", 1)[1].strip())
                continue
            if line.startswith("!attribute:"):
                samples.attributes.add(line.split(":", 1)[1].strip())
                continue
            if line.startswith("!dangling:"):
                for part in line.split(":", 1)[1].strip().split(","):
                    if part:
                        samples.dangling.add(_parse_key(part))
                continue
            key_text, rest = line.split(":", 1)
            key = _parse_key(key_text.strip())
            fields = rest.split()
            count = float(fields[0])
            if count or len(fields) == 1:
                samples.body[key] = count
            for call_field in fields[1:]:
                callee, target_count = call_field.rsplit(":", 1)
                samples.add_call(key, callee, float(target_count))
        except (ValueError, IndexError):
            if strict:
                raise ProfileParseError(
                    f"malformed body line {line!r}", lineno)
            _drop("malformed_line")
    return samples


def dump_flat_profile(profile: FlatProfile) -> str:
    lines = [f"# kind: {profile.kind}"]
    for name in sorted(profile.functions):
        lines.extend(_format_samples(name, profile.functions[name]))
    return "\n".join(lines) + "\n"


def load_flat_profile(text: str, strict: bool = True) -> FlatProfile:
    lines = text.splitlines()
    kind = FlatProfile.KIND_DWARF
    start = 1
    if lines and lines[0].startswith("# kind:"):
        kind = lines[0].split(":", 1)[1].strip()
        lines = lines[1:]
        start = 2
    profile = FlatProfile(kind)
    for lineno, name, rest, body in _records(lines, start, strict):
        samples = _parse_samples(name, rest, lineno, body, strict)
        if samples is not None:
            profile.functions[name] = samples
    return profile


def dump_context_profile(profile: ContextProfile) -> str:
    lines = ["# kind: context"]
    for context in sorted(profile.contexts, key=format_context):
        header = format_context(context)
        lines.extend(_format_samples(header, profile.contexts[context]))
    return "\n".join(lines) + "\n"


def load_context_profile(text: str, strict: bool = True) -> ContextProfile:
    lines = text.splitlines()
    start = 1
    if lines and lines[0].startswith("# kind:"):
        lines = lines[1:]
        start = 2
    profile = ContextProfile()
    for lineno, name, rest, body in _records(lines, start, strict):
        try:
            context = parse_context(name)
        except ValueError:
            if strict:
                raise ProfileParseError(
                    f"malformed context {name!r}", lineno)
            _drop("malformed_record")
            continue
        samples = _parse_samples(context[-1][0], rest, lineno, body, strict)
        if samples is not None:
            profile.contexts[context] = samples
    return profile


def _records(lines: List[str], start: int,
             strict: bool = True
             ) -> Iterator[Tuple[int, str, str, List[Tuple[int, str]]]]:
    """Split serialized text into (header-line, name, header-rest,
    [(line-no, body-line), ...]) tuples."""
    current: Optional[Tuple[int, str, str]] = None
    body: List[Tuple[int, str]] = []
    for lineno, line in enumerate(lines, start):
        if not line.strip():
            continue
        if not line.startswith(" "):
            if current is not None:
                yield current[0], current[1], current[2], body
            if line.startswith("["):
                if "]" not in line:
                    if strict:
                        raise ProfileParseError(
                            f"unterminated context header {line!r}", lineno)
                    _drop("malformed_record")
                    current = None
                    body = []
                    continue
                name, rest = line.rsplit("]", 1)
                name += "]"
                rest = rest.lstrip(":")
            elif ":" in line:
                name, rest = line.split(":", 1)
            else:
                if strict:
                    raise ProfileParseError(
                        f"malformed record header {line!r}", lineno)
                _drop("malformed_record")
                current = None
                body = []
                continue
            current = (lineno, name, rest)
            body = []
        else:
            if current is None:
                # Body line with no record to attach to (truncation damage).
                if strict:
                    raise ProfileParseError(
                        f"body line outside any record: {line!r}", lineno)
                _drop("orphan_line")
                continue
            body.append((lineno, line))
    if current is not None:
        yield current[0], current[1], current[2], body


def profile_size_bytes(profile: Union[FlatProfile, ContextProfile]) -> int:
    """Size of the serialized profile — the scalability metric of sec. III.B."""
    if isinstance(profile, ContextProfile):
        return len(dump_context_profile(profile).encode("utf-8"))
    return len(dump_flat_profile(profile).encode("utf-8"))
