"""Text serialization of profiles (llvm-profdata-style).

Besides persistence and debuggability, serialization is how profile *size* is
measured for the scalability experiment (paper sec. III.B: raw
context-sensitive profiles can be ~10x larger; trimming brings them back in
line): :func:`profile_size_bytes` is the byte length of this encoding.

Flat profile format (one record per function)::

    main:12345:678
     1.0: 42
     2.0: 40 callee:40
    !checksum: 1234567890

Context profile format (one record per context)::

    [main:12 @ svc_0:3 @ mid_1]:2345:678
     1: 42
     ...

Numbers after the name are total and head counts.  Body lines are
``key: count [callee:count ...]``; dwarf keys print as ``line.disc``,
probe keys as bare ints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .context import ContextKey, format_context, parse_context
from .function_samples import FunctionSamples
from .profiles import ContextProfile, FlatProfile


def _format_key(key) -> str:
    if isinstance(key, tuple):
        return f"{key[0]}.{key[1]}"
    return str(key)


def _parse_key(text: str):
    if "." in text:
        line, disc = text.split(".", 1)
        return (int(line), int(disc))
    return int(text)


def _format_samples(header: str, samples: FunctionSamples) -> List[str]:
    lines = [f"{header}:{samples.total:g}:{samples.head:g}"]
    keys = set(samples.body) | set(samples.calls)
    for key in sorted(keys, key=_format_key):
        row = f" {_format_key(key)}: {samples.body.get(key, 0.0):g}"
        targets = samples.calls.get(key)
        if targets:
            for callee in sorted(targets):
                row += f" {callee}:{targets[callee]:g}"
        lines.append(row)
    if samples.checksum is not None:
        lines.append(f" !checksum: {samples.checksum}")
    if samples.dangling:
        keys = ",".join(sorted(_format_key(k) for k in samples.dangling))
        lines.append(f" !dangling: {keys}")
    for attr in sorted(samples.attributes):
        lines.append(f" !attribute: {attr}")
    return lines


def _parse_samples(name: str, header_rest: str,
                   body_lines: List[str]) -> FunctionSamples:
    samples = FunctionSamples(name)
    # header_rest is "total:head"
    total_text, head_text = header_rest.split(":", 1)
    samples.total = float(total_text)
    samples.head = float(head_text)
    for line in body_lines:
        line = line.strip()
        if line.startswith("!checksum:"):
            samples.checksum = int(line.split(":", 1)[1].strip())
            continue
        if line.startswith("!attribute:"):
            samples.attributes.add(line.split(":", 1)[1].strip())
            continue
        if line.startswith("!dangling:"):
            for part in line.split(":", 1)[1].strip().split(","):
                if part:
                    samples.dangling.add(_parse_key(part))
            continue
        key_text, rest = line.split(":", 1)
        key = _parse_key(key_text.strip())
        fields = rest.split()
        count = float(fields[0])
        if count or len(fields) == 1:
            samples.body[key] = count
        for call_field in fields[1:]:
            callee, target_count = call_field.rsplit(":", 1)
            samples.add_call(key, callee, float(target_count))
    return samples


def dump_flat_profile(profile: FlatProfile) -> str:
    lines = [f"# kind: {profile.kind}"]
    for name in sorted(profile.functions):
        lines.extend(_format_samples(name, profile.functions[name]))
    return "\n".join(lines) + "\n"


def load_flat_profile(text: str) -> FlatProfile:
    lines = text.splitlines()
    kind = FlatProfile.KIND_DWARF
    if lines and lines[0].startswith("# kind:"):
        kind = lines[0].split(":", 1)[1].strip()
        lines = lines[1:]
    profile = FlatProfile(kind)
    for name, rest, body in _records(lines):
        profile.functions[name] = _parse_samples(name, rest, body)
    return profile


def dump_context_profile(profile: ContextProfile) -> str:
    lines = ["# kind: context"]
    for context in sorted(profile.contexts, key=format_context):
        header = format_context(context)
        lines.extend(_format_samples(header, profile.contexts[context]))
    return "\n".join(lines) + "\n"


def load_context_profile(text: str) -> ContextProfile:
    lines = text.splitlines()
    if lines and lines[0].startswith("# kind:"):
        lines = lines[1:]
    profile = ContextProfile()
    for name, rest, body in _records(lines):
        context = parse_context(name)
        samples = _parse_samples(context[-1][0], rest, body)
        profile.contexts[context] = samples
    return profile


def _records(lines: List[str]):
    """Split serialized text into (header-name, header-rest, body-lines)."""
    current: Optional[Tuple[str, str]] = None
    body: List[str] = []
    for line in lines:
        if not line.strip():
            continue
        if not line.startswith(" "):
            if current is not None:
                yield current[0], current[1], body
            if line.startswith("["):
                name, rest = line.rsplit("]", 1)
                name += "]"
                rest = rest.lstrip(":")
            else:
                name, rest = line.split(":", 1)
            current = (name, rest)
            body = []
        else:
            body.append(line)
    if current is not None:
        yield current[0], current[1], body


def profile_size_bytes(profile: Union[FlatProfile, ContextProfile]) -> int:
    """Size of the serialized profile — the scalability metric of sec. III.B."""
    if isinstance(profile, ContextProfile):
        return len(dump_context_profile(profile).encode("utf-8"))
    return len(dump_flat_profile(profile).encode("utf-8"))
