"""Profile containers for every PGO variant.

* :class:`FlatProfile` — one :class:`FunctionSamples` per function.  Used by
  AutoFDO (body keyed by (line, discriminator)), probe-only CSSPGO (body keyed
  by probe id), and instrumentation PGO (exact block counts keyed by probe
  id of the counter's block).
* :class:`ContextProfile` — one record per *calling context* (full CSSPGO).
  Contexts form a trie; ``base`` lookups and prefix queries support the
  pre-inliner and the sample loader.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .context import (ContextKey, base_context, format_context, is_prefix,
                      leaf_function)
from .function_samples import FunctionSamples


class FlatProfile:
    """Context-insensitive profile: function name -> samples."""

    #: body-key kinds
    KIND_DWARF = "dwarf"
    KIND_PROBE = "probe"
    KIND_INSTR = "instr"

    def __init__(self, kind: str):
        self.kind = kind
        self.functions: Dict[str, FunctionSamples] = {}

    def get_or_create(self, name: str) -> FunctionSamples:
        samples = self.functions.get(name)
        if samples is None:
            samples = FunctionSamples(name)
            self.functions[name] = samples
        return samples

    def get(self, name: str) -> Optional[FunctionSamples]:
        return self.functions.get(name)

    def finalize(self) -> None:
        for samples in self.functions.values():
            samples.finalize()

    def total_samples(self) -> float:
        return sum(s.total for s in self.functions.values())

    def merge(self, other: "FlatProfile") -> None:
        """Accumulate another flat profile's counts into this one.

        Only *additive* kinds merge: body counts of probe and instr profiles
        are plain sums, so merging partials of any partition reproduces the
        unpartitioned profile exactly.  DWARF profiles are refused — their
        max-heuristic body counts are not additive (a max of partial sums is
        not the max of the total); merge DWARF partials at the address level
        instead (:class:`~repro.profile.merge.DwarfRangeCounts`).

        ``other`` is never mutated; records it alone carries are cloned in.
        """
        if self.kind != other.kind:
            raise ValueError(
                f"cannot merge {other.kind!r} profile into {self.kind!r} "
                f"profile")
        if self.kind == FlatProfile.KIND_DWARF:
            raise ValueError(
                "DWARF profiles do not merge: the max-heuristic is not "
                "additive; merge pre-collapse DwarfRangeCounts instead")
        for name, samples in other.functions.items():
            existing = self.functions.get(name)
            if existing is None:
                self.functions[name] = samples.clone()
            else:
                if existing.checksum is None:
                    existing.checksum = samples.checksum
                existing.attributes |= samples.attributes
                existing.merge(samples)

    def __repr__(self) -> str:
        return f"<FlatProfile {self.kind} ({len(self.functions)} functions)>"


class ContextProfile:
    """Context-sensitive probe profile: context key -> samples."""

    def __init__(self) -> None:
        self.contexts: Dict[ContextKey, FunctionSamples] = {}

    def get_or_create(self, context: ContextKey) -> FunctionSamples:
        samples = self.contexts.get(context)
        if samples is None:
            samples = FunctionSamples(leaf_function(context))
            self.contexts[context] = samples
        return samples

    def get(self, context: ContextKey) -> Optional[FunctionSamples]:
        return self.contexts.get(context)

    def base(self, function_name: str) -> Optional[FunctionSamples]:
        return self.contexts.get(base_context(function_name))

    def contexts_of(self, function_name: str) -> List[ContextKey]:
        """All context keys whose leaf is ``function_name``."""
        return [ctx for ctx in self.contexts
                if leaf_function(ctx) == function_name]

    def children_of(self, context: ContextKey) -> List[ContextKey]:
        """Direct child contexts, *including implied ones*.

        A child may have no record of its own (its counts were trimmed into
        a base profile) while deeper descendants survive; such intermediate
        trie nodes are synthesized from the descendants' key prefixes so
        consumers (the pre-inliner, the sample loader) can still walk the
        trie edge by edge.
        """
        depth = len(context)
        children = set()
        for ctx in self.contexts:
            if len(ctx) <= depth or not is_prefix(context, ctx):
                continue
            prefix = ctx[:depth + 1]
            if len(ctx) > depth + 1:
                # Normalize the implied leaf frame: clear its callsite slot.
                prefix = prefix[:-1] + ((prefix[-1][0], None),)
            children.add(prefix)
        return sorted(children, key=format_context)

    def subtree_of(self, context: ContextKey) -> List[ContextKey]:
        """``context`` itself plus every deeper context beneath it."""
        return [ctx for ctx in self.contexts if is_prefix(context, ctx)]

    def subtree_total(self, context: ContextKey) -> float:
        """Total samples of a context and everything inlined beneath it."""
        return sum(self.contexts[c].total for c in self.subtree_of(context))

    def promote_subtree(self, context: ContextKey) -> None:
        """Re-root ``context`` and its subtree at the leaf function's base.

        This is the paper's ``MoveContextProfileToBaseProfile`` generalized
        to whole subtrees: when a context is *not* inlined into its caller,
        its samples — and the relative structure beneath it — belong to the
        callee's standalone copy.
        """
        strip = len(context) - 1
        if strip <= 0:
            return
        for ctx in self.subtree_of(context):
            samples = self.contexts.pop(ctx)
            new_key = ctx[strip:]
            existing = self.contexts.get(new_key)
            if existing is None:
                self.contexts[new_key] = samples
            else:
                existing.attributes |= samples.attributes
                existing.merge(samples)

    def finalize(self) -> None:
        for samples in self.contexts.values():
            samples.finalize()

    def total_samples(self) -> float:
        return sum(s.total for s in self.contexts.values())

    def merge(self, other: "ContextProfile", trie=None) -> None:
        """Union another context profile into this one (trie union).

        Counts sum per context, dangling sets union, checksums first-win
        (all partials read the same probe-metadata table, so they agree).
        ``trie`` — a :class:`~repro.profile.context.ContextTrie` — re-interns
        incoming keys so contexts produced by different shard-local interners
        collapse back to one canonical tuple per distinct context.  ``other``
        is never mutated; contexts it alone carries are cloned in.
        """
        for context, samples in other.contexts.items():
            key = trie.intern(context) if trie is not None else context
            existing = self.contexts.get(key)
            if existing is None:
                self.contexts[key] = samples.clone()
            else:
                if existing.checksum is None:
                    existing.checksum = samples.checksum
                existing.attributes |= samples.attributes
                existing.merge(samples)

    def merge_context_into_base(self, context: ContextKey) -> None:
        """Fold one context's counts into its leaf function's base context."""
        samples = self.contexts.pop(context)
        base = self.get_or_create(base_context(samples.name))
        if base.checksum is None:
            base.checksum = samples.checksum
        base.merge(samples)

    def flatten(self) -> FlatProfile:
        """Collapse all contexts into a context-insensitive probe profile."""
        flat = FlatProfile(FlatProfile.KIND_PROBE)
        for context, samples in self.contexts.items():
            merged = flat.get_or_create(samples.name)
            if merged.checksum is None:
                merged.checksum = samples.checksum
            merged.merge(samples)
        flat.finalize()
        return flat

    def __repr__(self) -> str:
        return f"<ContextProfile ({len(self.contexts)} contexts)>"
