"""Profile-quality metrics."""

from .overlap import (block_overlap_function, block_overlap_program,
                      module_block_counts)

__all__ = ["block_overlap_function", "block_overlap_program",
           "module_block_counts"]
