"""Block-overlap profile-quality metric (paper sec. IV.C, Table I).

For a function with block set V, test counts f(v) and ground-truth counts
gt(v)::

    D(V) = sum_v min( f(v) / sum f ,  gt(v) / sum gt )

and for a program, the f-weighted aggregation over functions::

    D(P) = sum_V D(V) * (sum_{v in V} f(v)) / (sum_V sum_v f(v))

Ground truth is the instrumentation-based profile (exact block counts);
f is whatever a PGO variant annotated onto the same fresh IR.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function, Module


def block_overlap_function(f_counts: Dict[str, float],
                           gt_counts: Dict[str, float]) -> float:
    """D(V) over a common block-label set."""
    labels = set(f_counts) | set(gt_counts)
    f_total = sum(f_counts.get(l, 0.0) for l in labels)
    gt_total = sum(gt_counts.get(l, 0.0) for l in labels)
    if f_total <= 0 or gt_total <= 0:
        # Degenerate: identically-cold profiles overlap perfectly, a cold
        # profile vs a warm ground truth overlaps not at all.
        return 1.0 if f_total == gt_total else 0.0
    overlap = 0.0
    for label in labels:
        overlap += min(f_counts.get(label, 0.0) / f_total,
                       gt_counts.get(label, 0.0) / gt_total)
    return overlap


def block_overlap_program(f_profile: Dict[str, Dict[str, float]],
                          gt_profile: Dict[str, Dict[str, float]],
                          weigh_by: str = "test") -> float:
    """D(P): function overlaps aggregated under per-function weights.

    ``weigh_by="test"`` (the paper's Table I convention) weights each
    function by its share of the *test* profile — which silently forgives
    a profile for *dropping* functions entirely (a dropped function has
    zero test weight).  ``weigh_by="gt"`` weights by the ground-truth
    share instead: every function the program actually executed counts,
    so coverage gaps show up as lost overlap.  Use "gt" when comparing
    estimators that differ in *which* functions they cover (e.g. the
    static-fill hybrid vs a drop-cold baseline).
    """
    if weigh_by not in ("test", "gt"):
        raise ValueError(f"weigh_by must be 'test' or 'gt', got {weigh_by!r}")
    weighing = f_profile if weigh_by == "test" else gt_profile
    functions = set(f_profile) | set(gt_profile)
    grand_total = sum(sum(counts.values()) for counts in weighing.values())
    if grand_total <= 0:
        return 0.0
    score = 0.0
    for name in functions:
        f_counts = f_profile.get(name, {})
        gt_counts = gt_profile.get(name, {})
        weight = sum(weighing.get(name, {}).values()) / grand_total
        if weight <= 0:
            continue
        score += block_overlap_function(f_counts, gt_counts) * weight
    return score


def module_block_counts(module: Module) -> Dict[str, Dict[str, float]]:
    """Extract annotated block counts: function -> {block label -> count}."""
    result: Dict[str, Dict[str, float]] = {}
    for name, fn in module.functions.items():
        counts = {b.label: float(b.count) for b in fn.blocks
                  if b.count is not None}
        if counts:
            result[name] = counts
    return result
