"""Sample loaders: per-variant profile application.

* :func:`annotate_autofdo` — DWARF line matching + Profi inference (the
  profile-guided bottom-up inliner then runs inside the optimization
  pipeline with context-insensitive count scaling — Fig. 3a behaviour);
* :func:`annotate_probe_flat` — probe-id matching with checksum
  verification + inference (probe-only CSSPGO);
* :func:`csspgo_sample_loader` — full CSSPGO: walks functions in the call
  graph's top-down order, annotates each from its base context, replays the
  pre-inliner's persisted ``ShouldBeInlined`` decisions by actually inlining
  those call sites, and annotates every inlined body from its context
  profile slice — accurate post-inline profile (Fig. 3b behaviour);
* :func:`annotate_instr` — exact counter profile (ground-truth correlation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import obs, telemetry
from ..inference.flow import infer_module_counts
from ..ir.function import Function, Module
from ..ir.instructions import Call, PseudoProbe
from ..opt.inliner import (CALLER_SIZE_LIMIT, bottom_up_order,
                           function_size, inline_call)
from ..opt.pass_manager import OptConfig
from ..probes.instrumentation import InstrumentationMap
from ..profile.context import ContextKey, base_context
from ..profile.function_samples import ATTR_SHOULD_INLINE, FunctionSamples
from ..profile.profiles import ContextProfile, FlatProfile
from ..profile.summary import ProfileSummary
from .matcher import (ChecksumMismatch, annotate_function_dwarf,
                      annotate_function_probe, fold_discriminators)


class AnnotationStats:
    """What happened during profile application (drift diagnostics etc.)."""

    def __init__(self) -> None:
        self.annotated: List[str] = []
        self.rejected_checksum: List[str] = []
        self.no_profile: List[str] = []
        self.inlined_contexts: List[ContextKey] = []

    def usable(self, profile_nonempty: bool) -> bool:
        """Did the profile annotate *anything*?  ``False`` with a non-empty
        profile means every function was rejected or unmatched — the signal
        the driver's degradation chain acts on."""
        return bool(self.annotated) or not profile_nonempty

    def __repr__(self) -> str:
        return (f"<AnnotationStats annotated={len(self.annotated)} "
                f"rejected={len(self.rejected_checksum)} "
                f"static={len(self.no_profile)} "
                f"cs_inlined={len(self.inlined_contexts)}>")


def _reject_checksum(stats: AnnotationStats, name: str, strict: bool,
                     exc: ChecksumMismatch) -> None:
    """Permissive mode: drop one function's profile, count it, carry on.
    Strict mode: surface the typed error."""
    if strict:
        raise exc
    telemetry.count("annotate", "checksum_rejected_functions")
    telemetry.count("annotate.drop", "checksum_mismatch")
    obs.emit("samples_dropped", stage="annotate", reason="checksum_mismatch",
             count=1, function=name)
    stats.rejected_checksum.append(name)


def annotate_autofdo(module: Module, profile: FlatProfile,
                     static_fill: bool = False) -> AnnotationStats:
    stats = AnnotationStats()
    heads: Dict[str, float] = {}
    for name, fn in module.functions.items():
        samples = profile.get(name)
        if samples is None or samples.total <= 0:
            stats.no_profile.append(name)
            continue
        annotate_function_dwarf(fn, samples)
        heads[name] = samples.head
        stats.annotated.append(name)
    infer_module_counts(module, heads, static_fill=static_fill)
    module.profile_summary = ProfileSummary.from_module(module)
    return stats


def annotate_probe_flat(module: Module, profile: FlatProfile,
                        strict: bool = False,
                        static_fill: bool = False) -> AnnotationStats:
    """Probe-only profile application with enforced checksum verification.

    Per-function fallback (permissive mode, the default): a function whose
    recorded checksum disagrees with the IR is dropped from the application
    — counted under ``annotate.drop.checksum_mismatch`` — and the rest of
    the profile still applies.  ``strict=True`` raises
    :class:`~repro.profile.errors.ProfileStaleError` instead.
    """
    stats = AnnotationStats()
    heads: Dict[str, float] = {}
    for name, fn in module.functions.items():
        samples = profile.get(name)
        if samples is None or samples.total <= 0:
            stats.no_profile.append(name)
            continue
        try:
            annotate_function_probe(fn, samples)
        except ChecksumMismatch as exc:
            _reject_checksum(stats, name, strict, exc)
            continue
        heads[name] = samples.head
        stats.annotated.append(name)
    infer_module_counts(module, heads, static_fill=static_fill)
    module.profile_summary = ProfileSummary.from_module(module)
    return stats


def annotate_instr(module: Module, counters: Dict[Tuple[str, int], float],
                   imap: InstrumentationMap) -> AnnotationStats:
    """Exact instrumentation counts: perfect correlation by construction."""
    stats = AnnotationStats()
    for name, fn in module.functions.items():
        num = imap.num_counters.get(name)
        if num is None:
            stats.no_profile.append(name)
            continue
        any_count = 0.0
        for counter_id, block in enumerate(fn.blocks):
            count = float(counters.get((name, counter_id), 0.0))
            block.count = count
            any_count += count
        fn.entry_count = fn.entry.count
        if any_count > 0:
            stats.annotated.append(name)
        else:
            stats.no_profile.append(name)
    module.profile_summary = ProfileSummary.from_module(module)
    return stats


def annotate_fs_autofdo_early(module: Module, profile: FlatProfile,
                              static_fill: bool = False) -> AnnotationStats:
    """FS-AutoFDO's first annotation: discriminators folded away (the fresh
    IR has none yet); drives inlining/unrolling like plain AutoFDO."""
    stats = AnnotationStats()
    heads: Dict[str, float] = {}
    for name, fn in module.functions.items():
        samples = profile.get(name)
        if samples is None or samples.total <= 0:
            stats.no_profile.append(name)
            continue
        annotate_function_dwarf(fn, fold_discriminators(samples))
        heads[name] = samples.head
        stats.annotated.append(name)
    infer_module_counts(module, heads, static_fill=static_fill)
    module.profile_summary = ProfileSummary.from_module(module)
    return stats


def annotate_fs_autofdo_late(module: Module, profile: FlatProfile) -> int:
    """FS-AutoFDO's late-stage annotation: after the optimizer duplicated
    code and FS discriminators were assigned, re-annotate the *optimized*
    CFG with full (line, discriminator) keys.  Inlined instructions look up
    the inlinee's own samples (dwarf profiles attribute by leaf function).
    Only works to the extent the profiling build's code generation matches
    this build's — the stability requirement of paper sec. IV.A."""
    annotated = 0
    heads: Dict[str, float] = {}
    for name, fn in module.functions.items():
        any_counts = False
        for block in fn.blocks:
            best = None
            for instr in block.instrs:
                if instr.dloc is None:
                    continue
                leaf = instr.dloc.leaf_function(name)
                samples = profile.get(leaf)
                if samples is None:
                    continue
                count = samples.body.get((instr.dloc.line,
                                          instr.dloc.discriminator))
                if count is not None and (best is None or count > best):
                    best = count
            block.count = best if best is not None else 0.0
            if best:
                any_counts = True
        samples = profile.get(name)
        if samples is not None and samples.total > 0:
            fn.entry_count = samples.head
            heads[name] = samples.head
        if any_counts:
            annotated += 1
    infer_module_counts(module, heads)
    module.profile_summary = ProfileSummary.from_module(module)
    return annotated


# ---------------------------------------------------------------------------
# Full CSSPGO top-down sample loader
# ---------------------------------------------------------------------------


def csspgo_sample_loader(module: Module, profile: ContextProfile,
                         config: Optional[OptConfig] = None,
                         strict: bool = False,
                         static_fill: bool = False) -> AnnotationStats:
    """Annotate + replay pre-inliner decisions, top-down.

    Requires a pre-inliner-transformed profile: surviving non-base contexts
    carry the ``ShouldBeInlined`` attribute (Algorithm 2 output).  The
    compiler honors the pre-inliner's decisions "when possible" (paper
    sec. III.B(b)): marks are dropped — and their context subtrees merged
    back into base profiles — when the compiler's own inline limits (callee
    size, caller growth, noinline, recursion, checksum) say no.
    """
    config = config or OptConfig()
    stats = AnnotationStats()
    heads: Dict[str, float] = {}
    order = list(reversed(bottom_up_order(module)))  # top-down
    for name in order:
        fn = module.function(name)
        base = profile.base(name)
        if base is None or base.total <= 0:
            if not profile.contexts_of(name):
                stats.no_profile.append(name)
                continue
        if base is not None:
            try:
                annotate_function_probe(fn, base)
            except ChecksumMismatch as exc:
                _reject_checksum(stats, name, strict, exc)
                continue
            heads[name] = base.head
            stats.annotated.append(name)
        _replay_inline_decisions(module, fn, profile, stats, config)
    infer_module_counts(module, heads, static_fill=static_fill)
    module.profile_summary = ProfileSummary.from_module(module)
    return stats


def _replay_inline_decisions(module: Module, fn: Function,
                             profile: ContextProfile,
                             stats: AnnotationStats,
                             config: OptConfig) -> None:
    """BFS over marked child contexts, inlining and annotating each."""
    # Worklist of (profile context, probe chain) pairs; the probe chain is
    # the (guid, probe_id) spelling of the context used to locate call sites
    # and cloned probes inside ``fn``.
    worklist: List[Tuple[ContextKey, tuple]] = [(base_context(fn.name), ())]
    while worklist:
        ctx_key, chain = worklist.pop()
        for child_key in profile.children_of(ctx_key):
            child = profile.contexts.get(child_key)
            if child is None or ATTR_SHOULD_INLINE not in child.attributes:
                continue
            caller_name, callsite_probe = child_key[-2]
            callee_name = child_key[-1][0]
            if not module.has_function(callee_name):
                continue
            callee = module.function(callee_name)
            checksum_ok = not (child.checksum is not None
                               and callee.probe_checksum is not None
                               and child.checksum != callee.probe_checksum)
            if not checksum_ok:
                telemetry.count("annotate", "checksum_rejected_inline_sites")
                telemetry.count("annotate.drop", "inline_site_checksum_mismatch")
                stats.rejected_checksum.append(f"{callee_name}@inline")
            # The compiler's own limits gate the pre-inliner's wish.
            within_limits = (function_size(callee) <= config.inline_hot_threshold
                             and function_size(fn) < CALLER_SIZE_LIMIT)
            site = (None if callee is fn or callee.noinline or not checksum_ok
                    or not within_limits
                    else _find_callsite(fn, chain, callsite_probe, callee_name))
            if site is None:
                # Cannot honor the pre-inliner's decision (noinline callee,
                # drifted checksum, or the call site no longer exists): the
                # callee stays outlined, so its context subtree is merged
                # back into the callee's standalone profile before that
                # function is annotated (it comes later in top-down order).
                telemetry.count("annotate", "preinline_decisions_dropped")
                profile.promote_subtree(child_key)
                continue
            block_label, call_index, call = site
            child_chain = call.probe_context()
            telemetry.count("annotate", "preinline_decisions_replayed")
            telemetry.remark(
                "sample-loader", "Inlined", fn.name,
                f"{callee_name} inlined into {fn.name} (pre-inliner "
                f"ShouldBeInlined replay, context depth {len(child_key)})",
                loc=call.dloc, callee=callee_name)
            inline_call(module, fn, block_label, call_index, count_scale=None)
            _annotate_cloned_blocks(fn, child_chain, child)
            stats.inlined_contexts.append(child_key)
            worklist.append((child_key, child_chain))


def _find_callsite(fn: Function, chain: tuple, callsite_probe: int,
                   callee_name: str):
    """Locate the call whose probe context is ``chain + (fn-or-inlinee,
    callsite_probe)`` and whose callee matches."""
    for block in fn.blocks:
        for idx, instr in enumerate(block.instrs):
            if not isinstance(instr, Call) or instr.callee != callee_name:
                continue
            if instr.probe_id != callsite_probe:
                continue
            if instr.inline_probe_stack != chain:
                continue
            return block.label, idx, instr
    return None


def _annotate_cloned_blocks(fn: Function, child_chain: tuple,
                            child: FunctionSamples) -> None:
    """Set counts on blocks whose probes came from this inlined context."""
    for block in fn.blocks:
        for instr in block.instrs:
            if (isinstance(instr, PseudoProbe)
                    and instr.inline_stack == child_chain):
                if instr.probe_id in child.dangling:
                    block.count = None
                else:
                    block.count = child.body.get(instr.probe_id, 0.0)
                break
