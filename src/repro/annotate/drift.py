"""Source-drift simulation (paper sec. III.A).

Two kinds of drift, matching the paper's discussion:

* :func:`apply_comment_drift` — an edit that does not change the CFG (e.g.
  adding a comment) shifts the line numbers of everything after it.  AutoFDO
  profiles keyed by line offsets silently misattribute; probe profiles are
  untouched (ids and checksums depend only on CFG shape).
* :func:`apply_cfg_drift` — an edit that adds control flow.  The CFG checksum
  changes, so probe-based annotation *detects* the drift and rejects the
  stale profile instead of consuming garbage.
"""

from __future__ import annotations

from ..ir.debug_info import DebugLoc
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import Assign, Br, Cmp, CondBr


def apply_comment_drift(module: Module, function_name: str,
                        at_line: int, shift: int = 1) -> None:
    """Shift line numbers >= ``at_line`` in one function (comment inserted)."""
    fn = module.function(function_name)
    for instr in fn.instructions():
        if instr.dloc is not None and not instr.dloc.inline_stack:
            if instr.dloc.line >= at_line:
                instr.dloc = instr.dloc.with_line(instr.dloc.line + shift)


def apply_cfg_drift(module: Module, function_name: str) -> None:
    """Add a (dynamically dead) guard diamond at the function entry.

    The new branch changes the CFG shape: probe checksums computed on the
    drifted source will differ from the profile's persisted checksum.
    """
    fn = module.function(function_name)
    entry = fn.entry
    guard_label = fn.fresh_label("drift")
    cond_reg = fn.fresh_reg("drift")
    # Guard that never fires at run time but exists in the CFG.
    guard = BasicBlock(guard_label, [
        Assign(cond_reg, 0, DebugLoc(1)),
        Br(entry.label, DebugLoc(1)),
    ])
    new_entry_label = fn.fresh_label("drifted_entry")
    new_entry = BasicBlock(new_entry_label, [
        Cmp("eq", cond_reg, 0, 1, DebugLoc(1)),
        CondBr(cond_reg, guard_label, entry.label, DebugLoc(1)),
    ])
    fn.blocks.insert(0, new_entry)
    fn._by_label[new_entry_label] = new_entry
    fn.add_block(guard)
