"""Profile application: matching, sample loading, drift handling."""

from .drift import apply_cfg_drift, apply_comment_drift
from .matcher import (ChecksumMismatch, annotate_function_dwarf,
                      annotate_function_probe, clear_annotation)
from .sample_loader import (AnnotationStats, annotate_autofdo,
                            annotate_instr, annotate_probe_flat,
                            csspgo_sample_loader)
from .validation import ValidationReport, validate_profile

__all__ = [
    "AnnotationStats", "ChecksumMismatch", "ValidationReport",
    "annotate_autofdo", "annotate_function_dwarf", "annotate_function_probe",
    "annotate_instr", "annotate_probe_flat", "apply_cfg_drift",
    "apply_comment_drift", "clear_annotation", "csspgo_sample_loader",
    "validate_profile",
]
