"""Profile-vs-binary validation: would this profile apply cleanly?

The offline half of the checksum enforcement that
:func:`~repro.annotate.sample_loader.annotate_probe_flat` performs at
application time: given a profile and the build artifacts it is about to be
applied to, report — *without building anything* — how much of it will
match.  This is the engine of the ``repro validate`` CLI subcommand (CI
gate: ship the profile only if enough of it is still valid).

Checksums answer "is this the same CFG"; the flow-consistency *linter*
(``analysis.lint``) answers "are these counts even possible on that CFG".
:func:`validate_profile` runs both when given the probed IR, folding lint
findings into the report so one ``repro validate --lint`` call gates on
staleness and corruption together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..codegen.binary import Binary
from ..codegen.probe_metadata import ProbeMetadata
from ..ir.function import Module
from ..profile.profiles import ContextProfile, FlatProfile

Profile = Union[FlatProfile, ContextProfile]


class ValidationReport:
    """Per-function checksum audit of one profile against one binary."""

    def __init__(self) -> None:
        #: Functions whose recorded checksum equals the binary's.
        self.matched: List[str] = []
        #: Functions whose recorded checksum disagrees (stale profile).
        self.mismatched: List[str] = []
        #: Profile functions the binary does not know (moved/renamed
        #: functions, GUID drift — the "different build" signal).
        self.unknown: List[str] = []
        #: Functions present in both but with no checksum to compare
        #: (DWARF profiles, or probe records that never carried one).
        self.unchecked: List[str] = []
        #: Flow-consistency findings (``analysis.lint``), populated only
        #: when :func:`validate_profile` was given the probed IR to lint
        #: against.  ``None`` = lint did not run.
        self.lint_findings: Optional[list] = None
        #: The full :class:`~repro.analysis.lint.LintReport` behind
        #: ``lint_findings`` (function tallies, per-rule rollups).
        self.lint_report = None

    @property
    def checked(self) -> int:
        return len(self.matched) + len(self.mismatched)

    @property
    def match_rate(self) -> float:
        """Fraction of checksum-bearing functions that still match; 1.0 for
        a profile with nothing to check (nothing contradicts the binary)."""
        if not self.checked:
            return 1.0
        return len(self.matched) / self.checked

    def passed(self, min_match_rate: float = 1.0,
               max_unknown: Optional[int] = None,
               max_lint_findings: Optional[int] = 0) -> bool:
        if self.match_rate < min_match_rate:
            return False
        if max_unknown is not None and len(self.unknown) > max_unknown:
            return False
        if (max_lint_findings is not None and self.lint_findings is not None
                and len(self.lint_findings) > max_lint_findings):
            return False
        return True

    def __repr__(self) -> str:
        return (f"<ValidationReport match={len(self.matched)} "
                f"mismatch={len(self.mismatched)} unknown={len(self.unknown)} "
                f"rate={self.match_rate:.2%}>")


def _profile_checksums(profile: Profile) -> Dict[str, Optional[int]]:
    """function name -> recorded checksum (first non-None record wins)."""
    recorded: Dict[str, Optional[int]] = {}
    if isinstance(profile, ContextProfile):
        records = profile.contexts.values()
    else:
        records = profile.functions.values()
    for samples in records:
        if recorded.get(samples.name) is None:
            recorded[samples.name] = samples.checksum
    return recorded


def validate_profile(profile: Profile, binary: Binary,
                     probe_meta: Optional[ProbeMetadata],
                     lint_module: Optional[Module] = None,
                     lint_config=None) -> ValidationReport:
    """Audit every profile function against the binary's recorded checksums.

    Name resolution goes through the GUID map, not just the symbol table:
    a function fully inlined away has no out-of-line symbol but is still a
    known, checksummed part of this build.

    ``lint_module`` — the probe-instrumented IR the profile's probe ids
    refer to; when given, the flow-consistency linter runs too and its
    findings land in ``report.lint_findings`` (gated by ``passed()``).
    """
    report = ValidationReport()
    checksums = probe_meta.checksums if probe_meta is not None else {}
    guid_by_name = {name: guid for guid, name in binary.guid_to_name.items()}
    recorded_by_name = _profile_checksums(profile)
    for name in sorted(recorded_by_name):
        recorded = recorded_by_name[name]
        symbol = binary.symbols.get(name)
        guid = symbol.guid if symbol is not None else guid_by_name.get(name)
        if guid is None:
            report.unknown.append(name)
            continue
        expected = checksums.get(guid)
        if recorded is None or expected is None:
            report.unchecked.append(name)
        elif recorded == expected:
            report.matched.append(name)
        else:
            report.mismatched.append(name)
    if lint_module is not None:
        from ..analysis.lint import lint_profile
        lint_report = lint_profile(profile, lint_module, lint_config)
        report.lint_findings = list(lint_report.findings)
        report.lint_report = lint_report
    return report
