"""Profile-to-IR matching: attaching counts to a fresh module's blocks.

Two matchers, mirroring the two correlation mechanisms of Fig. 2:

* DWARF matching — block count = **max** over the (line, discriminator) keys
  of the block's instructions (AutoFDO's heuristic).  Source drift silently
  shifts keys and poisons the match — the failure mode the paper measured at
  8% performance loss.
* Probe matching — block count = the count of the block's pseudo-probe, but
  *only* when the profile's CFG checksum matches the function's current
  checksum; a mismatch rejects the whole function profile (the paper's drift
  detection).  Dangling ids annotate as unknown (None) for inference to fill.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import PseudoProbe
from ..profile.errors import ProfileStaleError
from ..profile.function_samples import FunctionSamples


def annotate_function_dwarf(fn: Function, samples: FunctionSamples) -> None:
    """AutoFDO-style line-offset matching (no checksum protection)."""
    for block in fn.blocks:
        best: Optional[float] = None
        for instr in block.instrs:
            if instr.dloc is None or instr.dloc.inline_stack:
                continue
            count = samples.body.get((instr.dloc.line,
                                      instr.dloc.discriminator))
            if count is not None and (best is None or count > best):
                best = count
        block.count = best if best is not None else 0.0
    fn.entry_count = samples.head


#: Historical name for the drift-detection failure; the typed hierarchy in
#: :mod:`repro.profile.errors` owns the class now, so ``except
#: ChecksumMismatch`` and ``except ProfileStaleError`` are interchangeable.
ChecksumMismatch = ProfileStaleError


def annotate_function_probe(fn: Function, samples: FunctionSamples,
                            strict_checksum: bool = True) -> None:
    """CSSPGO probe matching with checksum verification."""
    if (strict_checksum and samples.checksum is not None
            and fn.probe_checksum is not None
            and samples.checksum != fn.probe_checksum):
        raise ChecksumMismatch(
            f"{fn.name}: profile checksum {samples.checksum} != IR checksum "
            f"{fn.probe_checksum}")
    for block in fn.blocks:
        count: Optional[float] = 0.0
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe) and not instr.inline_stack:
                if instr.probe_id in samples.dangling:
                    count = None  # unknown, to be inferred
                else:
                    count = samples.body.get(instr.probe_id, 0.0)
                break
        block.count = count
    fn.entry_count = samples.head


def fold_discriminators(samples: FunctionSamples) -> FunctionSamples:
    """Collapse (line, disc) keys to (line, 0) taking the max — how a
    fresh (discriminator-free) IR consumes an FS-AutoFDO profile early."""
    folded = FunctionSamples(samples.name)
    folded.head = samples.head
    folded.checksum = samples.checksum
    for (line, _disc), count in samples.body.items():
        folded.set_body_max((line, 0), count)
    for (line, _disc), targets in samples.calls.items():
        for callee, count in targets.items():
            folded.add_call((line, 0), callee, count)
    folded.finalize()
    return folded


def clear_annotation(fn: Function) -> None:
    for block in fn.blocks:
        block.count = None
    fn.entry_count = None
