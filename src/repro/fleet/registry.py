"""Service registry: the simulated fleet the profiler collects from.

Each :class:`Service` is one continuously-deployed program — a seeded
:mod:`repro.workloads` module built as a CSSPGO profiling binary (probes
inserted, release-style optimization).  Services differ in *shape* (their
workload spec), *traffic weight* (skewed, like a real fleet — the
scheduler prioritizes heavy services), and *release cadence*: a rolling
release rebuilds the workload with a revision-bumped seed, which changes
the code and therefore bumps :meth:`~repro.codegen.binary.Binary.identity`
— exactly the "deployed binary races ahead of its profile" situation that
drives the CSSPGO -> AutoFDO -> no-PGO degradation chain.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional

from .. import obs
from ..pgo.build import BuildArtifacts, build
from ..pgo.variants import PGOVariant
from ..workloads import WorkloadSpec, build_workload

#: Seed stride between revisions of one service — coprime to the service
#: seed strides below, so revision streams never collide across services.
_REVISION_STRIDE = 7919


class ServiceSpec:
    """Shape + operational cadence of one fleet service."""

    def __init__(self, name: str, workload: WorkloadSpec, *,
                 weight: float = 1.0,
                 collect_every: int = 20, collect_offset: int = 0,
                 release_every: int = 0, release_offset: int = 0):
        self.name = name
        self.workload = workload
        #: Relative traffic share; the scheduler serves heavier services
        #: first when tasks contend for workers.
        self.weight = weight
        #: Ticks between collection-task schedulings (offset staggers
        #: services so the fleet's load is spread, not phase-locked).
        self.collect_every = max(1, collect_every)
        self.collect_offset = collect_offset % self.collect_every
        #: Ticks between rolling releases; 0 = this service never releases.
        self.release_every = release_every
        self.release_offset = release_offset


class Service:
    """Runtime state of one deployed service: current revision + binary."""

    def __init__(self, spec: ServiceSpec):
        self.spec = spec
        self.revision = 0
        self.module = None
        self.build: Optional[BuildArtifacts] = None
        self.binary_id: Optional[str] = None
        self._rebuild()

    def _rebuild(self) -> None:
        workload = copy.copy(self.spec.workload)
        workload.seed = self.spec.workload.seed \
            + self.revision * _REVISION_STRIDE
        self.module = build_workload(workload)
        # The deployed binary is a CSSPGO profiling build: probes inserted,
        # release-style optimization — what the fleet's PMU attaches to.
        self.build = build(self.module, PGOVariant.CSSPGO_FULL)
        self.binary_id = self.build.binary.identity()

    def release(self, tick: int) -> None:
        """Roll out the next revision (new code, new binary identity)."""
        self.revision += 1
        self._rebuild()
        obs.emit("fleet_release", service=self.spec.name,
                 revision=self.revision, binary=self.binary_id, tick=tick)

    def __repr__(self) -> str:
        return (f"<Service {self.spec.name} rev={self.revision} "
                f"binary={self.binary_id}>")


class ServiceRegistry:
    """Ordered collection of services with rolling-release bookkeeping."""

    def __init__(self, services: Iterable[Service]):
        self.services: Dict[str, Service] = {}
        for service in services:
            if service.spec.name in self.services:
                raise ValueError(
                    f"duplicate service name {service.spec.name!r}")
            self.services[service.spec.name] = service

    def __len__(self) -> int:
        return len(self.services)

    def __iter__(self):
        return iter(self.services.values())

    def get(self, name: str) -> Service:
        return self.services[name]

    def step(self, tick: int) -> List[Service]:
        """Apply this tick's rolling releases; returns who released."""
        released: List[Service] = []
        for service in self.services.values():
            every = service.spec.release_every
            if (every > 0 and tick > 0
                    and tick % every == service.spec.release_offset % every):
                service.release(tick)
                released.append(service)
        return released


def default_fleet(count: int = 3, *, seed: int = 0, collect_every: int = 20,
                  release_every: int = 0) -> List[Service]:
    """A small mixed fleet: skewed traffic weights, staggered collection,
    rolling releases on the heaviest service.

    Workload shapes are deliberately tiny (the fleet simulation does *real*
    collection and profile generation per completed task — hundreds of
    them over a run) and mixed: seeds and worker counts vary per service,
    so no two services profile alike.
    """
    count = max(1, count)
    services: List[Service] = []
    for index in range(count):
        workload = WorkloadSpec(
            f"svc{index}", seed=seed + 101 * index,
            n_leaf=4, n_dispatch=2, n_mid=2, n_wrapper=1,
            n_workers=2 + index % 2, n_services=2,
            regions_per_function=(2, 3), requests=40)
        # Zipf-ish traffic skew: service 0 dominates, the tail thins out.
        weight = max(1.0, 8.0 / (index + 1))
        spec = ServiceSpec(
            f"svc{index}", workload, weight=weight,
            collect_every=collect_every,
            collect_offset=(index * 3) % collect_every,
            # Only the heaviest service rolls releases by default: enough
            # to exercise the identity-mismatch chain without spending the
            # whole run rebuilding binaries.
            release_every=release_every if index == 0 else 0,
            release_offset=release_every // 2 if release_every else 0)
        services.append(Service(spec))
    return services
