"""Fleet orchestrator: the supervised scheduler/worker daemon, tick-driven.

One :class:`FleetOrchestrator` wires the whole service together
(DESIGN.md sec. 15): the service registry with rolling releases, the
priority scheduler with retry/backoff, the supervised worker pool with
heartbeat hang detection and crash recovery, the generation manager with
freshness-driven degradation, the status collector, and the fleet fault
plane.  Time is a logical tick clock injected into the event log
(:meth:`~repro.obs.events.EventLog.set_clock`), so a file-backed run is
**byte-reproducible**: same seed, same spec, same services — the same
JSONL, byte for byte.

The per-tick order is fixed and load-bearing for that determinism:

1. rolling releases (registry), retiring stale profgen pools;
2. schedule due collection tasks (per-service cadence);
3. supervise busy workers (crash / hang / heartbeat / complete / deadline);
4. dispatch due tasks onto idle workers;
5. refresh per-service profile assignments (degradation chain);
6. periodic status rollup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .. import obs
from ..faults import FaultSpec
from .collect import CollectionEngine, CollectionOutcome
from .faults import FaultPlane
from .generations import GenerationManager
from .registry import Service, ServiceRegistry, default_fleet
from .scheduler import CollectionTask, RetryPolicy, Scheduler
from .status import FleetStats, StatusCollector
from .workers import WorkerPool


class TickClock:
    """Logical time: the orchestrator's tick, readable as a timestamp."""

    def __init__(self) -> None:
        self.tick = 0

    def now(self) -> float:
        return float(self.tick)


class FleetConfig:
    """Every knob of one fleet run (defaults give a brisk smoke sim)."""

    def __init__(self, *, ticks: int = 200, services: int = 3,
                 workers: int = 3, seed: int = 0,
                 collect_every: int = 20, base_duration: int = 3,
                 deadline: int = 8, heartbeat_timeout: int = 4,
                 freshness_window: int = 60, status_every: int = 20,
                 release_every: int = 70,
                 retry: Optional[RetryPolicy] = None,
                 period: int = 59, shards: int = 2, jobs: int = 1,
                 max_instructions: int = 2_000_000,
                 fault_spec: Optional[FaultSpec] = None):
        self.ticks = max(1, ticks)
        self.services = max(1, services)
        self.workers = max(1, workers)
        self.seed = seed
        self.collect_every = max(1, collect_every)
        self.base_duration = max(1, base_duration)
        self.deadline = max(1, deadline)
        self.heartbeat_timeout = max(1, heartbeat_timeout)
        self.freshness_window = max(1, freshness_window)
        self.status_every = max(1, status_every)
        #: Rolling-release cadence of the heaviest service (0 = frozen
        #: fleet, no identity mismatches ever).
        self.release_every = max(0, release_every)
        self.retry = retry if retry is not None else RetryPolicy(seed=seed)
        self.period = period
        self.shards = max(1, shards)
        self.jobs = max(1, jobs)
        self.max_instructions = max_instructions
        self.fault_spec = fault_spec


class FleetReport:
    """End-of-run summary + the acceptance invariants."""

    def __init__(self, config: FleetConfig, stats: FleetStats,
                 scheduler: Scheduler, services: List[Dict[str, Any]],
                 faults_fired: int):
        self.config = config
        self.totals = stats.totals()
        self.orphan_loss = stats.orphan_loss()
        self.budget_respected = scheduler.budget_respected()
        self.max_attempts_seen = max(scheduler.attempts_seen.values(),
                                     default=0)
        self.pending_tasks = scheduler.pending()
        self.services = services
        self.faults_fired = faults_fired

    def check(self) -> List[str]:
        """Violated invariants (empty = the run is acceptable)."""
        violations: List[str] = []
        if self.orphan_loss != 0:
            violations.append(
                f"orphan loss: {self.totals['tasks_orphaned']} orphaned != "
                f"{self.totals['orphans_requeued']} requeued + "
                f"{self.totals['orphans_exhausted']} exhausted")
        if not self.budget_respected:
            violations.append(
                f"retry budget exceeded: saw attempt "
                f"{self.max_attempts_seen} > "
                f"{self.config.retry.max_attempts}")
        if (self.totals["tasks_dispatched"]
                and not self.totals["tasks_completed"]):
            violations.append("dispatched tasks but completed none")
        for service in self.services:
            if service["assigned"] != service["eligible"]:
                violations.append(
                    f"service {service['name']}: assigned "
                    f"{service['assigned']} but eligible "
                    f"{service['eligible']}")
            if service["reason"] not in ("fresh", "unprofiled",
                                         "ProfileStaleError",
                                         "BinaryMismatchError"):
                violations.append(
                    f"service {service['name']}: unaccounted assignment "
                    f"reason {service['reason']!r}")
        return violations

    def to_dict(self) -> Dict[str, Any]:
        return {"ticks": self.config.ticks, "totals": dict(self.totals),
                "orphan_loss": self.orphan_loss,
                "max_attempts_seen": self.max_attempts_seen,
                "pending_tasks": self.pending_tasks,
                "faults_fired": self.faults_fired,
                "services": [dict(s) for s in self.services],
                "violations": self.check()}

    def render(self) -> str:
        lines = [f"fleet run: {self.config.ticks} ticks, "
                 f"{len(self.services)} services, "
                 f"{self.config.workers} workers"]
        totals = self.totals
        lines.append(
            f"  tasks      scheduled={totals['tasks_scheduled']} "
            f"completed={totals['tasks_completed']} "
            f"retried={totals['tasks_retried']} "
            f"exhausted={totals['tasks_exhausted']} "
            f"pending={self.pending_tasks}")
        lines.append(
            f"  failures   crashes={totals['worker_crashes']} "
            f"hangs={totals['worker_hangs']} "
            f"timeouts={totals['tasks_timed_out']} "
            f"shard_drops={totals['tasks_failed']} "
            f"orphaned={totals['tasks_orphaned']} "
            f"(requeued={totals['orphans_requeued']} "
            f"retired={totals['orphans_exhausted']})")
        lines.append(
            f"  profiles   generations={totals['generations']} "
            f"releases={totals['releases']} "
            f"fallbacks={totals['fallbacks']} "
            f"faults_fired={self.faults_fired}")
        for service in self.services:
            lines.append(
                f"  {service['name']:10s} rev={service['revision']} "
                f"gens={service['generations']} "
                f"variant={service['assigned']} ({service['reason']})")
        violations = self.check()
        if violations:
            lines.append("  INVARIANT VIOLATIONS:")
            lines.extend(f"    - {violation}" for violation in violations)
        else:
            lines.append("  invariants OK (orphan loss 0, retry budget "
                         "respected, assignments consistent)")
        return "\n".join(lines)


class FleetOrchestrator:
    """The daemon: wires registry, scheduler, workers, generations, status."""

    def __init__(self, config: FleetConfig,
                 services: Optional[List[Service]] = None):
        self.config = config
        self.clock = TickClock()
        session = obs.active()
        if session is not None:
            # Logical time makes a file-backed event log byte-reproducible
            # across runs of the same seed.
            session.log.set_clock(self.clock.now)
        self.plane = FaultPlane(config.fault_spec)
        self.stats = FleetStats()
        self.registry = ServiceRegistry(
            services if services is not None else default_fleet(
                config.services, seed=config.seed,
                collect_every=config.collect_every,
                release_every=config.release_every))
        self.engine = CollectionEngine(
            seed=config.seed, period=config.period, shards=config.shards,
            jobs=config.jobs, max_instructions=config.max_instructions,
            fault_spec=config.fault_spec)
        self.scheduler = Scheduler(config.retry, self.stats)
        self.generations = GenerationManager(
            freshness_window=config.freshness_window, stats=self.stats,
            plane=self.plane)
        self.pool = WorkerPool(
            config.workers, heartbeat_timeout=config.heartbeat_timeout,
            base_duration=config.base_duration, engine=self.engine,
            scheduler=self.scheduler, registry=self.registry,
            stats=self.stats, plane=self.plane,
            on_complete=self._ingest)
        self.status = StatusCollector(config.status_every, self.stats,
                                      self.registry, self.generations)

    def _ingest(self, task: CollectionTask, outcome: CollectionOutcome,
                tick: int) -> None:
        self.generations.ingest(self.registry.get(task.service), task,
                                outcome, tick)

    def _schedule_due(self, tick: int) -> None:
        for service in self.registry:
            spec = service.spec
            if tick % spec.collect_every == spec.collect_offset:
                self.scheduler.schedule(service, tick, self.config.deadline)

    def run(self) -> FleetReport:
        """Run the full simulation; always shuts the engine down."""
        config = self.config
        try:
            for tick in range(config.ticks):
                self.clock.tick = tick
                for service in self.registry.step(tick):
                    self.stats.bump("releases")
                    self.engine.invalidate(service)
                self._schedule_due(tick)
                self.pool.step(tick)
                self.pool.dispatch(tick)
                self.generations.refresh(self.registry, tick)
                self.status.maybe(tick)
            last = config.ticks - 1
            self.clock.tick = last
            self.status.final(last)
            faults_fired = self.plane.report()
        finally:
            self.engine.close()
        return self._report(last, faults_fired)

    def _report(self, tick: int, faults_fired: int) -> FleetReport:
        services: List[Dict[str, Any]] = []
        for service in self.registry:
            name = service.spec.name
            assigned, reason = self.generations.assigned.get(
                name, ("none", "unprofiled"))
            eligible, _ereason, _gen = self.generations.eligible(service,
                                                                 tick)
            services.append({
                "name": name, "revision": service.revision,
                "binary": service.binary_id,
                "generations": self.generations.count_for(name),
                "assigned": assigned, "eligible": eligible,
                "reason": reason})
        return FleetReport(self.config, self.stats, self.scheduler,
                           services, faults_fired)


def run_fleet(config: FleetConfig,
              services: Optional[List[Service]] = None) -> FleetReport:
    """Build an orchestrator and run the simulation to completion."""
    return FleetOrchestrator(config, services).run()
