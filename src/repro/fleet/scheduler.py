"""Collection-task scheduler: priority queue, retry policy, backoff.

Tasks are ordered by ``(ready_tick, -weight, task_id)`` — due tasks first,
heavier services first among peers, FIFO within a service.  Every failure
path (crash-orphaned, hang-cancelled, deadline-exceeded, shard-dropped)
funnels through :meth:`Scheduler.retry`: a bounded attempt budget with
exponential backoff and deterministic seeded jitter, so retry storms decay
instead of thundering and a replay of the same seed produces the same
schedule tick for tick.

Crash recovery has one extra invariant, the one the supervisor exists for:
**every orphaned task is re-queued exactly once** (or explicitly retired
as budget-exhausted).  :meth:`Scheduler.recover_orphan` is the only orphan
path, and its accounting — ``tasks_orphaned == orphans_requeued +
orphans_exhausted`` — is checked by the ``orphan-loss`` SLO rule and the
end-of-run report.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from .. import obs
from .status import FleetStats


class RetryPolicy:
    """Bounded attempts, exponential backoff, deterministic jitter."""

    def __init__(self, max_attempts: int = 3, base_backoff: int = 2,
                 backoff_cap: int = 16, jitter: int = 2, seed: int = 0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_backoff = max(1, base_backoff)
        self.backoff_cap = max(self.base_backoff, backoff_cap)
        self.jitter = max(0, jitter)
        self.seed = seed

    def backoff(self, task_id: int, attempt: int) -> int:
        """Delay in ticks before attempt ``attempt + 1`` may start.

        Exponential in the failed attempt number, capped, plus jitter
        drawn from a stream keyed ``(seed, task_id, attempt)`` — stable
        across runs (replayable) yet decorrelated across tasks (no
        thundering-herd re-dispatch after a mass crash).
        """
        delay = min(self.backoff_cap,
                    self.base_backoff * (2 ** max(0, attempt - 1)))
        if self.jitter:
            rng = random.Random(self.seed * 0x9E3779B1
                                + task_id * 1000003 + attempt)
            delay += rng.randint(0, self.jitter)
        return delay

    def __repr__(self) -> str:
        return (f"<RetryPolicy attempts<={self.max_attempts} "
                f"backoff={self.base_backoff}..{self.backoff_cap}"
                f"+j{self.jitter}>")


class CollectionTask:
    """One profile-collection work item for one service."""

    __slots__ = ("task_id", "service", "revision", "weight", "attempt",
                 "deadline", "enqueued_tick", "ready_tick")

    def __init__(self, task_id: int, service: str, revision: int,
                 weight: float, deadline: int, tick: int):
        self.task_id = task_id
        self.service = service
        self.revision = revision
        self.weight = weight
        #: 1-based attempt number (bumped by every retry).
        self.attempt = 1
        #: Ticks a dispatched attempt may run before the supervisor
        #: cancels it.
        self.deadline = deadline
        self.enqueued_tick = tick
        self.ready_tick = tick

    def __repr__(self) -> str:
        return (f"<CollectionTask #{self.task_id} {self.service} "
                f"attempt={self.attempt} ready={self.ready_tick}>")


class Scheduler:
    """Priority queue of collection tasks + the retry/orphan state machine."""

    def __init__(self, policy: RetryPolicy, stats: FleetStats):
        self.policy = policy
        self.stats = stats
        self._heap: List[Tuple[int, float, int]] = []
        self._tasks: Dict[int, CollectionTask] = {}
        self._queued: set = set()
        self._next_id = 0
        #: task_id -> highest attempt number ever queued (budget audit).
        self.attempts_seen: Dict[int, int] = {}

    # -- queue mechanics ----------------------------------------------------
    def _push(self, task: CollectionTask) -> None:
        if task.task_id in self._queued:
            raise RuntimeError(
                f"task #{task.task_id} queued twice — duplicate re-queue")
        self._queued.add(task.task_id)
        heapq.heappush(self._heap,
                       (task.ready_tick, -task.weight, task.task_id))

    def pending(self) -> int:
        return len(self._queued)

    def due(self, tick: int) -> List[CollectionTask]:
        """Pop every task whose ready tick has arrived, priority order."""
        out: List[CollectionTask] = []
        while self._heap and self._heap[0][0] <= tick:
            _ready, _weight, task_id = heapq.heappop(self._heap)
            self._queued.discard(task_id)
            out.append(self._tasks[task_id])
        return out

    def defer(self, task: CollectionTask, tick: int) -> None:
        """Put a popped-but-undispatched task back (no idle worker)."""
        task.ready_tick = tick + 1
        self._push(task)

    # -- lifecycle ----------------------------------------------------------
    def schedule(self, service, tick: int, deadline: int) -> CollectionTask:
        task = CollectionTask(self._next_id, service.spec.name,
                              service.revision, service.spec.weight,
                              deadline, tick)
        self._next_id += 1
        self._tasks[task.task_id] = task
        self.attempts_seen[task.task_id] = task.attempt
        self._push(task)
        self.stats.bump("tasks_scheduled")
        obs.emit("fleet_task", action="scheduled", task=task.task_id,
                 service=task.service, attempt=task.attempt)
        return task

    def retry(self, task: CollectionTask, tick: int, reason: str,
              action: str = "retried") -> bool:
        """Re-queue a failed attempt under the budget; False = exhausted.

        The re-queued attempt becomes ready after the policy's backoff —
        exponential in the attempt that just failed, plus per-task jitter.
        """
        if task.attempt >= self.policy.max_attempts:
            self.stats.bump("tasks_exhausted")
            obs.emit("fleet_task", action="exhausted", task=task.task_id,
                     service=task.service, attempt=task.attempt,
                     reason=reason)
            return False
        failed_attempt = task.attempt
        task.attempt += 1
        task.ready_tick = tick + self.policy.backoff(task.task_id,
                                                     failed_attempt)
        self.attempts_seen[task.task_id] = task.attempt
        self._push(task)
        self.stats.bump("tasks_retried")
        obs.emit("fleet_task", action=action, task=task.task_id,
                 service=task.service, attempt=task.attempt, reason=reason,
                 ready=task.ready_tick)
        return True

    def recover_orphan(self, task: CollectionTask, tick: int) -> bool:
        """Crash recovery: account the orphan, re-queue it exactly once.

        Returns True when the orphan was re-queued, False when its retry
        budget was already spent (explicitly retired, never lost — the
        ``orphan-loss`` indicator is the difference and must be 0).
        """
        self.stats.bump("tasks_orphaned")
        obs.emit("fleet_task", action="orphaned", task=task.task_id,
                 service=task.service, attempt=task.attempt)
        if self.retry(task, tick, "worker_crash", action="recovered"):
            self.stats.bump("orphans_requeued")
            return True
        self.stats.bump("orphans_exhausted")
        return False

    def budget_respected(self) -> bool:
        """No task ever exceeded the policy's attempt budget."""
        return all(attempts <= self.policy.max_attempts
                   for attempts in self.attempts_seen.values())
