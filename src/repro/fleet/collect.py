"""Collection engine: the real profiling work behind each fleet task.

The fleet simulation is tick-driven and deterministic, but the work it
supervises is real: a completed task attaches the PMU to the service's
deployed binary, runs its training input, and generates a context profile
through the sharded profgen engine (DESIGN.md sec. 13).  Sample streams
are seeded per ``(fleet seed, service, revision, task, attempt)``, so a
retried attempt re-collects a *different* (but replayable) stream — the
way a rerun on real hardware would — while the same fleet seed reproduces
every byte across runs.

With ``jobs > 1`` the engine reuses one long-lived
:class:`~repro.correlate.sharded.ShardedProfgenPool` per service binary
(the pool's raison d'être: a profile service regenerating over the same
build amortizes worker startup and the binary pickle), evicting it when a
rolling release changes the binary identity and closing every pool —
gracefully, cancelling outstanding work — at shutdown.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

from ..correlate.sharded import ShardedProfgenPool, generate_sharded_profile
from ..faults import FaultSpec, apply_perf_faults
from ..hw.executor import execute, make_pmu
from ..hw.pmu import PMUConfig
from .faults import FaultPlane
from .registry import Service
from .scheduler import CollectionTask


class CollectionError(RuntimeError):
    """A collection attempt failed operationally (retryable)."""


class CollectionOutcome:
    """Everything one successful collection produced."""

    __slots__ = ("profile", "data", "binary_id", "shard_provenance",
                 "samples", "unique_samples", "jitter_seed")

    def __init__(self, profile, data, binary_id: str, shard_provenance,
                 jitter_seed: int):
        self.profile = profile
        self.data = data
        self.binary_id = binary_id
        self.shard_provenance = shard_provenance
        self.samples = len(data)
        self.unique_samples = len(data.aggregated()) if len(data) else 0
        self.jitter_seed = jitter_seed


class CollectionEngine:
    """Executes collection tasks: PMU run + sharded profile generation."""

    def __init__(self, *, seed: int = 0, period: int = 59, shards: int = 2,
                 jobs: int = 1, max_instructions: int = 2_000_000,
                 fault_spec: Optional[FaultSpec] = None):
        self.seed = seed
        self.period = period
        self.shards = max(1, shards)
        self.jobs = max(1, jobs)
        self.max_instructions = max_instructions
        #: Data-plane faults (``perf``-kind injectors) applied to every
        #: collection's samples — operational and data faults compose.
        self.fault_spec = fault_spec
        self._pools: Dict[str, ShardedProfgenPool] = {}
        self._pool_by_service: Dict[str, str] = {}

    # -- determinism --------------------------------------------------------
    def jitter_seed(self, service: Service, task: CollectionTask) -> int:
        """PMU jitter seed for one attempt: stable across runs, distinct
        across services, revisions, tasks, and attempts."""
        return (self.seed * 0x9E3779B1
                + zlib.crc32(service.spec.name.encode("utf-8"))
                + service.revision * 104729
                + task.task_id * 1000003
                + task.attempt) & 0x7FFFFFFF

    # -- pool cache ---------------------------------------------------------
    def _pool_for(self, service: Service) -> Optional[ShardedProfgenPool]:
        if self.jobs <= 1:
            return None
        binary_id = service.binary_id
        pool = self._pools.get(binary_id)
        if pool is None:
            pool = ShardedProfgenPool(
                service.build.binary, "context", service.build.probe_meta,
                jobs=self.jobs)
            self._pools[binary_id] = pool
            self._pool_by_service[service.spec.name] = binary_id
        return pool

    def invalidate(self, service: Service) -> None:
        """A release replaced the binary: retire the old identity's pool."""
        old = self._pool_by_service.pop(service.spec.name, None)
        if old is not None and old != service.binary_id:
            pool = self._pools.pop(old, None)
            if pool is not None:
                pool.close()

    def close(self) -> None:
        """Graceful shutdown: cancel outstanding shard work, close pools."""
        for pool in self._pools.values():
            pool.terminate()
        self._pools.clear()
        self._pool_by_service.clear()

    # -- the work -----------------------------------------------------------
    def collect(self, service: Service, task: CollectionTask,
                plane: FaultPlane) -> CollectionOutcome:
        """Run one collection attempt end to end.

        Raises :class:`CollectionError` when the fault plane drops a shard
        result (the merge cannot complete, so the attempt fails and the
        scheduler retries it).
        """
        artifacts = service.build
        jitter = self.jitter_seed(service, task)
        pmu = make_pmu(PMUConfig(period=self.period, jitter_seed=jitter))
        run = execute(artifacts.binary, [service.spec.workload.requests],
                      pmu=pmu, max_instructions=self.max_instructions)
        data = pmu.finish(run.instructions_retired)
        if self.fault_spec is not None:
            data, _report = apply_perf_faults(data, self.fault_spec)
        if plane.drop_shard():
            raise CollectionError("shard partial lost in flight")
        outcome = generate_sharded_profile(
            artifacts.binary, data, "context", artifacts.probe_meta,
            shards=self.shards, jobs=self.jobs,
            pool=self._pool_for(service))
        return CollectionOutcome(outcome.profile, data,
                                 artifacts.binary.identity(),
                                 outcome.shard_provenance, jitter)

    def __enter__(self) -> "CollectionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
