"""Supervised worker pool: dispatch, heartbeats, crash/hang recovery.

Workers are *simulated* (the tick clock is what makes a 500-tick fault
storm deterministic and replayable), but the work is real: when a worker's
attempt reaches its finish tick, the collection engine runs the actual
PMU collection + sharded profile generation for that task.

Per tick, in fixed worker order, the supervisor checks each busy worker:

1. **crash** — the fault plane kills the worker: its task is orphaned and
   re-queued exactly once (:meth:`Scheduler.recover_orphan`), a
   replacement worker is respawned into the same slot;
2. **hang** — the worker wedges: heartbeats freeze while the task neither
   progresses nor fails.  After ``heartbeat_timeout`` silent ticks the
   supervisor cancels the attempt cooperatively and retries it;
3. **heartbeat** — a healthy worker heartbeats every tick;
4. **completion** — at the finish tick the real collection runs; an
   operational failure (dropped shard) fails the attempt into retry;
5. **deadline** — an attempt still running past its per-task deadline
   (slow collection) is cancelled and retried.

Dispatch fills idle workers from the scheduler's due queue in priority
order; surplus due tasks are deferred one tick (never dropped).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .. import obs
from .collect import CollectionEngine, CollectionError, CollectionOutcome
from .faults import FaultPlane
from .registry import ServiceRegistry
from .scheduler import CollectionTask, Scheduler
from .status import FleetStats

IDLE, BUSY, HUNG = "idle", "busy", "hung"

#: on_complete(task, outcome, tick) — the orchestrator's ingest hook.
CompletionHook = Callable[[CollectionTask, CollectionOutcome, int], None]


class SimWorker:
    """One supervised collection worker slot."""

    __slots__ = ("worker_id", "state", "task", "started_tick", "finish_tick",
                 "last_heartbeat", "incarnation")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.state = IDLE
        self.task: Optional[CollectionTask] = None
        self.started_tick = 0
        self.finish_tick = 0
        self.last_heartbeat = 0
        #: Bumped on every respawn (crash recovery) — the "same slot, new
        #: process" distinction in the worker event stream.
        self.incarnation = 0

    @property
    def name(self) -> str:
        return f"w{self.worker_id}.{self.incarnation}"

    def idle(self) -> None:
        self.state = IDLE
        self.task = None


class WorkerPool:
    """Fixed-width pool of supervised workers."""

    def __init__(self, count: int, *, heartbeat_timeout: int,
                 base_duration: int, engine: CollectionEngine,
                 scheduler: Scheduler, registry: ServiceRegistry,
                 stats: FleetStats, plane: FaultPlane,
                 on_complete: CompletionHook):
        self.workers: List[SimWorker] = [SimWorker(i)
                                         for i in range(max(1, count))]
        self.heartbeat_timeout = max(1, heartbeat_timeout)
        self.base_duration = max(1, base_duration)
        self.engine = engine
        self.scheduler = scheduler
        self.registry = registry
        self.stats = stats
        self.plane = plane
        self.on_complete = on_complete

    # -- per-tick supervision ----------------------------------------------
    def step(self, tick: int) -> None:
        for worker in self.workers:
            if worker.state == IDLE:
                continue
            if self.plane.worker_crash():
                self._crash(worker, tick)
                continue
            if worker.state == BUSY and self.plane.worker_hang():
                worker.state = HUNG
                self.stats.bump("worker_hangs")
                obs.emit("fleet_worker", worker=worker.name, event="hung",
                         task=worker.task.task_id)
            if worker.state == HUNG:
                # A wedged worker neither heartbeats nor finishes; only
                # hang detection can reclaim it.
                if tick - worker.last_heartbeat >= self.heartbeat_timeout:
                    self._cancel(worker, tick, "hang_detected")
                continue
            worker.last_heartbeat = tick
            if tick >= worker.finish_tick:
                self._complete(worker, tick)
            elif tick - worker.started_tick >= worker.task.deadline:
                self.stats.bump("tasks_timed_out")
                self._cancel(worker, tick, "deadline_exceeded")

    def _crash(self, worker: SimWorker, tick: int) -> None:
        """Worker died mid-task: orphan recovery + respawn into the slot."""
        task = worker.task
        self.stats.bump("worker_crashes")
        obs.emit("fleet_worker", worker=worker.name, event="crashed",
                 task=task.task_id)
        self.scheduler.recover_orphan(task, tick)
        worker.incarnation += 1
        worker.idle()
        self.stats.bump("worker_respawns")
        obs.emit("fleet_worker", worker=worker.name, event="respawned")

    def _cancel(self, worker: SimWorker, tick: int, reason: str) -> None:
        """Cooperative cancellation (hang detection or blown deadline)."""
        task = worker.task
        self.stats.bump("tasks_cancelled")
        obs.emit("fleet_task", action="cancelled", task=task.task_id,
                 service=task.service, attempt=task.attempt, reason=reason,
                 worker=worker.name)
        self.scheduler.retry(task, tick, reason)
        worker.idle()

    def _complete(self, worker: SimWorker, tick: int) -> None:
        task = worker.task
        service = self.registry.get(task.service)
        try:
            outcome = self.engine.collect(service, task, self.plane)
        except CollectionError as exc:
            self.stats.bump("tasks_failed")
            obs.emit("fleet_task", action="failed", task=task.task_id,
                     service=task.service, attempt=task.attempt,
                     reason=str(exc))
            self.scheduler.retry(task, tick, "shard_dropped")
            worker.idle()
            return
        self.stats.bump("tasks_completed")
        obs.emit("fleet_task", action="completed", task=task.task_id,
                 service=task.service, attempt=task.attempt,
                 worker=worker.name, samples=outcome.samples,
                 duration=tick - worker.started_tick)
        worker.idle()
        self.on_complete(task, outcome, tick)

    # -- dispatch -----------------------------------------------------------
    def dispatch(self, tick: int) -> None:
        """Fill idle workers from the due queue, priority order."""
        due = self.scheduler.due(tick)
        index = 0
        for worker in self.workers:
            if index >= len(due):
                break
            if worker.state != IDLE:
                continue
            task = due[index]
            index += 1
            duration = self.base_duration * self.plane.slow_factor()
            worker.state = BUSY
            worker.task = task
            worker.started_tick = tick
            worker.finish_tick = tick + duration
            worker.last_heartbeat = tick
            self.stats.bump("tasks_dispatched")
            obs.emit("fleet_task", action="dispatched", task=task.task_id,
                     service=task.service, attempt=task.attempt,
                     worker=worker.name, duration=duration)
        for task in due[index:]:
            # More due work than idle workers: defer, never drop.
            self.scheduler.defer(task, tick)

    def busy(self) -> int:
        return sum(1 for w in self.workers if w.state != IDLE)
