"""Fault-tolerant continuous-profiling fleet service (DESIGN.md sec. 15).

A tick-driven, deterministic simulation of a production continuous-
profiling deployment: a registry of services under rolling releases, a
priority scheduler with bounded retry + exponential backoff + seeded
jitter, a supervised worker pool (crash recovery, heartbeat hang
detection, deadlines), a collection engine doing the *real* PMU +
sharded-profgen work, and a generation manager driving the
csspgo -> autofdo -> none degradation chain from profile freshness.
"""

from .collect import CollectionEngine, CollectionError, CollectionOutcome
from .faults import FaultPlane
from .generations import CHAIN, GenerationManager, ProfileGeneration
from .registry import Service, ServiceRegistry, ServiceSpec, default_fleet
from .scheduler import CollectionTask, RetryPolicy, Scheduler
from .service import (FleetConfig, FleetOrchestrator, FleetReport, TickClock,
                      run_fleet)
from .status import FleetStats, StatusCollector
from .workers import SimWorker, WorkerPool

__all__ = [
    "CHAIN",
    "CollectionEngine",
    "CollectionError",
    "CollectionOutcome",
    "CollectionTask",
    "FaultPlane",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetReport",
    "FleetStats",
    "GenerationManager",
    "ProfileGeneration",
    "RetryPolicy",
    "Scheduler",
    "Service",
    "ServiceRegistry",
    "ServiceSpec",
    "SimWorker",
    "StatusCollector",
    "TickClock",
    "WorkerPool",
    "default_fleet",
    "run_fleet",
]
