"""Fleet status: counters, periodic rollups, per-service gauges.

The status collector is the fleet's bridge into the observability
platform (DESIGN.md sec. 11): every ``status_every`` ticks it emits one
``fleet_status`` event — the scheduler/worker/generation totals plus the
fraction of services currently on a fresh context profile — writes
per-service gauges into the metrics registry, and records a metrics
time-series point.  ``repro report`` turns those rollups into the
``profile-freshness`` / ``task-retry-rate`` / ``orphan-loss`` SLO verdicts
(:mod:`repro.obs.health`).
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import obs

#: Canonical counter names, in rollup order.  Kept explicit so the
#: ``fleet_status`` totals are a stable, complete schema even when a
#: counter never fired (a 0 is evidence; a missing key is not).
STAT_KEYS = (
    "tasks_scheduled",
    "tasks_dispatched",
    "tasks_completed",
    "tasks_retried",
    "tasks_failed",
    "tasks_timed_out",
    "tasks_cancelled",
    "tasks_exhausted",
    "tasks_orphaned",
    "orphans_requeued",
    "orphans_exhausted",
    "worker_crashes",
    "worker_hangs",
    "worker_respawns",
    "releases",
    "generations",
    "fallbacks",
    "assignment_changes",
)


class FleetStats:
    """Monotonic fleet counters (the ``fleet_status`` totals)."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {key: 0 for key in STAT_KEYS}

    def bump(self, name: str, n: int = 1) -> None:
        if name not in self.counters:
            raise KeyError(f"unknown fleet counter {name!r}")
        self.counters[name] += n

    def get(self, name: str) -> int:
        return self.counters[name]

    def totals(self) -> Dict[str, int]:
        return dict(self.counters)

    def orphan_loss(self) -> int:
        """Orphaned tasks neither re-queued nor explicitly retired — the
        supervisor's core invariant is that this is always zero."""
        return (self.counters["tasks_orphaned"]
                - self.counters["orphans_requeued"]
                - self.counters["orphans_exhausted"])

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.counters.items() if v}
        return f"<FleetStats {busy}>"


class StatusCollector:
    """Periodic ``fleet_status`` rollups + per-service metric gauges."""

    def __init__(self, every: int, stats: FleetStats, registry,
                 generations) -> None:
        self.every = max(1, every)
        self.stats = stats
        self.registry = registry
        self.generations = generations
        self._last_emitted: Optional[int] = None

    def maybe(self, tick: int) -> None:
        if tick % self.every == 0:
            self.emit(tick)

    def final(self, tick: int) -> None:
        """End-of-run rollup (skipped if this tick already emitted)."""
        if self._last_emitted != tick:
            self.emit(tick)

    def emit(self, tick: int) -> None:
        self._last_emitted = tick
        fresh = 0
        session = obs.active()
        for service in self.registry:
            variant, reason, _gen = self.generations.eligible(service, tick)
            is_fresh = variant == "csspgo"
            fresh += is_fresh
            if session is not None:
                name = service.spec.name
                metrics = session.metrics
                metrics.set_gauge("fleet.service.fresh", float(is_fresh),
                                  service=name)
                metrics.set_gauge("fleet.service.revision",
                                  float(service.revision), service=name)
                metrics.set_gauge(
                    "fleet.service.generations",
                    float(self.generations.count_for(name)), service=name)
        # Freshness is meaningless before the first generation ever lands
        # (a fleet that has not warmed up is not "0% fresh" — there is no
        # profile to be fresh *against*), so warmup rollups carry None and
        # the SLO rule skips them instead of dragging the mean down.
        freshness = (fresh / len(self.registry)
                     if len(self.registry) and self.stats.get("generations")
                     else None)
        obs.emit("fleet_status", tick=tick, totals=self.stats.totals(),
                 freshness=freshness, services=len(self.registry))
        # Timing counters are wall-clock and would break the byte-for-byte
        # reproducibility the tick clock buys the fleet log.
        obs.snapshot(f"fleet/tick:{tick}", drop_timings=True)
