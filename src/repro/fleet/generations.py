"""Rolling profile generations + freshness-driven degradation.

Each completed collection becomes a :class:`ProfileGeneration` — the
context profile, the retained samples, and a full provenance manifest
(:class:`~repro.obs.provenance.ProfileManifest`) emitted as a
``profile_generated`` event.  Per service the manager keeps a short
rolling window of generations and decides, every tick, which profile
variant the service is *eligible* to run on:

* the newest generation matches the deployed binary's identity and is
  within the freshness window -> **csspgo** (the full context profile);
* it matches but has expired -> **autofdo**, reason ``ProfileStaleError``:
  a DWARF profile is regenerated lazily from the generation's retained
  samples against the same binary (checksums and probe ids no longer
  gate it) — the first hop of the degradation chain;
* every retained generation belongs to an older binary (a rolling release
  raced ahead of collection) -> **none**, reason ``BinaryMismatchError``:
  address-based profiles from another build are garbage, so the service
  runs unprofiled until a fresh collection lands;
* the service has never been profiled -> **none**, reason ``unprofiled``
  (warmup, not a degradation).

Transitions emit ``fleet_assignment`` events; *downward* transitions
additionally emit one ``fallback_taken`` event per chain hop
(csspgo -> autofdo -> none), the same event the PGO driver's in-build
degradation chain produces — one vocabulary for both planes.

Clock skew (the ``clock_skew`` fleet injector) pre-ages a generation's
effective timestamp at ingest, so freshness decisions can be wrong in
exactly the way NTP drift makes them wrong in production.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs
from ..correlate.profgen import generate_dwarf_profile
from ..obs import ProfileManifest
from ..profile.stats import profile_stats
from .collect import CollectionOutcome
from .faults import FaultPlane
from .registry import Service
from .scheduler import CollectionTask
from .status import FleetStats

#: The degradation chain, best to worst.
CHAIN = ("csspgo", "autofdo", "none")
_RANK = {variant: rank for rank, variant in enumerate(CHAIN)}


class ProfileGeneration:
    """One rolling generation of one service's profile."""

    __slots__ = ("service", "revision", "binary_id", "index", "created_tick",
                 "effective_tick", "skew", "profile", "data", "manifest",
                 "_dwarf")

    def __init__(self, service: str, revision: int, binary_id: str,
                 index: int, created_tick: int, skew: int, profile, data,
                 manifest: Dict):
        self.service = service
        self.revision = revision
        self.binary_id = binary_id
        self.index = index
        self.created_tick = created_tick
        #: What freshness actually compares against: the creation tick
        #: minus any injected clock skew (a skewed collection host stamps
        #: its profile "older" than the fleet clock says).
        self.effective_tick = created_tick - skew
        self.skew = skew
        self.profile = profile
        #: Samples retained for lazy DWARF regeneration on degradation.
        self.data = data
        self.manifest = manifest
        self._dwarf = None

    def dwarf_profile(self, binary):
        """The AutoFDO fallback profile, regenerated lazily and cached."""
        if self._dwarf is None:
            self._dwarf = generate_dwarf_profile(binary, self.data)
        return self._dwarf

    def __repr__(self) -> str:
        return (f"<ProfileGeneration {self.service}#{self.index} "
                f"rev={self.revision} tick={self.created_tick}>")


class GenerationManager:
    """Rolling generations per service + the assignment state machine."""

    def __init__(self, *, freshness_window: int, stats: FleetStats,
                 plane: FaultPlane, keep: int = 2):
        self.freshness_window = max(1, freshness_window)
        self.stats = stats
        self.plane = plane
        self.keep = max(1, keep)
        self._generations: Dict[str, List[ProfileGeneration]] = {}
        self._counter: Dict[str, int] = {}
        #: service -> (variant, reason) currently assigned.
        self.assigned: Dict[str, Tuple[str, str]] = {}

    # -- ingest -------------------------------------------------------------
    def ingest(self, service: Service, task: CollectionTask,
               outcome: CollectionOutcome, tick: int) -> ProfileGeneration:
        name = service.spec.name
        index = self._counter.get(name, 0)
        self._counter[name] = index + 1
        skew = self.plane.clock_skew(self.freshness_window)
        manifest = ProfileManifest(
            variant="csspgo", kind="context",
            binary_identity=outcome.binary_id,
            perf={"samples": outcome.samples,
                  "unique_samples": outcome.unique_samples,
                  "dedup_ratio": (outcome.unique_samples / outcome.samples
                                  if outcome.samples else 0.0),
                  "period": outcome.data.period,
                  "lbr_depth": outcome.data.lbr_depth,
                  "pebs": outcome.data.pebs,
                  "instructions_retired":
                      outcome.data.instructions_retired,
                  "binary_id": outcome.data.binary_id,
                  "jitter_seed": outcome.jitter_seed},
            faults={"spec": (repr(self.plane.spec)
                             if self.plane.spec is not None else None),
                    "injected": {"clock_skew.ticks": skew} if skew else {}},
            profile_stats=profile_stats(outcome.profile),
            created_at=float(tick),
            shards=outcome.shard_provenance)
        record = manifest.to_dict()
        generation = ProfileGeneration(
            name, task.revision, outcome.binary_id, index, tick, skew,
            outcome.profile, outcome.data, record)
        rolling = self._generations.setdefault(name, [])
        rolling.insert(0, generation)
        del rolling[self.keep:]
        self.stats.bump("generations")
        obs.emit("profile_generated", variant="csspgo", kind="context",
                 manifest=record, service=name, generation=index,
                 skew=skew)
        return generation

    # -- queries ------------------------------------------------------------
    def generations_of(self, name: str) -> List[ProfileGeneration]:
        return list(self._generations.get(name, []))

    def count_for(self, name: str) -> int:
        return self._counter.get(name, 0)

    def eligible(self, service: Service, tick: int
                 ) -> Tuple[str, str, Optional[ProfileGeneration]]:
        """Best variant the retained generations support right now."""
        rolling = self._generations.get(service.spec.name, [])
        match = next((gen for gen in rolling
                      if gen.binary_id == service.binary_id), None)
        if match is not None:
            age = tick - match.effective_tick
            if 0 <= age <= self.freshness_window:
                return "csspgo", "fresh", match
            return "autofdo", "ProfileStaleError", match
        if rolling:
            return "none", "BinaryMismatchError", rolling[0]
        return "none", "unprofiled", None

    # -- the per-tick assignment sweep --------------------------------------
    def refresh(self, services, tick: int) -> None:
        for service in services:
            name = service.spec.name
            variant, reason, generation = self.eligible(service, tick)
            previous = self.assigned.get(name)
            if previous == (variant, reason):
                continue
            if previous is not None:
                self._emit_hops(name, previous[0], variant, reason)
            if variant == "autofdo" and generation is not None:
                # Materialize the fallback profile now — degradation must
                # leave the service *servable*, not promise a profile.
                generation.dwarf_profile(service.build.binary)
            self.assigned[name] = (variant, reason)
            self.stats.bump("assignment_changes")
            obs.emit("fleet_assignment", service=name, variant=variant,
                     reason=reason, tick=tick,
                     generation=(generation.index
                                 if generation is not None else None))

    def _emit_hops(self, name: str, from_variant: str, to_variant: str,
                   reason: str) -> None:
        """Downward transitions emit the chain hop by hop; upgrades don't."""
        start, end = _RANK[from_variant], _RANK[to_variant]
        for rank in range(start, end):
            self.stats.bump("fallbacks")
            obs.emit("fallback_taken", from_variant=CHAIN[rank],
                     to_variant=CHAIN[rank + 1], reason=reason,
                     detail=f"service {name}")
