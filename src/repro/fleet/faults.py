"""Fleet-level fault plane: seeded draws for operational failures.

Data-plane injectors corrupt bytes; the five ``fleet``-kind injectors
(:mod:`repro.faults.injectors`) are *decision points* — a worker crashes,
a worker hangs, a collection runs slow, a shard result vanishes, a
generation timestamp skews.  The :class:`FaultPlane` owns those decisions:
one :class:`random.Random` stream per injector (seeded by
:meth:`~repro.faults.spec.FaultSpec.rng_for`, so streams are independent
of spec entry order and of each other), drawn in the orchestrator's fixed
simulation order.  Same spec + same fleet seed = the same failures on the
same ticks, which is what makes a 500-tick fault storm replayable.

Every firing is counted; :meth:`FaultPlane.report` writes the per-injector
ground truth as ``faults_injected`` events at end of run — the exact
accounting the fault-smoke CI job reconciles against.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .. import obs
from ..faults import FaultSpec


class FaultPlane:
    """Deterministic yes/no (and how-much) draws for fleet failures.

    Built from the ``fleet``-kind entries of a :class:`FaultSpec`; with no
    spec (or no fleet entries) every draw is a cheap ``False`` and the
    plane is inert.
    """

    def __init__(self, spec: Optional[FaultSpec] = None):
        self.spec = spec
        self._intensity: Dict[str, float] = {}
        self._rng: Dict[str, random.Random] = {}
        #: injector name -> times it actually fired (ground truth).
        self.fired: Dict[str, int] = {}
        if spec is not None:
            for name, intensity in spec.entries_of_kind("fleet"):
                self._intensity[name] = intensity
                self._rng[name] = spec.rng_for(name)

    def _fires(self, name: str) -> bool:
        intensity = self._intensity.get(name)
        if not intensity:
            return False
        if self._rng[name].random() >= intensity:
            return False
        self.fired[name] = self.fired.get(name, 0) + 1
        return True

    # -- decision points, one per injector ---------------------------------
    def worker_crash(self) -> bool:
        """Drawn once per busy worker per tick."""
        return self._fires("worker_crash")

    def worker_hang(self) -> bool:
        """Drawn once per busy (not already hung) worker per tick."""
        return self._fires("worker_hang")

    def slow_factor(self, maximum: int = 4) -> int:
        """Collection-duration multiplier, drawn once per task dispatch
        (1 = on time; >= 2 models a loaded host / throttled PMU)."""
        if not self._fires("slow_collection"):
            return 1
        return self._rng["slow_collection"].randint(2, max(2, maximum))

    def drop_shard(self) -> bool:
        """Drawn once per profile generation: a shard partial lost in
        flight fails the whole attempt (the merge cannot complete)."""
        return self._fires("drop_shard")

    def clock_skew(self, window: int) -> int:
        """Ticks to pre-age a new generation by, drawn once per ingested
        generation (0 = collection-host clock agrees with the fleet's).
        Skew can exceed ``window``, making a brand-new profile look
        already-expired — the NTP-drift failure the freshness logic must
        absorb."""
        if not self._fires("clock_skew"):
            return 0
        return self._rng["clock_skew"].randint(1, max(1, 2 * window))

    # -- accounting ---------------------------------------------------------
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def report(self) -> int:
        """Emit one ``faults_injected`` event per injector that fired;
        returns the total firing count."""
        for name in sorted(self.fired):
            obs.emit("faults_injected", kind="fleet",
                     count=self.fired[name], injector=name)
        return self.total_fired()

    def __repr__(self) -> str:
        body = ",".join(f"{name}:{self._intensity[name]:g}"
                        for name in sorted(self._intensity))
        return f"<FaultPlane {body or 'inert'}>"
