"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare`` — run the PGO variant comparison on a named or generated
  workload and print the Fig. 6/7-style table;
* ``quality`` — run the Table I profile-quality analysis;
* ``profile`` — collect and dump a CSSPGO context profile (text format);
* ``workloads`` — list the named workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import (PGODriverConfig, PGOVariant, build, compare_variants, run_pgo,
               speedup_over)
from .hw import PMUConfig, execute, make_pmu
from .workloads import (SERVER_WORKLOADS, WorkloadSpec, build_server_workload,
                        build_workload)


def _resolve_workload(name: str, seed: Optional[int]):
    if name in SERVER_WORKLOADS:
        spec = SERVER_WORKLOADS[name]
        module = build_server_workload(name)
        return module, spec.requests
    spec = WorkloadSpec(name, seed=seed or 0)
    return build_workload(spec), spec.requests


def _config(args) -> PGODriverConfig:
    return PGODriverConfig(pmu=PMUConfig(period=args.period),
                           profile_iterations=args.iterations)


def cmd_workloads(_args) -> int:
    print("named server workloads:")
    for name, spec in SERVER_WORKLOADS.items():
        print(f"  {name:14s} seed={spec.seed} requests={spec.requests} "
              f"workers={spec.n_workers} dispatchers={spec.n_dispatch}")
    print("\nany other name generates a workload from --seed.")
    return 0


def cmd_compare(args) -> int:
    module, requests = _resolve_workload(args.workload, args.seed)
    results = compare_variants(module, [requests], [requests],
                               config=_config(args))
    autofdo = results[PGOVariant.AUTOFDO]
    print(f"workload {args.workload}: cycles (lower is better)\n")
    for variant, result in results.items():
        line = (f"  {variant.value:12s} {result.eval.cycles:14,.0f}"
                f"  text={result.final.sizes.text:6d}")
        if variant is not PGOVariant.AUTOFDO:
            line += f"  vs AutoFDO {speedup_over(autofdo, result)*100:+.2f}%"
        print(line)
    return 0


def cmd_quality(args) -> int:
    from .pgo.quality_eval import evaluate_profile_quality
    module, requests = _resolve_workload(args.workload, args.seed)
    report = evaluate_profile_quality(module, [requests], _config(args))
    print(f"workload {args.workload}: block overlap vs instrumentation\n")
    for key in ("autofdo", "csspgo", "instr"):
        print(f"  {key:10s} overlap {report.block_overlap[key]*100:6.2f}%   "
              f"profiling overhead {report.profiling_overhead[key]*100:+7.2f}%")
    return 0


def cmd_profile(args) -> int:
    from .correlate import generate_context_profile
    from .profile import dump_context_profile
    module, requests = _resolve_workload(args.workload, args.seed)
    artifacts = build(module, PGOVariant.CSSPGO_FULL)
    pmu = make_pmu(PMUConfig(period=args.period))
    run = execute(artifacts.binary, [requests], pmu=pmu)
    profile, inferrer = generate_context_profile(
        artifacts.binary, pmu.finish(run.instructions_retired),
        artifacts.probe_meta)
    text = dump_context_profile(profile)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(profile.contexts)} contexts to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSSPGO reproduction (CGO 2024) command line")
    parser.add_argument("--period", type=int, default=59,
                        help="PMU sampling period (instructions)")
    parser.add_argument("--iterations", type=int, default=2,
                        help="continuous-profiling iterations")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed for ad-hoc workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list named workloads")
    p.set_defaults(func=cmd_workloads)
    p = sub.add_parser("compare", help="compare PGO variants on a workload")
    p.add_argument("workload")
    p.set_defaults(func=cmd_compare)
    p = sub.add_parser("quality", help="Table I profile-quality analysis")
    p.add_argument("workload")
    p.set_defaults(func=cmd_quality)
    p = sub.add_parser("profile", help="dump a CSSPGO context profile")
    p.add_argument("workload")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_profile)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
