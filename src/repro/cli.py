"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare`` — run the PGO variant comparison on a named or generated
  workload and print the Fig. 6/7-style table;
* ``quality`` — run the Table I profile-quality analysis;
* ``profile`` — collect and dump a CSSPGO context profile (text format),
  plus its provenance manifest when written to a file;
* ``stats`` — run one PGO cycle with telemetry forced on and print the
  statistics report (LLVM ``-stats`` / ``-time-passes`` style);
* ``report`` — render a ``--events-out`` JSONL log as the terminal/HTML
  observability dashboard with the SLO scorecard;
* ``lint`` — statically audit a saved profile against the workload's CFG
  (flow conservation, unreachable counts, entry/loop anomalies);
* ``workloads`` — list the named workloads.

Global telemetry flags (usable with any command):

* ``--stats`` — print the statistics report to stdout after the command;
* ``--trace-out PATH`` — write a Chrome trace-event JSON of the run
  (load it in ``chrome://tracing`` / Perfetto, like ``-ftime-trace``);
* ``--remarks-out PATH`` — write the optimization-remarks JSON
  (``-fsave-optimization-record`` style);
* ``--events-out PATH`` — write the structured observability event log
  (JSONL; render with ``repro report``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import (PGODriverConfig, PGOVariant, build, compare_variants, obs,
               run_pgo, speedup_over, telemetry)
from .faults import parse_fault_spec
from .hw import PMUConfig, execute, make_pmu
from .telemetry import render_stats_report, write_chrome_trace, write_remarks
from .workloads import (SERVER_WORKLOADS, WorkloadSpec, build_server_workload,
                        build_workload)


def _resolve_workload(name: str, seed: Optional[int]):
    if name in SERVER_WORKLOADS:
        spec = SERVER_WORKLOADS[name]
        module = build_server_workload(name)
        return module, spec.requests
    spec = WorkloadSpec(name, seed=seed or 0)
    return build_workload(spec), spec.requests


def _config(args) -> PGODriverConfig:
    return PGODriverConfig(
        pmu=PMUConfig(period=args.period),
        profile_iterations=args.iterations,
        independent_profiling=getattr(args, "independent_profiling", False),
        fault_spec=args.fault_spec,
        strict_profile=args.strict_profile,
        static_fill_cold=args.static_fill_cold,
        verify_each=args.verify_each,
        profgen_shards=args.shards,
        profgen_jobs=args.jobs,
        infer_shards=getattr(args, "infer_shards", 1),
        infer_jobs=getattr(args, "infer_jobs", 1),
        incremental_inference=not getattr(args, "no_incremental_inference",
                                          False),
        dense_inference=getattr(args, "dense_inference", False))


def _parse_variants(spec: str) -> Optional[List[PGOVariant]]:
    """Parse a comma-separated variant list; raises ValueError on unknowns."""
    known = {variant.value: variant for variant in PGOVariant}
    variants = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in known:
            raise ValueError(
                f"unknown variant {name!r} (choose from "
                f"{', '.join(known)})")
        variants.append(known[name])
    if not variants:
        raise ValueError("empty variant list")
    return variants


def cmd_workloads(_args) -> int:
    print("named server workloads:")
    for name, spec in SERVER_WORKLOADS.items():
        print(f"  {name:14s} seed={spec.seed} requests={spec.requests} "
              f"workers={spec.n_workers} dispatchers={spec.n_dispatch}")
    print("\nany other name generates a workload from --seed.")
    return 0


def cmd_compare(args) -> int:
    variants = None
    if args.variants:
        try:
            variants = _parse_variants(args.variants)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    module, requests = _resolve_workload(args.workload, args.seed)
    results = compare_variants(module, [requests], [requests],
                               variants=variants, config=_config(args),
                               jobs=args.jobs)
    baseline = results.get(PGOVariant.AUTOFDO)
    print(f"workload {args.workload}: cycles (lower is better)\n")
    for variant, result in results.items():
        line = (f"  {variant.value:12s} {result.eval.cycles:14,.0f}"
                f"  text={result.final.sizes.text:6d}")
        if baseline is not None and variant is not PGOVariant.AUTOFDO:
            line += f"  vs AutoFDO {speedup_over(baseline, result)*100:+.2f}%"
        print(line)
    return 0


def cmd_quality(args) -> int:
    from .pgo.quality_eval import evaluate_profile_quality
    module, requests = _resolve_workload(args.workload, args.seed)
    report = evaluate_profile_quality(module, [requests], _config(args))
    print(f"workload {args.workload}: block overlap vs instrumentation\n")
    for key in ("autofdo", "csspgo", "instr"):
        print(f"  {key:10s} overlap {report.block_overlap[key]*100:6.2f}%   "
              f"profiling overhead {report.profiling_overhead[key]*100:+7.2f}%")
    return 0


def cmd_profile(args) -> int:
    import time

    from .correlate import generate_context_profile, generate_sharded_profile
    from .profile import dump_context_profile
    from .profile.stats import profile_stats
    module, requests = _resolve_workload(args.workload, args.seed)
    artifacts = build(module, PGOVariant.CSSPGO_FULL)
    pmu = make_pmu(PMUConfig(period=args.period))
    run = execute(artifacts.binary, [requests], pmu=pmu)
    data = pmu.finish(run.instructions_retired)
    samples_used = None
    drops = {}
    shard_provenance = None
    if args.shards > 1:
        outcome = generate_sharded_profile(
            artifacts.binary, data, "context", artifacts.probe_meta,
            shards=args.shards, jobs=args.jobs)
        profile = outcome.profile
        # Sharded generation carries exact accounting on the merged
        # ProfileMap — no telemetry session needed to manifest it.
        samples_used = outcome.profile_map.used_samples
        drops = {f"correlate.drop.{reason}": count for reason, count
                 in sorted(outcome.profile_map.dropped.items())}
        shard_provenance = outcome.shard_provenance
    else:
        profile, _inferrer = generate_context_profile(
            artifacts.binary, data, artifacts.probe_meta)
    text = dump_context_profile(profile)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(profile.contexts)} contexts to {args.output}")
        # Profiles that leave the process carry their provenance with them:
        # repro validate --manifest audits the pair later.
        samples = len(data)
        unique = len(data.aggregated()) if samples else 0
        manifest = obs.ProfileManifest(
            variant=PGOVariant.CSSPGO_FULL.value, kind="context",
            binary_identity=artifacts.binary.identity(),
            perf={"samples": samples, "unique_samples": unique,
                  "dedup_ratio": unique / samples if samples else 0.0,
                  "period": data.period, "lbr_depth": data.lbr_depth,
                  "pebs": data.pebs,
                  "instructions_retired": data.instructions_retired,
                  "binary_id": data.binary_id,
                  "samples_used": samples_used},
            drops=drops,
            profile_stats=profile_stats(profile),
            created_at=time.time(),
            shards=shard_provenance)
        manifest_path = obs.manifest_path_for(args.output)
        manifest.write(manifest_path)
        print(f"wrote provenance manifest to {manifest_path}")
    else:
        sys.stdout.write(text)
    return 0


def _load_profile_text(path: str, strict: bool):
    """Read and parse a profile text file; returns (profile, error_code).

    ``error_code`` is None on success, else the CLI exit code (2) after the
    error has been printed."""
    from .profile import (ProfileParseError, load_context_profile,
                          load_flat_profile)
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read profile: {exc}", file=sys.stderr)
        return None, 2
    try:
        if text.lstrip().startswith("# kind: context"):
            return load_context_profile(text, strict=strict), None
        return load_flat_profile(text, strict=strict), None
    except ProfileParseError as exc:
        print(f"error: malformed profile: {exc}", file=sys.stderr)
        return None, 2


def _probed_module(args):
    """The probe-instrumented pre-optimization IR the profile's probe ids
    refer to (the same IR the sample loaders annotate)."""
    from .probes import insert_pseudo_probes
    module, _requests = _resolve_workload(args.workload, args.seed)
    probed = module.clone()
    insert_pseudo_probes(probed)
    return probed


def _emit_lint_events(report) -> None:
    """Per-rule findings + the rollup through the obs event log (no-ops
    without an installed session, i.e. without ``--events-out``)."""
    for finding in report.findings:
        obs.emit("lint_finding", rule=finding.rule,
                 function=finding.function, detail=finding.detail,
                 count=finding.count)
    obs.emit("lint_summary", findings=len(report.findings),
             functions_checked=report.functions_checked,
             rules=sorted(report.rules_fired()))


def _print_lint_findings(report) -> None:
    for finding in report.findings:
        print(f"  [{finding.rule}] {finding.function}: {finding.detail}")


def cmd_lint(args) -> int:
    """Statically audit a saved profile against the workload's CFGs.

    The flow-consistency half of the profile CI gate (DESIGN.md sec. 12):
    checksums say whether the profile describes this CFG, the linter says
    whether its *counts* are even possible on it — flow conservation,
    counts on unreachable blocks, entry-vs-body inversions, loop-depth
    monotonicity, overflow signatures.  Exit 1 when anything fires.
    """
    from .analysis import LintConfig, lint_profile
    profile, error = _load_profile_text(args.profile_file,
                                        args.strict_profile)
    if error is not None:
        return error
    probed = _probed_module(args)
    config = LintConfig(rel_tol=args.rel_tol, abs_slack=args.abs_slack)
    report = lint_profile(profile, probed, config)
    _emit_lint_events(report)
    print(f"lint {args.profile_file} vs workload {args.workload}: "
          f"{report.functions_checked} functions checked, "
          f"{report.functions_skipped} skipped")
    _print_lint_findings(report)
    if report.clean:
        print("  verdict             CLEAN")
        return 0
    by_rule = ", ".join(f"{rule}={count}"
                        for rule, count in sorted(report.by_rule().items()))
    print(f"  verdict             {len(report.findings)} finding(s): "
          f"{by_rule}")
    return 1


def cmd_validate(args) -> int:
    """Audit a saved profile against a freshly built binary.

    The CI gate of DESIGN.md sec. 10: load the profile text, rebuild the
    workload the same way ``repro profile`` built it, and report how much of
    the profile would still apply — checksum match rate plus unknown-GUID
    count — with a pass/fail exit code.

    With ``--manifest PATH`` (DESIGN.md sec. 11) the profile is also
    cross-checked against its provenance manifest: the profiled binary's
    identity must match the fresh build, the manifest's drop accounting must
    balance, and the recorded kind/record count must describe the profile
    actually on disk.

    With ``--lint`` the flow-consistency linter (``repro lint``) runs on
    the same profile; any finding fails the verdict.
    """
    from .annotate import validate_profile
    from .profile import ContextProfile
    profile, error = _load_profile_text(args.profile_file,
                                        args.strict_profile)
    if error is not None:
        return error
    module, _requests = _resolve_workload(args.workload, args.seed)
    artifacts = build(module, PGOVariant.CSSPGO_FULL)
    lint_module = _probed_module(args) if args.lint else None
    report = validate_profile(profile, artifacts.binary, artifacts.probe_meta,
                              lint_module=lint_module)
    ok = report.passed(min_match_rate=args.min_match_rate,
                       max_unknown=args.max_unknown)
    print(f"profile {args.profile_file} vs workload {args.workload}:")
    print(f"  checksum match rate {report.match_rate*100:6.2f}%  "
          f"({len(report.matched)}/{report.checked} checked)")
    print(f"  unknown functions   {len(report.unknown)}")
    print(f"  unchecked           {len(report.unchecked)}")
    if args.lint and report.lint_report is not None:
        _emit_lint_events(report.lint_report)
        print(f"  lint findings       {len(report.lint_report.findings)}")
        _print_lint_findings(report.lint_report)
    if args.manifest:
        try:
            manifest = obs.ProfileManifest.read(args.manifest)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read manifest: {exc}", file=sys.stderr)
            return 2
        identity = artifacts.binary.identity()
        is_context = isinstance(profile, ContextProfile)
        records = len(profile.contexts if is_context else profile.functions)
        recorded = manifest.profile_stats.get("records")
        checks = [
            ("binary identity", manifest.binary_identity == identity,
             f"{manifest.binary_identity} vs build {identity}"),
            ("drop accounting", manifest.drop_accounting_consistent(),
             "used + dropped == samples"),
            ("profile kind",
             (manifest.kind == "context") == is_context,
             f"manifest says {manifest.kind!r}"),
            ("record count",
             recorded is None or int(recorded) == records,
             f"manifest says {recorded}, profile has {records}"),
            ("shard accounting", manifest.shard_accounting_consistent(),
             f"{len(manifest.shards)} shard(s) sum to merged drops"
             if manifest.shards else "unsharded"),
        ]
        print(f"  manifest {args.manifest}:")
        for name, passed, detail in checks:
            mark = "ok" if passed else "MISMATCH"
            print(f"    {name:17s} {mark:8s} ({detail})")
        ok = ok and all(passed for _name, passed, _detail in checks)
    print(f"  verdict             {'PASS' if ok else 'FAIL'}")
    if report.mismatched and not ok:
        shown = ", ".join(report.mismatched[:5])
        print(f"  stale: {shown}"
              + (" ..." if len(report.mismatched) > 5 else ""))
    return 0 if ok else 1


def cmd_report(args) -> int:
    """Render an event log (``--events-out``) as the observability report.

    Prints the terminal dashboard; ``--html`` additionally writes the
    single-file HTML dashboard.  ``--check`` turns the SLO scorecard into a
    CI gate: exit 1 when any rule fails.  Every evaluation is appended back
    to the log as ``slo_evaluated`` events, so the log stays the one place
    the run's whole story lives.
    """
    import json
    try:
        events, malformed = obs.read_event_log(args.events_file)
    except OSError as exc:
        print(f"error: cannot read event log: {exc}", file=sys.stderr)
        return 2
    rules = None
    if args.slo:
        try:
            with open(args.slo) as handle:
                rules = obs.parse_rules(handle.read())
        except (OSError, ValueError) as exc:
            print(f"error: bad SLO rules: {exc}", file=sys.stderr)
            return 2
    report = obs.build_report(events, rules=rules, malformed=malformed)
    print(obs.render_text(report))
    if args.html:
        try:
            with open(args.html, "w") as handle:
                handle.write(obs.render_html(report))
        except OSError as exc:
            print(f"error: cannot write dashboard: {exc}", file=sys.stderr)
            return 2
        print(f"wrote HTML dashboard to {args.html}", file=sys.stderr)
    health = report["health"]
    try:
        seq = max((e.seq for e in events), default=-1) + 1
        ts = events[-1].ts if events else 0.0
        with open(args.events_file, "a") as handle:
            for result in health["rules"]:
                record = {"type": "slo_evaluated", "seq": seq, "ts": ts,
                          "rule": result["rule"],
                          "verdict": result["verdict"],
                          "value": result["value"]}
                json.dump(record, handle, separators=(",", ":"),
                          sort_keys=True)
                handle.write("\n")
                seq += 1
    except OSError:
        pass  # read-only log location: the report itself still stands
    if args.check and health["worst"] == "fail":
        failed = [r["rule"] for r in health["rules"]
                  if r["verdict"] == "fail"]
        print(f"SLO check FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def cmd_fleet_run(args) -> int:
    """Run the fault-tolerant continuous-profiling fleet simulation.

    Deterministic: the orchestrator drives the event log off the logical
    tick clock, so the same seed, fault spec, and shape reproduce the run
    byte for byte.  ``--check`` turns the end-of-run invariants (orphan
    loss 0, retry budget respected, assignments consistent) into a CI
    gate.
    """
    from .fleet import FleetConfig, run_fleet
    config = FleetConfig(
        ticks=args.ticks, services=args.services, workers=args.workers,
        seed=args.seed, collect_every=args.collect_every,
        deadline=args.deadline, status_every=args.status_every,
        release_every=args.release_every,
        freshness_window=args.freshness_window, period=args.period,
        shards=args.shards, jobs=args.jobs, fault_spec=args.fault_spec)
    report = run_fleet(config)
    print(report.render())
    if args.check and report.check():
        print("fleet check FAILED", file=sys.stderr)
        return 1
    return 0


def cmd_fleet_status(args) -> int:
    """Summarize a fleet run from its event log (``--events-out``)."""
    try:
        events, malformed = obs.read_event_log(args.events_file)
    except OSError as exc:
        print(f"error: cannot read event log: {exc}", file=sys.stderr)
        return 2
    rollups = [e for e in events if e.type == "fleet_status"]
    if not rollups:
        print("no fleet_status events in log", file=sys.stderr)
        return 1
    last = rollups[-1]
    totals = last.fields.get("totals", {})
    freshness = last.fields.get("freshness")
    print(f"fleet status @ tick {last.fields.get('tick')} "
          f"({len(rollups)} rollups, {malformed} malformed lines)")
    print(f"  freshness: "
          f"{'n/a' if freshness is None else f'{freshness:.2f}'}")
    for key in sorted(totals):
        if totals[key]:
            print(f"  {key:20s} {totals[key]}")
    assignments = {}
    for event in events:
        if event.type == "fleet_assignment":
            assignments[event.fields.get("service")] = event.fields
    for name in sorted(assignments):
        fields = assignments[name]
        print(f"  {name:10s} variant={fields.get('variant')} "
              f"({fields.get('reason')})")
    return 0


def cmd_stats(args) -> int:
    """Run one full PGO cycle purely for its telemetry."""
    try:
        variant = PGOVariant(args.variant)
    except ValueError:
        print(f"error: unknown variant {args.variant!r} (choose from "
              f"{', '.join(v.value for v in PGOVariant)})", file=sys.stderr)
        return 2
    module, requests = _resolve_workload(args.workload, args.seed)
    run_pgo(module, variant, [requests], [requests], _config(args))
    return 0


def _run_command(args) -> int:
    """Dispatch to the subcommand; strict-mode profile errors exit cleanly
    (typed, one line) instead of with a traceback — loud but not messy."""
    from .profile import ProfileError
    try:
        return args.func(args)
    except ProfileError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSSPGO reproduction (CGO 2024) command line")
    parser.add_argument("--period", type=int, default=59,
                        help="PMU sampling period (instructions)")
    parser.add_argument("--iterations", type=int, default=2,
                        help="continuous-profiling iterations")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes: compare runs variants in "
                             "parallel; with --shards, profile generation "
                             "fans shards out over N workers — results stay "
                             "byte-identical to -j1")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition profile generation into N "
                             "deterministic payload shards and merge the "
                             "partial profiles (byte-identical to unsharded; "
                             "pair with --jobs for a worker pool)")
    parser.add_argument("--infer-shards", type=int, default=1, metavar="N",
                        help="partition per-function profile-inference "
                             "solves into N deterministic shards (solved "
                             "counts identical to unsharded; pair with "
                             "--infer-jobs for a worker pool)")
    parser.add_argument("--infer-jobs", type=int, default=1, metavar="N",
                        help="worker processes for sharded inference solves "
                             "(1 = in-process)")
    parser.add_argument("--dense-inference", action="store_true",
                        help="force the dense differential-oracle inference "
                             "solver instead of the cached sparse path")
    parser.add_argument("--no-incremental-inference", action="store_true",
                        help="disable cross-iteration inference solution "
                             "reuse (every function re-solves every time)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed for ad-hoc workloads")
    parser.add_argument("--stats", action="store_true",
                        help="print pass/stage timing and counters afterwards")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the run")
    parser.add_argument("--remarks-out", default=None, metavar="PATH",
                        help="write optimization remarks JSON")
    parser.add_argument("--events-out", default=None, metavar="PATH",
                        help="write the structured observability event log "
                             "(JSONL; render with 'repro report')")
    parser.add_argument("--strict-profile", action="store_true",
                        help="raise on stale/malformed profiles instead of "
                             "the default drop-and-degrade")
    parser.add_argument("--verify-each", action="store_true",
                        help="run the IR verifier after every optimization "
                             "pass in every build (slow, catches pass bugs "
                             "at their source)")
    parser.add_argument("--static-fill-cold", action="store_true",
                        help="fill never-sampled functions with static "
                             "pseudo-counts (hybrid static/sampled profiles)")
    parser.add_argument("--fault-spec", default=None, metavar="SPEC",
                        type=parse_fault_spec,
                        help="inject deterministic faults into every "
                             "collection, e.g. 'stale_checksum:1,"
                             "drop_samples:0.2@seed=7'")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list named workloads")
    p.set_defaults(func=cmd_workloads)
    p = sub.add_parser("compare", help="compare PGO variants on a workload")
    p.add_argument("workload")
    p.add_argument("--variants", default=None, metavar="V1,V2",
                   help="comma-separated subset of variants to run "
                        f"({', '.join(v.value for v in PGOVariant)})")
    p.add_argument("--independent-profiling", action="store_true",
                   help="profile one plain build --iterations times with "
                        "per-iteration jitter seeds and merge the samples, "
                        "instead of the sequential continuous-deployment "
                        "chain")
    p.set_defaults(func=cmd_compare)
    p = sub.add_parser("quality", help="Table I profile-quality analysis")
    p.add_argument("workload")
    p.set_defaults(func=cmd_quality)
    p = sub.add_parser("profile", help="dump a CSSPGO context profile")
    p.add_argument("workload")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_profile)
    p = sub.add_parser(
        "validate", help="audit a saved profile against a fresh build")
    p.add_argument("profile_file", help="profile text file (repro profile -o)")
    p.add_argument("workload")
    p.add_argument("--min-match-rate", type=float, default=1.0,
                   metavar="FRAC",
                   help="minimum checksum match rate to pass (default 1.0)")
    p.add_argument("--max-unknown", type=int, default=None, metavar="N",
                   help="fail when more than N profile functions are unknown "
                        "to the binary (default: no limit)")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="cross-check the profile against its provenance "
                        "manifest (binary identity, drop accounting, "
                        "kind/record count)")
    p.add_argument("--lint", action="store_true",
                   help="also run the flow-consistency linter; any finding "
                        "fails the verdict")
    p.set_defaults(func=cmd_validate)
    p = sub.add_parser(
        "lint", help="statically audit a profile's counts against the CFG")
    p.add_argument("profile_file", help="profile text file (repro profile -o)")
    p.add_argument("workload")
    p.add_argument("--rel-tol", type=float, default=0.5, metavar="FRAC",
                   help="relative noise tolerance before a flow invariant "
                        "counts as violated (default 0.5)")
    p.add_argument("--abs-slack", type=float, default=10.0, metavar="N",
                   help="absolute count slack on every invariant "
                        "(default 10)")
    p.set_defaults(func=cmd_lint)
    p = sub.add_parser(
        "report", help="render an event log as the observability dashboard")
    p.add_argument("events_file", help="JSONL event log (--events-out)")
    p.add_argument("--html", default=None, metavar="PATH",
                   help="also write a single-file HTML dashboard")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="SLO rule file overriding the default scorecard "
                        "(one 'name: indicator op warn/fail' per line)")
    p.add_argument("--check", action="store_true",
                   help="exit 1 when any SLO rule fails (CI gate)")
    p.set_defaults(func=cmd_report)
    p = sub.add_parser(
        "fleet", help="fault-tolerant continuous-profiling fleet service")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    p = fleet_sub.add_parser(
        "run", help="run the supervised fleet simulation")
    p.add_argument("--ticks", type=int, default=200,
                   help="simulation length in scheduler ticks (default 200)")
    p.add_argument("--services", type=int, default=3,
                   help="number of simulated services (default 3)")
    p.add_argument("--workers", type=int, default=3,
                   help="supervised collection workers (default 3)")
    p.add_argument("--collect-every", type=int, default=20, metavar="T",
                   help="per-service collection cadence in ticks "
                        "(default 20)")
    p.add_argument("--deadline", type=int, default=8, metavar="T",
                   help="per-task deadline in ticks before the supervisor "
                        "cancels the attempt (default 8)")
    p.add_argument("--status-every", type=int, default=20, metavar="T",
                   help="status rollup cadence in ticks (default 20)")
    p.add_argument("--release-every", type=int, default=70, metavar="T",
                   help="rolling-release cadence of the heaviest service "
                        "(0 freezes the fleet; default 70)")
    p.add_argument("--freshness-window", type=int, default=60, metavar="T",
                   help="ticks a generation stays fresh enough for csspgo "
                        "before degrading to autofdo (default 60)")
    p.add_argument("--check", action="store_true",
                   help="exit 1 when any end-of-run invariant is violated "
                        "(CI gate)")
    p.set_defaults(func=cmd_fleet_run, deterministic_log=True)
    p = fleet_sub.add_parser(
        "status", help="summarize a fleet run from its event log")
    p.add_argument("events_file", help="JSONL event log (--events-out)")
    p.set_defaults(func=cmd_fleet_status)
    p = sub.add_parser(
        "stats", help="run one PGO cycle and print its telemetry report")
    p.add_argument("workload")
    p.add_argument("--variant", default=PGOVariant.CSSPGO_FULL.value,
                   help="variant to run (default: csspgo)")
    p.set_defaults(func=cmd_stats, force_stats=True)

    args = parser.parse_args(argv)
    want_stats = args.stats or getattr(args, "force_stats", False)
    collect = (want_stats or args.trace_out or args.remarks_out
               or args.events_out)
    if not collect:
        return _run_command(args)

    session = telemetry.enable()
    obs_session = None
    if args.events_out:
        try:
            obs_session = obs.install(
                obs.Observability(log=obs.EventLog(args.events_out)))
        except OSError as exc:
            print(f"error: cannot open event log: {exc}", file=sys.stderr)
            telemetry.disable()
            return 2
    try:
        with telemetry.span(f"repro {args.command}", "cli",
                            command=args.command):
            rc = _run_command(args)
        if obs_session is not None:
            if getattr(args, "deterministic_log", False):
                # Fleet runs promise a byte-reproducible log: keep the
                # final metrics point but drop wall-clock timing counters
                # and the span tree (both vary run to run).
                obs_session.snapshot("final", drop_timings=True)
            else:
                # Final metrics point + the completed span tree, then the
                # log is a self-contained record of the run.
                obs_session.snapshot("final")
                obs_session.export_spans()
    finally:
        telemetry.disable()
        if obs_session is not None:
            obs_session.close()
            obs.uninstall()
            print(f"wrote {len(obs_session.log.events)} events to "
                  f"{args.events_out}", file=sys.stderr)
    try:
        if args.trace_out:
            write_chrome_trace(session, args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out}", file=sys.stderr)
        if args.remarks_out:
            write_remarks(session, args.remarks_out)
            print(f"wrote {len(session.remarks)} remarks to "
                  f"{args.remarks_out}", file=sys.stderr)
    except OSError as exc:
        # The run itself succeeded; still print the stats before failing so
        # the work is not lost.
        print(f"error: cannot write telemetry output: {exc}", file=sys.stderr)
        rc = 1
    if want_stats:
        print(render_stats_report(session))
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
