"""Profile-quality evaluation (paper sec. IV.C, Table I).

Measures block-overlap degree of each sampling variant's *annotated* profile
against instrumentation ground truth, on the same pristine IR:

1. ground truth — run the instrumented binary, map exact counters back to
   blocks (perfect correlation by construction);
2. each variant — run its profiling pipeline, annotate a fresh module, and
   extract the block counts *before* any optimization distorts them;
3. compare with the paper's D(P) formula.

CSSPGO's context profile is flattened for this measurement (the metric is
defined per function over a common CFG).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..annotate.sample_loader import (annotate_autofdo, annotate_instr,
                                      annotate_probe_flat)
from ..correlate.profgen import (generate_context_profile,
                                 generate_dwarf_profile,
                                 generate_probe_profile)
from ..hw.executor import execute, make_pmu
from ..hw.pmu import PMUConfig
from ..ir.function import Module
from ..probes.insertion import insert_pseudo_probes
from ..quality.overlap import block_overlap_program, module_block_counts
from .build import build
from .driver import PGODriverConfig
from .variants import PGOVariant


class QualityReport:
    """Block overlap + profiling overhead per variant (Table I rows)."""

    def __init__(self) -> None:
        self.block_overlap: Dict[str, float] = {}
        self.profiling_overhead: Dict[str, float] = {}

    def __repr__(self) -> str:
        rows = ", ".join(f"{k}={v:.3f}" for k, v in self.block_overlap.items())
        return f"<QualityReport {rows}>"


def _annotated_counts(source: Module, variant: PGOVariant, profile,
                      imap=None) -> Dict[str, Dict[str, float]]:
    module = source.clone()
    if variant.uses_probes:
        insert_pseudo_probes(module)
    if variant is PGOVariant.AUTOFDO:
        annotate_autofdo(module, profile)
    elif variant is PGOVariant.INSTR:
        annotate_instr(module, profile, imap)
    else:
        annotate_probe_flat(module, profile)
    return module_block_counts(module)


def evaluate_profile_quality(source: Module, train_args: Sequence[int],
                             config: Optional[PGODriverConfig] = None
                             ) -> QualityReport:
    """Run all profiling pipelines on ``source`` and score them."""
    config = config or PGODriverConfig()
    report = QualityReport()

    # -- baseline (plain binary) for overhead ratios ------------------------
    from ..perfmodel.cost_model import CostModel
    plain = build(source, PGOVariant.NONE, opt_config=config.opt,
                  lower_config=config.lower)
    plain_cost = CostModel()
    execute(plain.binary, train_args, cost_model=plain_cost,
            max_instructions=config.max_instructions)

    # -- ground truth: instrumentation --------------------------------------
    instr_build = build(source, PGOVariant.INSTR, instrument=True,
                        opt_config=config.opt, lower_config=config.lower)
    instr_cost = CostModel()
    run = execute(instr_build.binary, train_args, cost_model=instr_cost,
                  max_instructions=config.max_instructions)
    gt_counts = _annotated_counts(source, PGOVariant.INSTR,
                                  dict(run.instr_counters), instr_build.imap)
    report.profiling_overhead["instr"] = (
        instr_cost.cycles / plain_cost.cycles - 1.0)
    report.block_overlap["instr"] = 1.0  # ground truth, by definition

    # -- AutoFDO (profiled on the previous PGO-optimized release) ----------
    dwarf_profile = None
    for _iteration in range(max(1, config.profile_iterations)):
        autofdo_build = build(source, PGOVariant.AUTOFDO,
                              profile=dwarf_profile, opt_config=config.opt,
                              lower_config=config.lower)
        pmu = make_pmu(config.pmu)
        autofdo_cost = CostModel()
        run = execute(autofdo_build.binary, train_args, pmu=pmu,
                      cost_model=autofdo_cost,
                      max_instructions=config.max_instructions)
        dwarf_profile = generate_dwarf_profile(
            autofdo_build.binary, pmu.finish(run.instructions_retired))
    autofdo_counts = _annotated_counts(source, PGOVariant.AUTOFDO,
                                       dwarf_profile)
    report.block_overlap["autofdo"] = block_overlap_program(
        autofdo_counts, gt_counts)
    # Sampling is passive: AutoFDO profiles the stock release binary.
    report.profiling_overhead["autofdo"] = 0.0

    # -- CSSPGO (probe anchors + context, flattened for the metric) --------
    probe_profile = None
    for _iteration in range(max(1, config.profile_iterations)):
        cs_build = build(source, PGOVariant.CSSPGO_PROBE_ONLY,
                         profile=probe_profile, opt_config=config.opt,
                         lower_config=config.lower)
        pmu = make_pmu(config.pmu)
        cs_cost = CostModel()
        run = execute(cs_build.binary, train_args, pmu=pmu, cost_model=cs_cost,
                      max_instructions=config.max_instructions)
        ctx_profile, _ = generate_context_profile(
            cs_build.binary, pmu.finish(run.instructions_retired),
            cs_build.probe_meta)
        probe_profile = ctx_profile.flatten()
    cs_counts = _annotated_counts(source, PGOVariant.CSSPGO_PROBE_ONLY,
                                  probe_profile)
    report.block_overlap["csspgo"] = block_overlap_program(
        cs_counts, gt_counts)
    # Pseudo-instrumentation overhead: a probe build vs an identically
    # configured probe-less build (the Fig. 8 measurement) — probes lower
    # to zero instructions but may block optimizations or pin a nop.
    probe_build = build(source, PGOVariant.CSSPGO_PROBE_ONLY,
                        opt_config=config.opt, lower_config=config.lower)
    probe_cost = CostModel()
    execute(probe_build.binary, train_args, cost_model=probe_cost,
            max_instructions=config.max_instructions)
    report.profiling_overhead["csspgo"] = (
        probe_cost.cycles / plain_cost.cycles - 1.0)
    return report
