"""PGO variants (paper Table/Fig. comparisons) and their pipeline configs."""

from __future__ import annotations

import enum

from ..opt.pass_manager import OptConfig


class PGOVariant(enum.Enum):
    """The build flavors the evaluation compares (the paper's four
    plus FS-AutoFDO, which the paper evaluated and excluded — sec. IV.A)."""

    NONE = "none"                      # plain optimized build, no profile
    INSTR = "instr"                    # instrumentation-based PGO
    AUTOFDO = "autofdo"                # DWARF-correlated sampling PGO
    FS_AUTOFDO = "fs-autofdo"          # + flow-sensitive discriminators
    CSSPGO_PROBE_ONLY = "probe-only"   # pseudo-probes, no context sensitivity
    CSSPGO_FULL = "csspgo"             # probes + context + pre-inliner

    @property
    def uses_probes(self) -> bool:
        return self in (PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL)

    @property
    def is_sampled(self) -> bool:
        return self in (PGOVariant.AUTOFDO, PGOVariant.FS_AUTOFDO,
                        PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL)

    @property
    def uses_fs_discriminators(self) -> bool:
        return self is PGOVariant.FS_AUTOFDO


def opt_config_for(variant: PGOVariant,
                   base: OptConfig = None) -> OptConfig:
    """Per-variant pipeline config.

    All variants share the same pipeline (fair comparison, sec. IV.A); only
    the correlation-anchor semantics differ, and those are encoded in the
    instructions themselves (probes block merges via their signatures,
    counters are barriers via the ``instr_blocks_*`` flags, which default on).
    """
    return base or OptConfig()
