"""End-to-end PGO driver: profile collection, rebuild, evaluation.

The full cycle for each variant (mirroring the paper's production workflow):

1. **profiling build** — sampled variants profile a release-style binary
   (probes inserted for CSSPGO variants); Instr PGO profiles a special
   instrumented binary (the operational burden the paper quantifies);
2. **collection** — run the training input; sampled variants attach the PMU
   (synchronized LBR + stack for full CSSPGO), Instr reads exact counters;
3. **profile generation** — llvm-profgen equivalent; full CSSPGO also runs
   cold-context trimming and the pre-inliner here (offline, sec. III.B(b));
4. **optimizing build** — fresh compile consuming the profile;
5. **evaluation** — run the final binary on the evaluation input under the
   cycle cost model.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs, telemetry
from ..codegen.lower import LowerConfig
from ..correlate.profgen import (generate_context_profile,
                                 generate_dwarf_profile,
                                 generate_probe_profile)
from ..correlate.sharded import generate_sharded_profile
from ..faults import FaultSpec, apply_perf_faults, apply_profile_faults
from ..hw.executor import MachineExecutor, execute, make_pmu
from ..obs import ProfileManifest, profile_block_counts, trim_overlap_score
from ..hw.perf_data import PerfData
from ..hw.pmu import PMU, PMUConfig
from ..inference import incremental as inference_session
from ..ir.function import Module
from ..opt.pass_manager import OptConfig
from ..perfmodel.cost_model import CostModel
from ..preinline.preinliner import PreInlinerConfig, run_preinliner
from ..preinline.size_extractor import extract_function_sizes
from ..profile.errors import ProfileError
from ..profile.profiles import ContextProfile, FlatProfile
from ..profile.stats import profile_stats
from ..profile.trimming import trim_cold_contexts
from .build import BuildArtifacts, build
from .variants import PGOVariant


class RunMeasurement:
    """One execution under the cost model."""

    def __init__(self, cycles: float, instructions: int, summary: Dict[str, float]):
        self.cycles = cycles
        self.instructions = instructions
        self.summary = summary


def measure_run(artifacts: BuildArtifacts, args: Sequence[int],
                max_instructions: int = 100_000_000) -> RunMeasurement:
    cost = CostModel()
    result = execute(artifacts.binary, args, cost_model=cost,
                     max_instructions=max_instructions)
    return RunMeasurement(cost.cycles, result.instructions_retired,
                          cost.summary())


class PGORunResult:
    """Everything one variant's full PGO cycle produced."""

    def __init__(self, variant: PGOVariant):
        self.variant = variant
        self.profile: Optional[Union[FlatProfile, ContextProfile]] = None
        self.profiling_build: Optional[BuildArtifacts] = None
        self.final: Optional[BuildArtifacts] = None
        self.eval: Optional[RunMeasurement] = None
        #: Profiling-phase run of the *last* continuous-profiling iteration
        #: (kept for backward compatibility; see :attr:`profiling_runs`).
        self.profiling_run: Optional[RunMeasurement] = None
        #: One entry per continuous-profiling iteration, in order — overhead
        #: analysis sees every iteration, not just the last.
        self.profiling_runs: List[RunMeasurement] = []
        self.profile_stats: Dict[str, float] = {}
        self.raw_profile_stats: Dict[str, float] = {}
        self.extras: Dict[str, object] = {}

    def __repr__(self) -> str:
        cycles = f"{self.eval.cycles:.0f}" if self.eval else "?"
        return f"<PGORunResult {self.variant.value} cycles={cycles}>"


class PGODriverConfig:
    """Knobs shared across a comparison (identical for every variant)."""

    def __init__(self, *,
                 pmu: Optional[PMUConfig] = None,
                 opt: Optional[OptConfig] = None,
                 lower: Optional[LowerConfig] = None,
                 preinline: Optional[PreInlinerConfig] = None,
                 trim_hot_fraction: float = 0.002,
                 trim_cold_contexts: bool = True,
                 profile_iterations: int = 2,
                 independent_profiling: bool = False,
                 max_instructions: int = 100_000_000,
                 fault_spec: Optional[FaultSpec] = None,
                 strict_profile: bool = False,
                 static_fill_cold: bool = False,
                 verify_each: bool = False,
                 profgen_shards: int = 1,
                 profgen_jobs: int = 1,
                 infer_shards: int = 1,
                 infer_jobs: int = 1,
                 incremental_inference: bool = True,
                 dense_inference: bool = False):
        self.pmu = pmu or PMUConfig()
        self.opt = opt
        self.lower = lower
        self.preinline = preinline
        self.trim_hot_fraction = trim_hot_fraction
        self.trim_cold_contexts = trim_cold_contexts
        #: Continuous-deployment depth for sampled variants: with 2 (the
        #: production situation the paper describes), profiles are collected
        #: on the previous *PGO-optimized* release, whose aggressive
        #: optimizations are exactly what damages DWARF correlation.
        self.profile_iterations = profile_iterations
        #: Fleet-style collection: instead of the sequential continuous-
        #: deployment chain (each iteration profiles the previous iteration's
        #: optimized binary), profile one *plain* release build
        #: ``profile_iterations`` times with per-iteration PMU jitter seeds
        #: and aggregate all samples before a single profile generation.
        #: Iterations are independent, so they parallelize across processes
        #: (``jobs`` in :func:`run_pgo`) with byte-identical results.
        self.independent_profiling = independent_profiling
        self.max_instructions = max_instructions
        #: Deterministic fault injection (DESIGN.md sec. 10): perf-data faults
        #: are applied to every collection's samples before profile
        #: generation, profile faults to every generated profile before it is
        #: consumed downstream.  ``None`` disables injection entirely.
        self.fault_spec = fault_spec
        #: Loud-failure mode: profile application raises typed
        #: :class:`~repro.profile.errors.ProfileError` subclasses instead of
        #: degrading (per-function drop + fallback chain).
        self.strict_profile = strict_profile
        #: Hybrid static/sampled profiles: fill never-sampled functions
        #: with static pseudo-counts (``analysis.static_profile``) during
        #: profile application.  Sampled functions are untouched.
        self.static_fill_cold = static_fill_cold
        #: Run the IR verifier after every optimization pass in every build.
        self.verify_each = verify_each
        #: Sharded profile generation (DESIGN.md sec. 13): with
        #: ``profgen_shards > 1``, deduped payloads are partitioned
        #: deterministically, each shard produces a mergeable partial, and
        #: the merged profile is byte-identical to a serial run's.
        #: ``profgen_jobs`` sets the worker-pool width for those shards
        #: (``1`` = in-process, zero IPC — same bytes either way).
        self.profgen_shards = profgen_shards
        self.profgen_jobs = profgen_jobs
        #: Sharded profile inference (DESIGN.md sec. 14): partition
        #: per-function flow solves deterministically across
        #: ``infer_shards`` and run them on ``infer_jobs`` pool workers
        #: (``1`` = in-process — identical counts either way).
        self.infer_shards = infer_shards
        self.infer_jobs = infer_jobs
        #: Memoize solved systems across the cycle's rolling iterations
        #: (and across variants run in this process): a repeat solve with
        #: unchanged observations is skipped entirely.  Exact-match reuse,
        #: so it never changes counts.
        self.incremental_inference = incremental_inference
        #: Force the dense differential-oracle solver path everywhere.
        self.dense_inference = dense_inference


def run_pgo(source: Module, variant: PGOVariant,
            train_args: Sequence[int], eval_args: Sequence[int],
            config: Optional[PGODriverConfig] = None,
            jobs: int = 1) -> PGORunResult:
    """Run the complete PGO cycle for one variant.

    While telemetry is enabled, each cycle opens a ``variant:<name>`` span
    with nested ``iteration:<i>`` spans and per-stage spans (profiling-build,
    collect, profile-generation, trim, preinline, optimizing-build,
    evaluate) — the Chrome trace of the whole cycle.

    ``jobs`` only matters with ``config.independent_profiling``: independent
    collections fan out over a process pool (each worker re-decodes its
    pickled binary; sample streams are seeded per iteration, so the merged
    profile is byte-identical to a serial run).
    """
    config = config or PGODriverConfig()
    result = PGORunResult(variant)

    # Inference configuration rides the installed session (the telemetry
    # pattern): rolling iterations within this cycle — and later cycles in
    # the same process — reuse the solver cache and, with
    # ``incremental_inference``, skip re-solving functions whose sampled
    # counts did not change.  An already-installed session (an enclosing
    # orchestrator's) is left alone.
    installed_session = None
    if inference_session.current() is None:
        installed_session = inference_session.install(
            inference_session.InferenceSession(
                shards=config.infer_shards, jobs=config.infer_jobs,
                memoize=config.incremental_inference,
                dense=config.dense_inference))

    try:
        obs.emit("run_started", variant=variant.value,
                 iterations=config.profile_iterations,
                 independent=config.independent_profiling,
                 strict=config.strict_profile)
        with telemetry.span(f"variant:{variant.value}", "pgo",
                            variant=variant.value):
            result = _run_pgo_cycle(source, variant, train_args, eval_args,
                                    config, result, jobs)
        obs.emit("run_finished", variant=variant.value,
                 cycles=result.eval.cycles if result.eval else None,
                 degraded_to=result.extras.get("degraded_variant"))
        obs.snapshot(f"variant:{variant.value}")
    finally:
        if installed_session is not None:
            inference_session.uninstall()
    return result


def _fault_perf(data: PerfData, config: PGODriverConfig,
                result: PGORunResult) -> PerfData:
    """Apply the configured perf-data faults (copy-on-write; passthrough
    when no spec is set)."""
    if config.fault_spec is None:
        return data
    data, report = apply_perf_faults(data, config.fault_spec)
    if report.total():
        telemetry.count("pgo", "perf_faults_injected", report.total())
        result.extras["perf_faults_injected"] = (
            int(result.extras.get("perf_faults_injected", 0)) + report.total())
        _merge_fault_digest(result, report)
    return data


def _fault_profile(profile, config: PGODriverConfig, result: PGORunResult):
    """Apply the configured profile faults to a freshly generated profile."""
    if config.fault_spec is None:
        return profile
    profile, report = apply_profile_faults(profile, config.fault_spec)
    if report.total():
        telemetry.count("pgo", "profile_faults_injected", report.total())
        result.extras["profile_faults_injected"] = (
            int(result.extras.get("profile_faults_injected", 0))
            + report.total())
        _merge_fault_digest(result, report)
    return profile


def _merge_fault_digest(result: PGORunResult, report) -> None:
    """Accumulate an injection report into the run's provenance digest."""
    digest = result.extras.setdefault("fault_digest", {})
    for (injector, metric), count in report.events.items():
        key = f"{injector}.{metric}"
        digest[key] = digest.get(key, 0) + count


def _record_provenance(result: PGORunResult, variant: PGOVariant, kind: str,
                       profiling: BuildArtifacts, data: PerfData,
                       config: PGODriverConfig, profile,
                       counters_before: Optional[Dict],
                       quality: Dict[str, float]) -> None:
    """Build this profile's provenance manifest, stash it on the result,
    and emit it as a ``profile_generated`` event.  No-op unless an
    observability session is installed."""
    session_obs = obs.active()
    if session_obs is None:
        return
    session = telemetry.current()
    drops: Dict[str, int] = {}
    samples_used = None
    if session is not None and counters_before is not None:
        for (component, name), value in session.counters.items():
            delta = value - counters_before.get((component, name), 0)
            if delta and component.endswith(".drop"):
                drops[f"{component}.{name}"] = delta
        samples_used = (session.counter("correlate", "samples_used")
                        - counters_before.get(("correlate", "samples_used"),
                                              0))
    samples = len(data)
    unique = len(data.aggregated()) if samples else 0
    manifest = ProfileManifest(
        variant=variant.value, kind=kind,
        binary_identity=profiling.binary.identity(),
        perf={"samples": samples, "unique_samples": unique,
              "dedup_ratio": unique / samples if samples else 0.0,
              "period": data.period, "lbr_depth": data.lbr_depth,
              "pebs": data.pebs,
              "instructions_retired": data.instructions_retired,
              "binary_id": data.binary_id,
              "samples_used": samples_used},
        faults={"spec": (repr(config.fault_spec)
                         if config.fault_spec is not None else None),
                "injected": dict(result.extras.get("fault_digest", {}))},
        drops=drops, quality=dict(quality),
        profile_stats=profile_stats(profile),
        created_at=session_obs.log.now(),
        shards=result.extras.get("shard_provenance"))
    record = manifest.to_dict()
    result.extras.setdefault("manifests", []).append(record)
    obs.emit("profile_generated", variant=variant.value, kind=kind,
             manifest=record)


def _generate_profile(variant: PGOVariant, profiling: BuildArtifacts,
                      data: PerfData, config: PGODriverConfig,
                      result: PGORunResult):
    """Steps 3+ of one collection: profgen, trim, pre-inline.

    Returns ``(profile, inference)`` where ``inference`` is the full-CSSPGO
    frame-inference ``(attempted, recovered)`` pair (``None`` otherwise).

    When ``config.fault_spec`` is set, perf-data faults corrupt the samples
    before profgen and profile faults corrupt the generated profile *before*
    trimming and pre-inlining, so every downstream consumer sees them.

    With an observability session installed, every generated profile gets a
    provenance manifest (binary identity, sample lineage, fault digest,
    drop accounting, trim-fidelity score) recorded under
    ``result.extras["manifests"]`` and emitted as a ``profile_generated``
    event.
    """
    observing = obs.enabled()
    session = telemetry.current()
    counters_before = (dict(session.counters)
                       if observing and session is not None else None)
    data = _fault_perf(data, config, result)
    quality: Dict[str, float] = {}
    sharded = config.profgen_shards > 1
    with telemetry.span("profile-generation", "stage",
                        shards=config.profgen_shards if sharded else 1):
        if variant in (PGOVariant.AUTOFDO, PGOVariant.FS_AUTOFDO):
            if sharded:
                outcome = generate_sharded_profile(
                    profiling.binary, data, "dwarf",
                    shards=config.profgen_shards, jobs=config.profgen_jobs)
                result.extras["shard_provenance"] = outcome.shard_provenance
                raw = outcome.profile
            else:
                raw = generate_dwarf_profile(profiling.binary, data)
            profile = _fault_profile(raw, config, result)
            _record_provenance(result, variant, "dwarf", profiling, data,
                               config, profile, counters_before, quality)
            return profile, None
        if variant is PGOVariant.CSSPGO_PROBE_ONLY:
            if sharded:
                outcome = generate_sharded_profile(
                    profiling.binary, data, "probe", profiling.probe_meta,
                    shards=config.profgen_shards, jobs=config.profgen_jobs)
                result.extras["shard_provenance"] = outcome.shard_provenance
                raw = outcome.profile
            else:
                raw = generate_probe_profile(profiling.binary, data,
                                             profiling.probe_meta)
            profile = _fault_profile(raw, config, result)
            _record_provenance(result, variant, "probe", profiling, data,
                               config, profile, counters_before, quality)
            return profile, None
        if sharded:
            outcome = generate_sharded_profile(
                profiling.binary, data, "context", profiling.probe_meta,
                shards=config.profgen_shards, jobs=config.profgen_jobs)
            result.extras["shard_provenance"] = outcome.shard_provenance
            profile = outcome.profile
            inference = outcome.inference or (0, 0)
        else:
            profile, inferrer = generate_context_profile(
                profiling.binary, data, profiling.probe_meta)
            inference = (inferrer.attempted, inferrer.recovered)
    result.extras["frame_inference"] = inference
    profile = _fault_profile(profile, config, result)
    result.raw_profile_stats = profile_stats(profile)
    raw_counts = profile_block_counts(profile) if observing else None
    if config.trim_cold_contexts:
        with telemetry.span("trim", "stage"):
            kept, merged = trim_cold_contexts(
                profile, config.trim_hot_fraction)
        result.extras["trimmed_contexts"] = merged
        telemetry.count("pgo", "contexts_trimmed", merged)
    if raw_counts is not None:
        quality["trim_overlap"] = trim_overlap_score(raw_counts, profile)
    with telemetry.span("preinline", "stage"):
        sizes = extract_function_sizes(profiling.binary)
        decisions = run_preinliner(profile, sizes, config.preinline)
    result.extras["preinline_decisions"] = decisions
    _record_provenance(result, variant, "context", profiling, data, config,
                       profile, counters_before, quality)
    return profile, inference


#: Degradation chain (graceful degradation, DESIGN.md sec. 10): each step
#: trades optimization quality for certainty that the build completes.
#: Probe-based variants retreat to DWARF correlation (regenerated from the
#: same samples — checksums and probe ids no longer matter), DWARF variants
#: retreat to a plain no-PGO build.
_FALLBACK_NEXT = {
    PGOVariant.CSSPGO_FULL: PGOVariant.AUTOFDO,
    PGOVariant.CSSPGO_PROBE_ONLY: PGOVariant.AUTOFDO,
    PGOVariant.FS_AUTOFDO: PGOVariant.NONE,
    PGOVariant.AUTOFDO: PGOVariant.NONE,
}


def _profile_is_empty(profile) -> bool:
    if profile is None:
        return True
    if isinstance(profile, ContextProfile):
        return not profile.contexts
    if isinstance(profile, FlatProfile):
        return not profile.functions
    return not profile  # INSTR counter dict


def _build_optimized(source: Module, variant: PGOVariant, profile,
                     config: PGODriverConfig, result: PGORunResult,
                     profiling: Optional[BuildArtifacts] = None,
                     data: Optional[PerfData] = None,
                     imap_from_profiling=None) -> BuildArtifacts:
    """The optimizing build, behind the degradation chain.

    A profile that applies to zero functions (fully stale checksums, moved
    GUIDs, a corrupt file) must cost optimization, never the build: retry as
    the next variant in :data:`_FALLBACK_NEXT`, regenerating a DWARF profile
    from the same samples when one is reachable, bottoming out at a plain
    no-PGO build.  Every hop bumps ``pgo.fallback.<from>_to_<to>``, emits a
    ``ProfileFallback`` remark and a ``fallback_taken`` event, and is
    appended to ``result.extras["fallback_chain"]`` with its *reason*
    (the :mod:`repro.profile.errors` exception type, or
    ``EmptyAnnotation``) recorded in the parallel
    ``result.extras["fallback_reasons"]`` list.

    In strict mode (``config.strict_profile``) the sample loaders raise a
    typed :class:`~repro.profile.errors.ProfileError` instead of dropping;
    the chain re-raises it — loud failure is the point of strict.
    """
    chain: List[str] = []
    reasons: List[str] = []
    hops: List[Dict[str, str]] = []
    current_variant, current_profile = variant, profile
    current_imap = imap_from_profiling
    while True:
        try:
            artifacts = build(source, current_variant,
                              profile=current_profile,
                              imap_from_profiling=current_imap,
                              opt_config=config.opt,
                              lower_config=config.lower,
                              strict_profile=config.strict_profile,
                              static_fill_cold=config.static_fill_cold,
                              verify_each=config.verify_each)
            stats = artifacts.annotation
            usable = stats is None or stats.usable(
                not _profile_is_empty(current_profile))
            reason = "EmptyAnnotation" if not usable else ""
            detail = "0 functions annotated" if not usable else ""
        except ProfileError as exc:
            if config.strict_profile:
                raise
            artifacts, usable = None, False
            reason = type(exc).__name__
            detail = f"{reason}: {exc}"
        next_variant = _FALLBACK_NEXT.get(current_variant)
        if usable or next_variant is None:
            break
        telemetry.count(
            "pgo.fallback",
            f"{current_variant.value}_to_{next_variant.value}")
        telemetry.remark(
            "pgo-driver", "ProfileFallback", "<module>",
            f"profile unusable for {current_variant.value} ({detail}); "
            f"degrading to {next_variant.value}", reason=reason)
        obs.emit("fallback_taken", from_variant=current_variant.value,
                 to_variant=next_variant.value, reason=reason,
                 detail=detail)
        chain.append(f"{current_variant.value}->{next_variant.value}")
        reasons.append(reason)
        hops.append({"from": current_variant.value,
                     "to": next_variant.value, "reason": reason})
        if (next_variant.is_sampled and profiling is not None
                and data is not None):
            current_profile = generate_dwarf_profile(profiling.binary, data)
        else:
            current_profile = None
        current_variant = next_variant
        current_imap = None
    if artifacts is None:
        # Terminal variant raised in permissive mode (should not happen —
        # DWARF/plain loads never raise): last-ditch plain build.
        artifacts = build(source, PGOVariant.NONE, opt_config=config.opt,
                          lower_config=config.lower,
                          verify_each=config.verify_each)
    if chain:
        result.extras["fallback_chain"] = chain
        result.extras["fallback_reasons"] = reasons
        result.extras["degraded_variant"] = current_variant.value
        # The degradation story belongs to the profile's provenance: stamp
        # the hops onto the most recent manifest of this run.
        manifests = result.extras.get("manifests")
        if manifests:
            manifests[-1]["fallbacks"] = hops
    stats = artifacts.annotation
    if stats is not None:
        obs.emit("profile_applied", variant=current_variant.value,
                 annotated=len(stats.annotated),
                 rejected_checksum=len(stats.rejected_checksum),
                 no_profile=len(stats.no_profile))
    return artifacts


def _profile_collection(binary, train_args: Sequence[int],
                        pmu_config: PMUConfig, max_instructions: int):
    """One profiling run (picklable, so it can run in a pool worker)."""
    pmu = make_pmu(pmu_config)
    cost = CostModel()
    run = execute(binary, train_args, pmu=pmu, cost_model=cost,
                  max_instructions=max_instructions)
    measurement = RunMeasurement(cost.cycles, run.instructions_retired,
                                 cost.summary())
    return pmu.finish(run.instructions_retired), measurement


def _collect_star(task):
    return _profile_collection(*task)


def _collect_independent(profiling: BuildArtifacts,
                         train_args: Sequence[int],
                         config: PGODriverConfig,
                         result: PGORunResult, jobs: int):
    """Fleet-style collection: N independent runs of one plain build.

    Each iteration gets its own jitter seed (``base + i``), so the per-run
    sample streams — and therefore the aggregate, merged in iteration
    order — do not depend on whether runs happened serially or in a pool.
    """
    iterations = max(1, config.profile_iterations)
    base = config.pmu
    tasks = [(profiling.binary, tuple(train_args),
              PMUConfig(period=base.period, lbr_depth=base.lbr_depth,
                        pebs=base.pebs,
                        jitter_seed=base.jitter_seed + iteration),
              config.max_instructions)
             for iteration in range(iterations)]
    if jobs > 1 and iterations > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, iterations)) as pool:
            outcomes = list(pool.map(_collect_star, tasks))
    else:
        outcomes = [_profile_collection(*task) for task in tasks]
    merged = PerfData(base.period, base.lbr_depth, base.pebs)
    samples_per_iteration: List[int] = []
    for data, measurement in outcomes:
        merged.extend(data, site="driver.independent_profiling")
        merged.instructions_retired += data.instructions_retired
        result.profiling_runs.append(measurement)
        samples_per_iteration.append(len(data))
    result.profiling_run = result.profiling_runs[-1]
    return merged, samples_per_iteration


def _run_pgo_cycle(source: Module, variant: PGOVariant,
                   train_args: Sequence[int], eval_args: Sequence[int],
                   config: PGODriverConfig,
                   result: PGORunResult, jobs: int = 1) -> PGORunResult:
    if variant is PGOVariant.NONE:
        with telemetry.span("optimizing-build", "stage"):
            result.final = build(source, variant, opt_config=config.opt,
                                 lower_config=config.lower,
                                 verify_each=config.verify_each)
        with telemetry.span("evaluate", "stage"):
            result.eval = measure_run(result.final, eval_args,
                                      config.max_instructions)
        return result

    # ---- 1-3: profiling build, collection, profile generation ------------
    if variant is PGOVariant.INSTR:
        with telemetry.span("iteration:0", "stage", iteration=0):
            with telemetry.span("profiling-build", "stage"):
                profiling = build(source, variant, instrument=True,
                                  opt_config=config.opt,
                                  lower_config=config.lower,
                                  verify_each=config.verify_each)
            with telemetry.span("collect", "stage"):
                cost = CostModel()
                run = execute(profiling.binary, train_args, cost_model=cost,
                              max_instructions=config.max_instructions)
            result.profiling_run = RunMeasurement(cost.cycles,
                                                  run.instructions_retired,
                                                  cost.summary())
            result.profiling_runs.append(result.profiling_run)
            profile: Dict[Tuple[str, int], float] = dict(run.instr_counters)
            result.profile = profile
            result.profiling_build = profiling
            session_obs = obs.active()
            if session_obs is not None:
                # Instr PGO reads exact counters, so lineage is just the
                # instrumented binary and its counter census — no perf-data
                # chain, no drops, no trim.
                manifest = ProfileManifest(
                    variant=variant.value, kind="instr",
                    binary_identity=profiling.binary.identity(),
                    perf={"counters": len(profile),
                          "instructions_retired": run.instructions_retired},
                    faults={"spec": (repr(config.fault_spec)
                                     if config.fault_spec is not None
                                     else None),
                            "injected": {}},
                    drops={}, quality={}, profile_stats={},
                    created_at=session_obs.log.now())
                record = manifest.to_dict()
                result.extras.setdefault("manifests", []).append(record)
                obs.emit("profile_generated", variant=variant.value,
                         kind="instr", manifest=record)
            obs.snapshot(f"{variant.value}/iter:0")
        with telemetry.span("optimizing-build", "stage"):
            final = _build_optimized(source, variant, profile, config, result,
                                     imap_from_profiling=profiling.imap)
    elif config.independent_profiling:
        # Fleet-style collection: one plain release build, profiled N times
        # independently (per-iteration jitter seeds), samples aggregated
        # before a single profile generation.
        with telemetry.span("profiling-build", "stage"):
            profiling = build(source, variant, opt_config=config.opt,
                              lower_config=config.lower,
                              verify_each=config.verify_each)
        result.profiling_build = profiling
        with telemetry.span("collect", "stage", jobs=jobs):
            data, samples_per_iteration = _collect_independent(
                profiling, train_args, config, result, jobs)
        result.extras["samples"] = len(data)
        result.extras["samples_per_iteration"] = samples_per_iteration
        obs.snapshot(f"{variant.value}/collect")
        profile, inference = _generate_profile(variant, profiling, data,
                                               config, result)
        if inference is not None:
            result.extras["frame_inference_per_iteration"] = [inference]
        result.profile = profile
        result.profile_stats = profile_stats(profile)
        with telemetry.span("optimizing-build", "stage"):
            final = _build_optimized(source, variant, profile, config, result,
                                     profiling=profiling, data=data)
    else:
        # Continuous deployment: iteration 0 profiles a plain release build,
        # each following iteration profiles the binary optimized with the
        # previous iteration's profile (the production steady state).
        profile = None
        samples_per_iteration: List[int] = []
        inference_per_iteration: List[Tuple[int, int]] = []
        for iteration in range(max(1, config.profile_iterations)):
            with telemetry.span(f"iteration:{iteration}", "stage",
                                iteration=iteration):
                with telemetry.span("profiling-build", "stage"):
                    profiling = build(source, variant, profile=profile,
                                      opt_config=config.opt,
                                      lower_config=config.lower,
                                      static_fill_cold=config.static_fill_cold,
                                      verify_each=config.verify_each)
                result.profiling_build = profiling
                with telemetry.span("collect", "stage"):
                    data, measurement = _profile_collection(
                        profiling.binary, train_args, config.pmu,
                        config.max_instructions)
                result.profiling_run = measurement
                result.profiling_runs.append(measurement)
                # Last-iteration scalar kept for backward compatibility; the
                # per-iteration list is what overhead analysis should read.
                result.extras["samples"] = len(data)
                samples_per_iteration.append(len(data))
                profile, inference = _generate_profile(
                    variant, profiling, data, config, result)
                if inference is not None:
                    inference_per_iteration.append(inference)
            obs.snapshot(f"{variant.value}/iter:{iteration}")
        result.extras["samples_per_iteration"] = samples_per_iteration
        if inference_per_iteration:
            result.extras["frame_inference_per_iteration"] = \
                inference_per_iteration
        result.profile = profile
        result.profile_stats = profile_stats(profile)
        with telemetry.span("optimizing-build", "stage"):
            final = _build_optimized(source, variant, profile, config, result,
                                     profiling=profiling, data=data)

    # ---- 4-5: optimizing build and evaluation -----------------------------
    result.final = final
    with telemetry.span("evaluate", "stage"):
        result.eval = measure_run(final, eval_args, config.max_instructions)
    return result


def _run_pgo_worker(source: Module, variant: PGOVariant,
                    train_args: Sequence[int], eval_args: Sequence[int],
                    config: Optional[PGODriverConfig],
                    collect_telemetry: bool, collect_events: bool):
    """Pool-worker wrapper around :func:`run_pgo` (module-level, picklable).

    When the parent is collecting telemetry/events, the worker collects
    into fresh local sessions and ships them back with the result so the
    parent can merge — parallelism must not punch holes in observability.
    """
    session = (telemetry.enable(telemetry.TelemetrySession())
               if collect_telemetry else None)
    obs_session = obs.install() if collect_events else None
    try:
        result = run_pgo(source, variant, train_args, eval_args, config)
    finally:
        if collect_telemetry:
            telemetry.disable()
        if collect_events:
            obs.uninstall()
    events = (obs.events_to_dicts(obs_session.log.events)
              if obs_session is not None else None)
    return result, session, events


def compare_variants(source: Module, train_args: Sequence[int],
                     eval_args: Sequence[int],
                     variants: Optional[List[PGOVariant]] = None,
                     config: Optional[PGODriverConfig] = None,
                     jobs: int = 1) -> Dict[PGOVariant, PGORunResult]:
    """Run several variants on identical inputs; keyed results.

    With ``jobs > 1`` the variants run in a :class:`ProcessPoolExecutor`.
    Each variant's cycle is fully deterministic and shares no mutable state
    with the others (every cycle builds from a fresh clone of ``source`` and
    seeds its own PMU), so the result dict — still in ``variants`` order —
    is byte-identical to a serial run.  Telemetry and observability events
    recorded inside worker processes are merged back into the parent's
    sessions in ``variants`` order: counters add, spans/remarks append, and
    worker events are re-emitted (re-stamped with parent sequence/clock).
    """
    if variants is None:
        variants = [PGOVariant.NONE, PGOVariant.AUTOFDO,
                    PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL,
                    PGOVariant.INSTR]
    if jobs <= 1 or len(variants) <= 1:
        return {variant: run_pgo(source, variant, train_args, eval_args,
                                 config)
                for variant in variants}
    telemetry.count("pgo", "parallel_compare_jobs", min(jobs, len(variants)))
    parent_session = telemetry.current()
    parent_obs = obs.active()
    results: Dict[PGOVariant, PGORunResult] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(variants))) as pool:
        futures = [pool.submit(_run_pgo_worker, source, variant, train_args,
                               eval_args, config,
                               parent_session is not None,
                               parent_obs is not None)
                   for variant in variants]
        for variant, future in zip(variants, futures):
            result, worker_session, worker_events = future.result()
            if parent_session is not None and worker_session is not None:
                parent_session.merge(worker_session)
            if parent_obs is not None and worker_events:
                for record in worker_events:
                    fields = {key: value for key, value in record.items()
                              if key not in ("type", "seq", "ts")}
                    parent_obs.emit(record["type"], **fields)
            results[variant] = result
    return results


def speedup_over(baseline: PGORunResult, other: PGORunResult) -> float:
    """Relative performance of ``other`` vs ``baseline`` (positive = faster),
    the paper's "% improvement" metric."""
    return baseline.eval.cycles / other.eval.cycles - 1.0
