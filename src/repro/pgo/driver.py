"""End-to-end PGO driver: profile collection, rebuild, evaluation.

The full cycle for each variant (mirroring the paper's production workflow):

1. **profiling build** — sampled variants profile a release-style binary
   (probes inserted for CSSPGO variants); Instr PGO profiles a special
   instrumented binary (the operational burden the paper quantifies);
2. **collection** — run the training input; sampled variants attach the PMU
   (synchronized LBR + stack for full CSSPGO), Instr reads exact counters;
3. **profile generation** — llvm-profgen equivalent; full CSSPGO also runs
   cold-context trimming and the pre-inliner here (offline, sec. III.B(b));
4. **optimizing build** — fresh compile consuming the profile;
5. **evaluation** — run the final binary on the evaluation input under the
   cycle cost model.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..codegen.lower import LowerConfig
from ..correlate.profgen import (generate_context_profile,
                                 generate_dwarf_profile,
                                 generate_probe_profile)
from ..hw.executor import MachineExecutor, execute, make_pmu
from ..hw.perf_data import PerfData
from ..hw.pmu import PMU, PMUConfig
from ..ir.function import Module
from ..opt.pass_manager import OptConfig
from ..perfmodel.cost_model import CostModel
from ..preinline.preinliner import PreInlinerConfig, run_preinliner
from ..preinline.size_extractor import extract_function_sizes
from ..profile.profiles import ContextProfile, FlatProfile
from ..profile.stats import profile_stats
from ..profile.trimming import trim_cold_contexts
from .build import BuildArtifacts, build
from .variants import PGOVariant


class RunMeasurement:
    """One execution under the cost model."""

    def __init__(self, cycles: float, instructions: int, summary: Dict[str, float]):
        self.cycles = cycles
        self.instructions = instructions
        self.summary = summary


def measure_run(artifacts: BuildArtifacts, args: Sequence[int],
                max_instructions: int = 100_000_000) -> RunMeasurement:
    cost = CostModel()
    result = execute(artifacts.binary, args, cost_model=cost,
                     max_instructions=max_instructions)
    return RunMeasurement(cost.cycles, result.instructions_retired,
                          cost.summary())


class PGORunResult:
    """Everything one variant's full PGO cycle produced."""

    def __init__(self, variant: PGOVariant):
        self.variant = variant
        self.profile: Optional[Union[FlatProfile, ContextProfile]] = None
        self.profiling_build: Optional[BuildArtifacts] = None
        self.final: Optional[BuildArtifacts] = None
        self.eval: Optional[RunMeasurement] = None
        #: Profiling-phase run of the *last* continuous-profiling iteration
        #: (kept for backward compatibility; see :attr:`profiling_runs`).
        self.profiling_run: Optional[RunMeasurement] = None
        #: One entry per continuous-profiling iteration, in order — overhead
        #: analysis sees every iteration, not just the last.
        self.profiling_runs: List[RunMeasurement] = []
        self.profile_stats: Dict[str, float] = {}
        self.raw_profile_stats: Dict[str, float] = {}
        self.extras: Dict[str, object] = {}

    def __repr__(self) -> str:
        cycles = f"{self.eval.cycles:.0f}" if self.eval else "?"
        return f"<PGORunResult {self.variant.value} cycles={cycles}>"


class PGODriverConfig:
    """Knobs shared across a comparison (identical for every variant)."""

    def __init__(self, *,
                 pmu: Optional[PMUConfig] = None,
                 opt: Optional[OptConfig] = None,
                 lower: Optional[LowerConfig] = None,
                 preinline: Optional[PreInlinerConfig] = None,
                 trim_hot_fraction: float = 0.002,
                 trim_cold_contexts: bool = True,
                 profile_iterations: int = 2,
                 independent_profiling: bool = False,
                 max_instructions: int = 100_000_000):
        self.pmu = pmu or PMUConfig()
        self.opt = opt
        self.lower = lower
        self.preinline = preinline
        self.trim_hot_fraction = trim_hot_fraction
        self.trim_cold_contexts = trim_cold_contexts
        #: Continuous-deployment depth for sampled variants: with 2 (the
        #: production situation the paper describes), profiles are collected
        #: on the previous *PGO-optimized* release, whose aggressive
        #: optimizations are exactly what damages DWARF correlation.
        self.profile_iterations = profile_iterations
        #: Fleet-style collection: instead of the sequential continuous-
        #: deployment chain (each iteration profiles the previous iteration's
        #: optimized binary), profile one *plain* release build
        #: ``profile_iterations`` times with per-iteration PMU jitter seeds
        #: and aggregate all samples before a single profile generation.
        #: Iterations are independent, so they parallelize across processes
        #: (``jobs`` in :func:`run_pgo`) with byte-identical results.
        self.independent_profiling = independent_profiling
        self.max_instructions = max_instructions


def run_pgo(source: Module, variant: PGOVariant,
            train_args: Sequence[int], eval_args: Sequence[int],
            config: Optional[PGODriverConfig] = None,
            jobs: int = 1) -> PGORunResult:
    """Run the complete PGO cycle for one variant.

    While telemetry is enabled, each cycle opens a ``variant:<name>`` span
    with nested ``iteration:<i>`` spans and per-stage spans (profiling-build,
    collect, profile-generation, trim, preinline, optimizing-build,
    evaluate) — the Chrome trace of the whole cycle.

    ``jobs`` only matters with ``config.independent_profiling``: independent
    collections fan out over a process pool (each worker re-decodes its
    pickled binary; sample streams are seeded per iteration, so the merged
    profile is byte-identical to a serial run).
    """
    config = config or PGODriverConfig()
    result = PGORunResult(variant)

    with telemetry.span(f"variant:{variant.value}", "pgo",
                        variant=variant.value):
        return _run_pgo_cycle(source, variant, train_args, eval_args,
                              config, result, jobs)


def _generate_profile(variant: PGOVariant, profiling: BuildArtifacts,
                      data: PerfData, config: PGODriverConfig,
                      result: PGORunResult):
    """Steps 3+ of one collection: profgen, trim, pre-inline.

    Returns ``(profile, inference)`` where ``inference`` is the full-CSSPGO
    frame-inference ``(attempted, recovered)`` pair (``None`` otherwise).
    """
    with telemetry.span("profile-generation", "stage"):
        if variant in (PGOVariant.AUTOFDO, PGOVariant.FS_AUTOFDO):
            return generate_dwarf_profile(profiling.binary, data), None
        if variant is PGOVariant.CSSPGO_PROBE_ONLY:
            return generate_probe_profile(
                profiling.binary, data, profiling.probe_meta), None
        profile, inferrer = generate_context_profile(
            profiling.binary, data, profiling.probe_meta)
    inference = (inferrer.attempted, inferrer.recovered)
    result.extras["frame_inference"] = inference
    result.raw_profile_stats = profile_stats(profile)
    if config.trim_cold_contexts:
        with telemetry.span("trim", "stage"):
            kept, merged = trim_cold_contexts(
                profile, config.trim_hot_fraction)
        result.extras["trimmed_contexts"] = merged
        telemetry.count("pgo", "contexts_trimmed", merged)
    with telemetry.span("preinline", "stage"):
        sizes = extract_function_sizes(profiling.binary)
        decisions = run_preinliner(profile, sizes, config.preinline)
    result.extras["preinline_decisions"] = decisions
    return profile, inference


def _profile_collection(binary, train_args: Sequence[int],
                        pmu_config: PMUConfig, max_instructions: int):
    """One profiling run (picklable, so it can run in a pool worker)."""
    pmu = make_pmu(pmu_config)
    cost = CostModel()
    run = execute(binary, train_args, pmu=pmu, cost_model=cost,
                  max_instructions=max_instructions)
    measurement = RunMeasurement(cost.cycles, run.instructions_retired,
                                 cost.summary())
    return pmu.finish(run.instructions_retired), measurement


def _collect_star(task):
    return _profile_collection(*task)


def _collect_independent(profiling: BuildArtifacts,
                         train_args: Sequence[int],
                         config: PGODriverConfig,
                         result: PGORunResult, jobs: int):
    """Fleet-style collection: N independent runs of one plain build.

    Each iteration gets its own jitter seed (``base + i``), so the per-run
    sample streams — and therefore the aggregate, merged in iteration
    order — do not depend on whether runs happened serially or in a pool.
    """
    iterations = max(1, config.profile_iterations)
    base = config.pmu
    tasks = [(profiling.binary, tuple(train_args),
              PMUConfig(period=base.period, lbr_depth=base.lbr_depth,
                        pebs=base.pebs,
                        jitter_seed=base.jitter_seed + iteration),
              config.max_instructions)
             for iteration in range(iterations)]
    if jobs > 1 and iterations > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, iterations)) as pool:
            outcomes = list(pool.map(_collect_star, tasks))
    else:
        outcomes = [_profile_collection(*task) for task in tasks]
    merged = PerfData(base.period, base.lbr_depth, base.pebs)
    samples_per_iteration: List[int] = []
    for data, measurement in outcomes:
        merged.extend(data)
        merged.instructions_retired += data.instructions_retired
        result.profiling_runs.append(measurement)
        samples_per_iteration.append(len(data))
    result.profiling_run = result.profiling_runs[-1]
    return merged, samples_per_iteration


def _run_pgo_cycle(source: Module, variant: PGOVariant,
                   train_args: Sequence[int], eval_args: Sequence[int],
                   config: PGODriverConfig,
                   result: PGORunResult, jobs: int = 1) -> PGORunResult:
    if variant is PGOVariant.NONE:
        with telemetry.span("optimizing-build", "stage"):
            result.final = build(source, variant, opt_config=config.opt,
                                 lower_config=config.lower)
        with telemetry.span("evaluate", "stage"):
            result.eval = measure_run(result.final, eval_args,
                                      config.max_instructions)
        return result

    # ---- 1-3: profiling build, collection, profile generation ------------
    if variant is PGOVariant.INSTR:
        with telemetry.span("iteration:0", "stage", iteration=0):
            with telemetry.span("profiling-build", "stage"):
                profiling = build(source, variant, instrument=True,
                                  opt_config=config.opt,
                                  lower_config=config.lower)
            with telemetry.span("collect", "stage"):
                cost = CostModel()
                run = execute(profiling.binary, train_args, cost_model=cost,
                              max_instructions=config.max_instructions)
            result.profiling_run = RunMeasurement(cost.cycles,
                                                  run.instructions_retired,
                                                  cost.summary())
            result.profiling_runs.append(result.profiling_run)
            profile: Dict[Tuple[str, int], float] = dict(run.instr_counters)
            result.profile = profile
            result.profiling_build = profiling
        with telemetry.span("optimizing-build", "stage"):
            final = build(source, variant, profile=profile,
                          imap_from_profiling=profiling.imap,
                          opt_config=config.opt, lower_config=config.lower)
    elif config.independent_profiling:
        # Fleet-style collection: one plain release build, profiled N times
        # independently (per-iteration jitter seeds), samples aggregated
        # before a single profile generation.
        with telemetry.span("profiling-build", "stage"):
            profiling = build(source, variant, opt_config=config.opt,
                              lower_config=config.lower)
        result.profiling_build = profiling
        with telemetry.span("collect", "stage", jobs=jobs):
            data, samples_per_iteration = _collect_independent(
                profiling, train_args, config, result, jobs)
        result.extras["samples"] = len(data)
        result.extras["samples_per_iteration"] = samples_per_iteration
        profile, inference = _generate_profile(variant, profiling, data,
                                               config, result)
        if inference is not None:
            result.extras["frame_inference_per_iteration"] = [inference]
        result.profile = profile
        result.profile_stats = profile_stats(profile)
        with telemetry.span("optimizing-build", "stage"):
            final = build(source, variant, profile=profile,
                          opt_config=config.opt, lower_config=config.lower)
    else:
        # Continuous deployment: iteration 0 profiles a plain release build,
        # each following iteration profiles the binary optimized with the
        # previous iteration's profile (the production steady state).
        profile = None
        samples_per_iteration: List[int] = []
        inference_per_iteration: List[Tuple[int, int]] = []
        for iteration in range(max(1, config.profile_iterations)):
            with telemetry.span(f"iteration:{iteration}", "stage",
                                iteration=iteration):
                with telemetry.span("profiling-build", "stage"):
                    profiling = build(source, variant, profile=profile,
                                      opt_config=config.opt,
                                      lower_config=config.lower)
                result.profiling_build = profiling
                with telemetry.span("collect", "stage"):
                    data, measurement = _profile_collection(
                        profiling.binary, train_args, config.pmu,
                        config.max_instructions)
                result.profiling_run = measurement
                result.profiling_runs.append(measurement)
                # Last-iteration scalar kept for backward compatibility; the
                # per-iteration list is what overhead analysis should read.
                result.extras["samples"] = len(data)
                samples_per_iteration.append(len(data))
                profile, inference = _generate_profile(
                    variant, profiling, data, config, result)
                if inference is not None:
                    inference_per_iteration.append(inference)
        result.extras["samples_per_iteration"] = samples_per_iteration
        if inference_per_iteration:
            result.extras["frame_inference_per_iteration"] = \
                inference_per_iteration
        result.profile = profile
        result.profile_stats = profile_stats(profile)
        with telemetry.span("optimizing-build", "stage"):
            final = build(source, variant, profile=profile,
                          opt_config=config.opt, lower_config=config.lower)

    # ---- 4-5: optimizing build and evaluation -----------------------------
    result.final = final
    with telemetry.span("evaluate", "stage"):
        result.eval = measure_run(final, eval_args, config.max_instructions)
    return result


def compare_variants(source: Module, train_args: Sequence[int],
                     eval_args: Sequence[int],
                     variants: Optional[List[PGOVariant]] = None,
                     config: Optional[PGODriverConfig] = None,
                     jobs: int = 1) -> Dict[PGOVariant, PGORunResult]:
    """Run several variants on identical inputs; keyed results.

    With ``jobs > 1`` the variants run in a :class:`ProcessPoolExecutor`.
    Each variant's cycle is fully deterministic and shares no mutable state
    with the others (every cycle builds from a fresh clone of ``source`` and
    seeds its own PMU), so the result dict — still in ``variants`` order —
    is byte-identical to a serial run.  Telemetry recorded inside worker
    processes is not merged back into the parent session.
    """
    if variants is None:
        variants = [PGOVariant.NONE, PGOVariant.AUTOFDO,
                    PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL,
                    PGOVariant.INSTR]
    if jobs <= 1 or len(variants) <= 1:
        return {variant: run_pgo(source, variant, train_args, eval_args,
                                 config)
                for variant in variants}
    telemetry.count("pgo", "parallel_compare_jobs", min(jobs, len(variants)))
    with ProcessPoolExecutor(max_workers=min(jobs, len(variants))) as pool:
        futures = [pool.submit(run_pgo, source, variant, train_args,
                               eval_args, config)
                   for variant in variants]
        return {variant: future.result()
                for variant, future in zip(variants, futures)}


def speedup_over(baseline: PGORunResult, other: PGORunResult) -> float:
    """Relative performance of ``other`` vs ``baseline`` (positive = faster),
    the paper's "% improvement" metric."""
    return baseline.eval.cycles / other.eval.cycles - 1.0
