"""Build pipeline: source IR -> optimized, linked binary, per PGO variant.

One entry point, :func:`build`, runs the whole compiler:

1. clone the pristine source module (the "frontend output");
2. insert correlation anchors (pseudo-probes or counters) when the variant
   asks for them;
3. apply the profile via the variant's sample loader (when one is supplied);
4. run the shared optimization pipeline;
5. lower, link, and measure section sizes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import copy

from ..annotate.sample_loader import (AnnotationStats, annotate_autofdo,
                                      annotate_fs_autofdo_early,
                                      annotate_fs_autofdo_late,
                                      annotate_instr, annotate_probe_flat,
                                      csspgo_sample_loader)
from ..codegen.binary import Binary, link
from ..codegen.dwarf import DwarfInfo, build_dwarf
from ..codegen.lower import LowerConfig, lower_module
from ..codegen.probe_metadata import ProbeMetadata, build_probe_metadata
from ..codegen.sizes import BinarySizes, measure_sizes
from ..ir.function import Module
from ..opt.pass_manager import OptConfig
from ..opt.pipeline import optimize_module
from ..probes.insertion import insert_pseudo_probes
from ..probes.instrumentation import InstrumentationMap, instrument_module
from ..profile.profiles import ContextProfile, FlatProfile
from .variants import PGOVariant, opt_config_for

Profile = Union[FlatProfile, ContextProfile]


class BuildArtifacts:
    """Everything the experiments need from one compilation."""

    def __init__(self, variant: PGOVariant, module: Module, binary: Binary,
                 sizes: BinarySizes, probe_meta: Optional[ProbeMetadata],
                 dwarf: DwarfInfo, imap: Optional[InstrumentationMap],
                 annotation: Optional[AnnotationStats]):
        self.variant = variant
        self.module = module          # post-optimization IR
        self.binary = binary
        self.sizes = sizes
        self.probe_meta = probe_meta
        self.dwarf = dwarf
        self.imap = imap              # instrumented builds only
        self.annotation = annotation  # PGO-applied builds only

    def __repr__(self) -> str:
        return (f"<BuildArtifacts {self.variant.value} text={self.sizes.text} "
                f"instrs={len(self.binary.instrs)}>")


def build(source: Module, variant: PGOVariant,
          profile: Optional[Profile] = None,
          imap_from_profiling: Optional[InstrumentationMap] = None,
          opt_config: Optional[OptConfig] = None,
          lower_config: Optional[LowerConfig] = None,
          instrument: bool = False,
          strict_profile: bool = False,
          static_fill_cold: bool = False,
          verify_each: bool = False) -> BuildArtifacts:
    """Compile ``source`` under ``variant``.

    ``profile`` — apply this profile (the optimizing build of the PGO cycle);
    ``instrument`` — insert real counters (the Instr-PGO *profiling* build);
    ``imap_from_profiling`` — counter map needed to interpret an
    instrumentation profile (its dict of counters is passed as ``profile``);
    ``strict_profile`` — raise :class:`~repro.profile.errors.ProfileStaleError`
    on the first checksum-rejected function instead of the default per-function
    drop-and-continue;
    ``static_fill_cold`` — fill never-sampled functions with static
    pseudo-counts after inference (``analysis.static_profile``) instead of
    leaving them count-less;
    ``verify_each`` — run the IR verifier after every optimization pass.
    """
    module = source.clone()
    config = opt_config_for(variant, opt_config)
    imap: Optional[InstrumentationMap] = None
    annotation: Optional[AnnotationStats] = None

    if variant.uses_probes:
        insert_pseudo_probes(module)
    if instrument:
        if variant is not PGOVariant.INSTR:
            raise ValueError("only the INSTR variant builds instrumented binaries")
        imap = instrument_module(module)

    profile_annotated = False
    if profile is not None:
        if variant is PGOVariant.AUTOFDO:
            annotation = annotate_autofdo(module, profile,
                                          static_fill=static_fill_cold)
        elif variant is PGOVariant.FS_AUTOFDO:
            annotation = annotate_fs_autofdo_early(
                module, profile, static_fill=static_fill_cold)
        elif variant is PGOVariant.CSSPGO_PROBE_ONLY:
            annotation = annotate_probe_flat(module, profile,
                                             strict=strict_profile,
                                             static_fill=static_fill_cold)
        elif variant is PGOVariant.CSSPGO_FULL:
            annotation = csspgo_sample_loader(module, profile, config,
                                              strict=strict_profile,
                                              static_fill=static_fill_cold)
            # The CS sample loader already inlined the pre-inliner's picks;
            # the pipeline inliner may still inline hot leftovers it can see,
            # but with a tightened callee-size bar (selectivity is the
            # pre-inliner's job — Fig. 7's size savings come from here).
            config.inline_hot_threshold = min(config.inline_hot_threshold, 80)
        elif variant is PGOVariant.INSTR:
            if imap_from_profiling is None:
                raise ValueError("INSTR optimizing build needs the profiling "
                                 "build's InstrumentationMap")
            annotation = annotate_instr(module, profile, imap_from_profiling)
        else:
            raise ValueError(f"variant {variant} cannot consume a profile")
        profile_annotated = True

    if variant.uses_fs_discriminators:
        # FS-AutoFDO: optimize without layout, assign flow-sensitive
        # discriminators on the optimized CFG, re-annotate late with full
        # (line, discriminator) keys, then run the late (layout/splitting)
        # optimizations on the re-annotated counts.
        from ..opt.fs_discriminators import assign_fs_discriminators
        from ..opt.layout import block_layout
        fs_config = copy.copy(config)
        fs_config.enable_layout = False
        optimize_module(module, fs_config, profile_annotated=profile_annotated,
                        verify_each=verify_each)
        assign_fs_discriminators(module)
        if profile is not None:
            annotate_fs_autofdo_late(module, profile)
        if config.enable_layout:
            block_layout(module, config)
    else:
        optimize_module(module, config, profile_annotated=profile_annotated,
                        verify_each=verify_each)

    lowered = lower_module(module, lower_config)
    binary = link(module, lowered)
    probe_meta = build_probe_metadata(binary, module) if variant.uses_probes else None
    dwarf = build_dwarf(binary)
    sizes = measure_sizes(binary, dwarf,
                          probe_meta if probe_meta is not None else None)
    return BuildArtifacts(variant, module, binary, sizes, probe_meta, dwarf,
                          imap, annotation)
