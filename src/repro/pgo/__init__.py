"""End-to-end PGO pipelines (build -> profile -> rebuild -> evaluate)."""

from .build import BuildArtifacts, build
from .driver import (PGODriverConfig, PGORunResult, RunMeasurement,
                     compare_variants, measure_run, run_pgo, speedup_over)
from .variants import PGOVariant, opt_config_for

__all__ = [
    "BuildArtifacts", "PGODriverConfig", "PGORunResult", "PGOVariant",
    "RunMeasurement", "build", "compare_variants", "measure_run",
    "opt_config_for", "run_pgo", "speedup_over",
]
