"""CSSPGO reproduction: context-sensitive sampling-based PGO with
pseudo-instrumentation (He, Yu, Wang, Oh — CGO 2024).

Top-level convenience exports; see DESIGN.md for the architecture and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import build_workload, WorkloadSpec, PGOVariant, run_pgo
    module = build_workload(WorkloadSpec("demo", seed=1))
    result = run_pgo(module, PGOVariant.CSSPGO_FULL,
                     train_args=[300], eval_args=[300])
    print(result.eval.cycles)
"""

from . import telemetry
from . import obs
from .pgo import (BuildArtifacts, PGODriverConfig, PGORunResult, PGOVariant,
                  build, compare_variants, measure_run, run_pgo,
                  speedup_over)
from .workloads.generator import WorkloadSpec, build_workload

__version__ = "1.0.0"

__all__ = [
    "BuildArtifacts", "PGODriverConfig", "PGORunResult", "PGOVariant",
    "WorkloadSpec", "build", "build_workload", "compare_variants",
    "measure_run", "obs", "run_pgo", "speedup_over", "telemetry",
    "__version__",
]
