"""Cycle-level performance model (see DESIGN.md sec. 1 for the substitution
rationale: the paper measures production RPS/CPU; we measure modeled cycles)."""

from .cost_model import (BASE_COSTS, ICACHE_MISS_PENALTY, MISPREDICT_PENALTY,
                         TAKEN_BRANCH_PENALTY, BranchPredictor, CostModel,
                         ICache)

__all__ = [
    "BASE_COSTS", "BranchPredictor", "CostModel", "ICache",
    "ICACHE_MISS_PENALTY", "MISPREDICT_PENALTY", "TAKEN_BRANCH_PENALTY",
]
