"""Cycle cost model: turns an executed instruction stream into cycles.

The paper's performance numbers are relative cycle counts on real CPUs; this
model reproduces the *mechanisms* each optimization trades on:

* per-kind base costs — spill traffic and counter increments are expensive,
  which is where bad spill placement and instrumentation overhead come from;
* a 2-bit branch predictor — if-conversion pays off on poorly-biased branches;
* taken-branch redirect penalty — Ext-TSP layout and unrolling convert taken
  branches into fall-throughs;
* a direct-mapped instruction cache — function ordering and hot/cold
  splitting shrink the hot working set;
* call/return overhead — what inlining removes.

Absolute cycle numbers are synthetic; every experiment reports *ratios*
between PGO variants built from identical source, so only relative behaviour
matters (see DESIGN.md sec. 1).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..codegen.mir import MInstr

#: Base execution cost in cycles per instruction kind.
BASE_COSTS: Dict[str, float] = {
    "mov": 0.25,
    "binop": 0.3,
    "cmp": 0.3,
    "select": 0.5,
    "load": 1.0,
    "store": 1.0,
    "spill_ld": 1.0,
    "spill_st": 1.0,
    "call": 2.5,
    "tailcall": 1.5,
    "jmp": 0.3,
    "br": 0.5,
    "ret": 2.0,
    "count": 2.4,   # inc of a memory counter (cache-line contention amortized)
    "nop": 0.1,
}

TAKEN_BRANCH_PENALTY = 1.0
MISPREDICT_PENALTY = 14.0
ICACHE_MISS_PENALTY = 24.0
ICACHE_LINE_BITS = 6          # 64-byte lines
ICACHE_NUM_SETS = 256         # 16 KiB direct-mapped (small, so layout matters)


class BranchPredictor:
    """Per-address 2-bit saturating counter predictor."""

    def __init__(self) -> None:
        self._table: Dict[int, int] = {}
        self.mispredicts = 0
        self.predictions = 0

    def predict_and_update(self, addr: int, taken: bool) -> bool:
        """Returns True when the prediction was correct."""
        state = self._table.get(addr, 1)  # weakly not-taken
        predicted_taken = state >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredicts += 1
        if taken:
            state = min(3, state + 1)
        else:
            state = max(0, state - 1)
        self._table[addr] = state
        return correct


class ICache:
    """Direct-mapped instruction cache at line granularity."""

    def __init__(self, num_sets: int = ICACHE_NUM_SETS,
                 line_bits: int = ICACHE_LINE_BITS):
        self.num_sets = num_sets
        self.line_bits = line_bits
        self._tags: Dict[int, int] = {}
        self.misses = 0
        self.accesses = 0

    def access(self, addr: int) -> bool:
        """Returns True on hit; only called on line changes."""
        line = addr >> self.line_bits
        index = line % self.num_sets
        self.accesses += 1
        if self._tags.get(index) == line:
            return True
        self._tags[index] = line
        self.misses += 1
        return False


class CostModel:
    """Accumulates cycles over an execution; attach to the executor."""

    def __init__(self) -> None:
        self.cycles = 0.0
        self.base_cycles = 0.0
        self.branch_cycles = 0.0
        self.icache_cycles = 0.0
        self.predictor = BranchPredictor()
        self.icache = ICache()
        self._last_line = -1
        self.instructions = 0

    # Called for every conditional branch with its outcome.
    def on_branch(self, addr: int, taken: bool) -> None:
        correct = self.predictor.predict_and_update(addr, taken)
        if not correct:
            self.branch_cycles += MISPREDICT_PENALTY
            self.cycles += MISPREDICT_PENALTY

    # Called for every retired instruction.
    def on_retire(self, instr: MInstr, taken_target: Optional[int]) -> None:
        self.retire(BASE_COSTS[instr.kind], instr.addr, taken_target)

    # Hot-path variant used by the pre-decoded executor: the per-kind base
    # cost and the address are resolved at decode time, so retiring needs no
    # MInstr attribute traffic.  Must stay arithmetically identical to the
    # legacy path — differential tests compare cycle totals exactly.
    def retire(self, cost: float, addr: int,
               taken_target: Optional[int]) -> None:
        self.instructions += 1
        self.base_cycles += cost
        self.cycles += cost
        if taken_target is not None:
            self.branch_cycles += TAKEN_BRANCH_PENALTY
            self.cycles += TAKEN_BRANCH_PENALTY
        # Instruction fetch: check the cache whenever the fetch line changes.
        line = addr >> self.icache.line_bits
        if line != self._last_line:
            self._last_line = line
            if not self.icache.access(addr):
                self.icache_cycles += ICACHE_MISS_PENALTY
                self.cycles += ICACHE_MISS_PENALTY
        if taken_target is not None:
            target_line = taken_target >> self.icache.line_bits
            if target_line != self._last_line:
                self._last_line = target_line
                if not self.icache.access(taken_target):
                    self.icache_cycles += ICACHE_MISS_PENALTY
                    self.cycles += ICACHE_MISS_PENALTY

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "base_cycles": self.base_cycles,
            "branch_cycles": self.branch_cycles,
            "icache_cycles": self.icache_cycles,
            "mispredicts": float(self.predictor.mispredicts),
            "icache_misses": float(self.icache.misses),
            "instructions": float(self.instructions),
        }
