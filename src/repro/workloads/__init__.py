"""Synthetic workloads: generator, named server/client configs, Fig. 4."""

from .clang import (CLANG_SPEC, EVAL_REQUESTS, TRAIN_REQUESTS,
                    build_clang_workload)
from .generator import WorkloadSpec, build_workload, large_module_spec
from .server import (SERVER_WORKLOADS, SERVER_WORKLOAD_NAMES,
                     build_server_workload)
from .vectorops import OP_ADD, OP_SUB, build_vectorops

__all__ = [
    "CLANG_SPEC", "EVAL_REQUESTS", "OP_ADD", "OP_SUB", "SERVER_WORKLOADS",
    "SERVER_WORKLOAD_NAMES", "TRAIN_REQUESTS", "WorkloadSpec",
    "build_clang_workload", "build_server_workload", "build_vectorops",
    "build_workload", "large_module_spec",
]
