"""The client workload (paper sec. IV.D): a Clang-bootstrap-like program.

What distinguishes a client workload from the servers, per the paper, is
*sampling coverage*: servers run a long steady state so samples cover all hot
paths, while a short-running client leaves much executed code unsampled,
widening the gap between sampling-based and instrumentation-based PGO.

We reproduce that by shape (a wide, compiler-like call graph with many
moderately-warm functions rather than a few hot ones) and by a deliberately
short training run (``TRAIN_REQUESTS`` much smaller than the servers').
"""

from __future__ import annotations

from .generator import WorkloadSpec, build_workload

CLANG_SPEC = WorkloadSpec(
    "clang", seed=606,
    n_leaf=22, n_dispatch=4, n_mid=12, n_wrapper=3, n_workers=4,
    n_services=6,  # many "phases" of similar weight, like a compiler
    regions_per_function=(2, 5),
    requests=60,
    hot_service_share=0.35,        # flat phase distribution
    biased_branch_prob=0.7,
    worker_call_prob=0.5)

#: Short training run: the client-coverage handicap.
TRAIN_REQUESTS = 40
#: Full evaluation run.
EVAL_REQUESTS = 240


def build_clang_workload():
    return build_workload(CLANG_SPEC)
