"""The five server workloads of the paper's evaluation (sec. IV.A).

The real services are Meta-internal; these stand-ins are seeded instances of
the synthetic service generator (see DESIGN.md sec. 1 and EXPERIMENTS.md,
"workload instantiation").  All five share the generator's calibrated shape
parameters — request-dispatch main loop, hot/cold service skew, dispatcher
and worker callees whose behaviour is context-dependent — and differ by
seed, the way five services differ as programs.  Seeds were selected so each
stand-in exhibits its real counterpart's qualitative PGO response:

* **AdRanker** — solid CSSPGO gain with both probe and context components;
* **AdRetriever** — moderate gain, clear code-size reduction;
* **AdFinder** — moderate gain;
* **HHVM** — the Table I subject; Instr PGO is competitive here and CSSPGO
  bridges most of the AutoFDO->Instr gap (paper: >60%);
* **HaaS** — the largest CSSPGO gain of the fleet (paper: ~5%), driven by
  context-sensitivity.
"""

from __future__ import annotations

from typing import Dict, List

from .generator import WorkloadSpec, build_workload


def _service_spec(name: str, seed: int) -> WorkloadSpec:
    return WorkloadSpec(name, seed=seed, n_workers=4, worker_call_prob=0.8,
                        requests=300)


SERVER_WORKLOADS: Dict[str, WorkloadSpec] = {
    "adranker": _service_spec("adranker", seed=1),
    "adretriever": _service_spec("adretriever", seed=19),
    "adfinder": _service_spec("adfinder", seed=21),
    "hhvm": _service_spec("hhvm", seed=29),
    "haas": _service_spec("haas", seed=3),
}

#: Evaluation order used by Fig. 6/7 benches.
SERVER_WORKLOAD_NAMES: List[str] = list(SERVER_WORKLOADS)


def build_server_workload(name: str):
    """Build a named server workload module."""
    return build_workload(SERVER_WORKLOADS[name])
