"""Seeded synthetic program generator.

Produces executable IR modules whose *profiles* stress the mechanisms the
paper's experiments depend on:

* hot/cold skew — services called at very different rates, biased branches;
* context-sensitive callees — "dispatcher" functions whose control flow
  depends on an argument that differs per call site (the paper's
  ``scalarOp``/``scalarAdd``/``scalarSub`` pattern from Fig. 4);
* loops (while-style and unrollable do-while self-loops), diamonds for
  if-conversion, duplicate code for tail merge, invariant computation for
  LICM;
* tail-call wrappers that exercise the missing-frame inferrer.

Programs are correct by construction: a pool of variables is initialized at
function entry, regions assign only into that pool, and all control flow is
structured (reducible).  Every generated program is deterministic in its
inputs, so instrumented and sampled builds observe identical behaviour.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.debug_info import DebugLoc
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Call, Cmp, CondBr, Load,
                               Ret, Store)


class WorkloadSpec:
    """Shape parameters of a generated workload (see per-workload configs in
    :mod:`repro.workloads.server`)."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        n_leaf: int = 10,
        n_dispatch: int = 3,
        n_mid: int = 6,
        n_wrapper: int = 2,
        n_workers: int = 3,
        n_services: int = 3,
        regions_per_function: Tuple[int, int] = (2, 5),
        straightline_len: Tuple[int, int] = (2, 6),
        loop_trip_mod: Tuple[int, int] = (4, 16),
        requests: int = 300,
        hot_service_share: float = 0.7,
        biased_branch_prob: float = 0.7,
        worker_call_prob: float = 0.5,
        n_global_arrays: int = 4,
        global_array_size: int = 64,
        loop_depth: int = 1,
    ):
        self.name = name
        self.seed = seed
        self.n_leaf = n_leaf
        self.n_dispatch = n_dispatch
        self.n_mid = n_mid
        self.n_wrapper = n_wrapper
        #: "Worker" callees whose loop trip counts and branch biases depend
        #: on a caller-passed constant — the strongest context-sensitivity
        #: pattern (what Fig. 3/4's scalarOp motivates, generalized).
        self.n_workers = n_workers
        self.n_services = n_services
        self.regions_per_function = regions_per_function
        self.straightline_len = straightline_len
        self.loop_trip_mod = loop_trip_mod
        self.requests = requests
        self.hot_service_share = hot_service_share
        self.biased_branch_prob = biased_branch_prob
        self.worker_call_prob = worker_call_prob
        self.n_global_arrays = n_global_arrays
        self.global_array_size = global_array_size
        #: With ``loop_depth > 1``, loop regions become while-loop *nests*
        #: this deep (tiny trip counts, so execution stays bounded) — the
        #: deep-CFG shape that stresses profile inference at scale.  The
        #: default leaves every existing workload's rng stream untouched.
        self.loop_depth = loop_depth


_BIN_CHOICES = ["add", "sub", "mul", "xor", "and", "or"]


def _trip_mask(rng: random.Random, spec: WorkloadSpec) -> int:
    """Power-of-two-minus-one mask spanning the configured trip range."""
    low, high = spec.loop_trip_mod
    candidates = [m for m in (3, 7, 15, 31, 63) if low - 1 <= m <= high * 2]
    return rng.choice(candidates or [7])


class _Emitter:
    """Builds one function: tracks the current block, lines, and variables."""

    def __init__(self, fn: Function, rng: random.Random, module: Module):
        self.fn = fn
        self.rng = rng
        self.module = module
        self.line = 1
        self.var_pool: List[str] = []
        self.block_counter = 0
        self.current: Optional[BasicBlock] = None

    def new_block(self, hint: str = "b") -> BasicBlock:
        label = f"{hint}{self.block_counter}"
        self.block_counter += 1
        return self.fn.add_block(BasicBlock(label))

    def emit(self, instr) -> None:
        if instr.dloc is None:
            instr.dloc = DebugLoc(self.line)
            self.line += 1
        self.current.instrs.append(instr)

    def any_var(self) -> str:
        return self.rng.choice(self.var_pool)

    def operand(self):
        if self.rng.random() < 0.3:
            return self.rng.randint(0, 63)
        return self.any_var()


def _emit_straightline(em: _Emitter, length: int) -> None:
    for _ in range(length):
        choice = em.rng.random()
        if choice < 0.70:
            em.emit(BinOp(em.rng.choice(_BIN_CHOICES), em.any_var(),
                          em.operand(), em.operand()))
        elif choice < 0.85 and em.module.global_arrays:
            array = em.rng.choice(sorted(em.module.global_arrays))
            em.emit(Load(em.any_var(), array, em.operand()))
        elif em.module.global_arrays:
            array = em.rng.choice(sorted(em.module.global_arrays))
            em.emit(Store(array, em.operand(), em.any_var()))
        else:
            em.emit(Assign(em.any_var(), em.operand()))


def _emit_diamond(em: _Emitter, spec: WorkloadSpec,
                  callables: Sequence[str]) -> None:
    """if/else on data with a controlled bias; sides are small computations
    (if-convert fodder) or occasionally calls (inline fodder)."""
    rng = em.rng
    cond = em.fn.fresh_reg("c")
    biased = rng.random() < spec.biased_branch_prob
    threshold = rng.choice([5, 90]) if biased else rng.randint(30, 70)
    scaled = em.fn.fresh_reg("m")
    em.emit(BinOp("srem", scaled, em.any_var(), 100))
    em.emit(Cmp("slt", cond, scaled, threshold))
    head = em.current
    then_block = em.new_block("then")
    else_block = em.new_block("else")
    join = em.new_block("join")
    em.emit(CondBr(cond, then_block.label, else_block.label))
    for side in (then_block, else_block):
        em.current = side
        if callables and rng.random() < 0.25:
            callee = rng.choice(callables)
            em.emit(Call(em.any_var(), callee, [em.any_var(), em.operand()]))
        else:
            _emit_straightline(em, rng.randint(1, 3))
        em.emit(Br(join.label))
    em.current = join


def _emit_while_loop(em: _Emitter, spec: WorkloadSpec,
                     callables: Sequence[str]) -> None:
    """``for (i = 0; i < (var % M) + 1; i++) body`` with optional call."""
    rng = em.rng
    trip = em.fn.fresh_reg("trip")
    ivar = em.fn.fresh_reg("i")
    cond = em.fn.fresh_reg("lc")
    # Mask (always non-negative) rather than srem, so the trip count stays in
    # [0, mask] even for negative inputs.
    mask = _trip_mask(rng, spec)
    em.emit(BinOp("and", trip, em.any_var(), mask))
    em.emit(Assign(ivar, 0))
    header = em.new_block("loop")
    body = em.new_block("body")
    exit_block = em.new_block("endloop")
    em.emit(Br(header.label))
    em.current = header
    em.emit(Cmp("slt", cond, ivar, trip))
    em.emit(CondBr(cond, body.label, exit_block.label))
    em.current = body
    _emit_straightline(em, rng.randint(1, 3))
    if callables and rng.random() < 0.5:
        callee = rng.choice(callables)
        em.emit(Call(em.any_var(), callee, [em.any_var(), ivar]))
    em.emit(BinOp("add", ivar, ivar, 1))
    em.emit(Br(header.label))
    em.current = exit_block


def _emit_dowhile_selfloop(em: _Emitter, spec: WorkloadSpec) -> None:
    """Single-block do-while: the unroller's target shape."""
    rng = em.rng
    trip = em.fn.fresh_reg("dtrip")
    ivar = em.fn.fresh_reg("di")
    cond = em.fn.fresh_reg("dc")
    mask = _trip_mask(rng, spec)
    em.emit(BinOp("and", trip, em.any_var(), mask))
    em.emit(BinOp("add", trip, trip, 1))
    em.emit(Assign(ivar, 0))
    loop = em.new_block("dw")
    exit_block = em.new_block("dwend")
    em.emit(Br(loop.label))
    em.current = loop
    acc = em.any_var()
    em.emit(BinOp(rng.choice(_BIN_CHOICES), acc, acc, ivar))
    em.emit(BinOp("add", ivar, ivar, 1))
    em.emit(Cmp("slt", cond, ivar, trip))
    em.emit(CondBr(cond, loop.label, exit_block.label))
    em.current = exit_block


def _emit_nested_loops(em: _Emitter, spec: WorkloadSpec,
                       callables: Sequence[str], depth: int) -> None:
    """A while-loop nest ``depth`` levels deep with small trip counts.

    Each level masks its trip to [0, 3], so a depth-4 nest executes at
    most a few hundred innermost iterations — deep CFG structure (what
    inference-at-scale benchmarks need) without unbounded runtime.
    """
    rng = em.rng
    trip = em.fn.fresh_reg("ntrip")
    ivar = em.fn.fresh_reg("ni")
    cond = em.fn.fresh_reg("nc")
    em.emit(BinOp("and", trip, em.any_var(), 3))
    em.emit(Assign(ivar, 0))
    header = em.new_block("nest")
    body = em.new_block("nbody")
    exit_block = em.new_block("nend")
    em.emit(Br(header.label))
    em.current = header
    em.emit(Cmp("slt", cond, ivar, trip))
    em.emit(CondBr(cond, body.label, exit_block.label))
    em.current = body
    if depth > 1:
        _emit_nested_loops(em, spec, callables, depth - 1)
    else:
        _emit_straightline(em, rng.randint(1, 3))
    em.emit(BinOp("add", ivar, ivar, 1))
    em.emit(Br(header.label))
    em.current = exit_block


def _emit_region(em: _Emitter, spec: WorkloadSpec,
                 callables: Sequence[str]) -> None:
    roll = em.rng.random()
    if roll < 0.35:
        _emit_straightline(em, em.rng.randint(*spec.straightline_len))
    elif roll < 0.60:
        _emit_diamond(em, spec, callables)
    elif roll < 0.80:
        # loop_depth > 1 swaps the flat while loop for a nest; at the
        # default depth the roll and emitter sequence are unchanged, so
        # existing seeded workloads reproduce byte-for-byte.
        if spec.loop_depth > 1:
            _emit_nested_loops(em, spec, callables, spec.loop_depth)
        else:
            _emit_while_loop(em, spec, callables)
    else:
        _emit_dowhile_selfloop(em, spec)


def _begin_function(module: Module, rng: random.Random, name: str,
                    params: List[str], n_vars: int = 4) -> _Emitter:
    fn = Function(name, params)
    module.add_function(fn)
    em = _Emitter(fn, rng, module)
    em.current = em.new_block("entry")
    # Initialize the variable pool from params and constants so every variable
    # is defined on all paths.
    for i in range(n_vars):
        var = f"%v{i}"
        if i < len(params):
            em.emit(Assign(var, params[i]))
        else:
            em.emit(BinOp("add", var, params[0] if params else 0,
                          rng.randint(1, 97)))
        em.var_pool.append(var)
    return em


def _finish_function(em: _Emitter) -> None:
    result = em.fn.fresh_reg("ret")
    em.emit(BinOp("xor", result, em.any_var(), em.any_var()))
    em.emit(BinOp("add", result, result, em.any_var()))
    em.emit(Ret(result))


def _gen_leaf(module: Module, rng: random.Random, spec: WorkloadSpec,
              name: str) -> None:
    em = _begin_function(module, rng, name, ["%a", "%b"])
    for _ in range(rng.randint(*spec.regions_per_function)):
        _emit_region(em, spec, callables=())
    _finish_function(em)


def _gen_dispatcher(module: Module, rng: random.Random, spec: WorkloadSpec,
                    name: str, targets: List[str]) -> None:
    """The Fig. 4 ``scalarOp`` pattern: which callee runs depends on ``%sel``,
    and different call sites pass different ``%sel`` values — the profile of
    this function is therefore strongly context-dependent."""
    em = _begin_function(module, rng, name, ["%sel", "%x"], n_vars=3)
    a_target, b_target = rng.sample(targets, 2)
    cond = em.fn.fresh_reg("dsp")
    em.emit(Cmp("slt", cond, "%sel", 50))
    then_block = em.new_block("do_a")
    else_block = em.new_block("do_b")
    join = em.new_block("out")
    em.emit(CondBr(cond, then_block.label, else_block.label))
    em.current = then_block
    em.emit(Call("%v0", a_target, ["%x", "%sel"]))
    em.emit(Br(join.label))
    em.current = else_block
    em.emit(Call("%v0", b_target, ["%x", "%sel"]))
    em.emit(Br(join.label))
    em.current = join
    em.emit(Ret("%v0"))


def _gen_worker(module: Module, rng: random.Random, spec: WorkloadSpec,
                name: str) -> None:
    """A callee whose behaviour is controlled by its first argument.

    ``%cfg`` determines both the trip count of the inner loop (``cfg & 31``)
    and the direction of a data branch, so every call site passing a
    constant gets a sharply different profile — merged (context-insensitive)
    profiles mis-drive unrolling, if-conversion, layout and spill placement
    for every inlined copy.
    """
    em = _begin_function(module, rng, name, ["%cfg", "%x"], n_vars=3)
    trip = em.fn.fresh_reg("wt")
    ivar = em.fn.fresh_reg("wi")
    cond = em.fn.fresh_reg("wc")
    em.emit(BinOp("and", trip, "%cfg", 31))
    em.emit(BinOp("add", trip, trip, 1))
    em.emit(Assign(ivar, 0))
    loop = em.new_block("wloop")
    after = em.new_block("wafter")
    em.emit(Br(loop.label))
    em.current = loop
    acc = em.any_var()
    em.emit(BinOp(rng.choice(_BIN_CHOICES), acc, acc, ivar))
    em.emit(BinOp("add", ivar, ivar, 1))
    em.emit(Cmp("slt", cond, ivar, trip))
    em.emit(CondBr(cond, loop.label, after.label))
    em.current = after
    # Branch whose direction is decided by the caller's constant.
    bsel = em.fn.fresh_reg("wb")
    em.emit(Cmp("slt", bsel, "%cfg", 16))
    small = em.new_block("wsmall")
    big = em.new_block("wbig")
    join = em.new_block("wjoin")
    em.emit(CondBr(bsel, small.label, big.label))
    em.current = small
    _emit_straightline(em, 2)
    em.emit(Br(join.label))
    em.current = big
    _emit_straightline(em, 3)
    em.emit(Br(join.label))
    em.current = join
    _finish_function(em)


def _gen_mid(module: Module, rng: random.Random, spec: WorkloadSpec,
             name: str, leaves: List[str], dispatchers: List[str],
             workers: List[str]) -> None:
    em = _begin_function(module, rng, name, ["%x", "%y"])
    for _ in range(rng.randint(*spec.regions_per_function)):
        _emit_region(em, spec, callables=leaves)
    # Context-sensitive dispatcher calls: this call site always selects one
    # side by passing a constant selector.
    for dispatcher in rng.sample(dispatchers, min(2, len(dispatchers))):
        selector = rng.choice([3, 97])  # deterministically below/above 50
        em.emit(Call(em.any_var(), dispatcher, [selector, em.any_var()]))
    # Context-sensitive worker calls: a constant picks the worker's whole
    # behaviour (hot long loop vs short fall-through path).
    if workers and rng.random() < spec.worker_call_prob:
        worker = rng.choice(workers)
        config_value = rng.choice([2, 30])  # short vs long inner loop
        em.emit(Call(em.any_var(), worker, [config_value, em.any_var()]))
    _finish_function(em)


def _gen_wrapper(module: Module, rng: random.Random, spec: WorkloadSpec,
                 name: str, target: str) -> None:
    """Thin wrapper ending in ``return target(...)`` — a tail call after TCE.

    Wrappers are marked noinline (modeling a cross-module boundary the
    inliner will not cross) so their frames genuinely vanish from stack
    samples via tail-call elimination, exercising the frame inferrer.
    """
    em = _begin_function(module, rng, name, ["%x"], n_vars=2)
    em.fn.noinline = True
    _emit_straightline(em, 2)
    result = em.fn.fresh_reg("tc")
    em.emit(Call(result, target, [em.any_var(), "%x"]))
    em.emit(Ret(result))


def _gen_service(module: Module, rng: random.Random, spec: WorkloadSpec,
                 name: str, mids: List[str], wrappers: List[str]) -> None:
    em = _begin_function(module, rng, name, ["%req"])
    for _ in range(rng.randint(*spec.regions_per_function)):
        _emit_region(em, spec, callables=mids + wrappers)
    callees = rng.sample(mids, min(2, len(mids)))
    for callee in callees:
        em.emit(Call(em.any_var(), callee, ["%req", em.operand()]))
    if wrappers and rng.random() < 0.8:
        em.emit(Call(em.any_var(), rng.choice(wrappers), ["%req"]))
    _finish_function(em)


def _gen_main(module: Module, rng: random.Random, spec: WorkloadSpec,
              services: List[str]) -> None:
    """Request loop: the first service takes ``hot_service_share`` of traffic,
    the rest split the remainder — the fleet-like hot/cold skew."""
    em = _begin_function(module, rng, "main", ["%n"], n_vars=3)
    em.emit(Assign("%r", 0))
    em.emit(Assign("%acc", 0))
    header = em.new_block("reqloop")
    body = em.new_block("reqbody")
    done = em.new_block("done")
    em.emit(Br(header.label))
    em.current = header
    cond = "%mc"
    em.emit(Cmp("slt", cond, "%r", "%n"))
    em.emit(CondBr(cond, body.label, done.label))
    em.current = body
    hot_cut = int(spec.hot_service_share * 100)
    em.emit(BinOp("srem", "%pick", "%r", 100))
    current_join = None
    cold_services = services[1:] or services[:1]
    # if pick < hot_cut: hot service; else round-robin over the rest.
    hot_block = em.new_block("hot")
    cold_block = em.new_block("cold")
    join = em.new_block("reqjoin")
    em.emit(Cmp("slt", "%ish", "%pick", hot_cut))
    em.emit(CondBr("%ish", hot_block.label, cold_block.label))
    em.current = hot_block
    em.emit(Call("%res", services[0], ["%r"]))
    em.emit(Br(join.label))
    em.current = cold_block
    prev = cold_block
    em.emit(BinOp("srem", "%which", "%r", len(cold_services)))
    for idx, service in enumerate(cold_services):
        if idx == len(cold_services) - 1:
            em.emit(Call("%res", service, ["%r"]))
            em.emit(Br(join.label))
        else:
            next_block = em.new_block(f"cold{idx + 1}")
            em.emit(Cmp("eq", "%isw", "%which", idx))
            sel_block = em.new_block(f"sel{idx}")
            em.emit(CondBr("%isw", sel_block.label, next_block.label))
            em.current = sel_block
            em.emit(Call("%res", service, ["%r"]))
            em.emit(Br(join.label))
            em.current = next_block
    em.current = join
    em.emit(BinOp("add", "%acc", "%acc", "%res"))
    em.emit(BinOp("add", "%r", "%r", 1))
    em.emit(Br(header.label))
    em.current = done
    em.emit(Ret("%acc"))


def large_module_spec(name: str = "large", seed: int = 0,
                      functions: int = 1000, loop_depth: int = 4,
                      regions_per_function: Tuple[int, int] = (6, 10)
                      ) -> WorkloadSpec:
    """A production-scale module shape: ``functions`` functions (within a
    few — the generator derives main/dispatchers from the role counts),
    each dominated by ``loop_depth``-deep loop nests.

    This is the inference-at-scale benchmark workload (ROADMAP item 4):
    thousands of functions, deep CFGs, tiny request count — the module is
    meant to be *annotated and solved*, not executed at length.
    """
    functions = max(20, functions)
    n_dispatch = max(2, functions // 20)
    n_workers = max(2, functions // 12)
    n_mid = max(2, functions // 6)
    n_wrapper = max(1, functions // 25)
    n_services = max(2, functions // 25)
    n_leaf = max(2, functions - 1 - n_dispatch - n_workers - n_mid
                 - n_wrapper - n_services)
    return WorkloadSpec(
        name, seed=seed, n_leaf=n_leaf, n_dispatch=n_dispatch,
        n_workers=n_workers, n_mid=n_mid, n_wrapper=n_wrapper,
        n_services=n_services, regions_per_function=regions_per_function,
        loop_depth=loop_depth, requests=20)


def build_workload(spec: WorkloadSpec) -> Module:
    """Generate the full module for ``spec`` (deterministic in ``spec.seed``)."""
    rng = random.Random(spec.seed)
    module = Module(spec.name)
    for i in range(spec.n_global_arrays):
        module.global_arrays[f"@g{i}"] = spec.global_array_size
    leaves = [f"leaf_{i}" for i in range(spec.n_leaf)]
    for name in leaves:
        _gen_leaf(module, rng, spec, name)
    dispatchers = [f"dispatch_{i}" for i in range(spec.n_dispatch)]
    for name in dispatchers:
        _gen_dispatcher(module, rng, spec, name, leaves)
    workers = [f"worker_{i}" for i in range(spec.n_workers)]
    for name in workers:
        _gen_worker(module, rng, spec, name)
    mids = [f"mid_{i}" for i in range(spec.n_mid)]
    for name in mids:
        _gen_mid(module, rng, spec, name, leaves, dispatchers, workers)
    wrappers = [f"wrap_{i}" for i in range(spec.n_wrapper)]
    for i, name in enumerate(wrappers):
        _gen_wrapper(module, rng, spec, name, rng.choice(mids))
    services = [f"svc_{i}" for i in range(spec.n_services)]
    for name in services:
        _gen_service(module, rng, spec, name, mids, wrappers)
    _gen_main(module, rng, spec, services)
    return module
