"""The paper's Fig. 4 example program, verbatim in our IR.

``scalarAdd`` is only ever reached through ``addVectorHead -> scalarOp`` and
``scalarSub`` only through ``subVectorHead -> scalarOp``; a context-sensitive
profile sees two different ``scalarOp`` behaviours while a flat profile
conflates them (Fig. 3a vs 3b).  Used by the quickstart example and by tests
that check post-inline profile accuracy.
"""

from __future__ import annotations

from ..ir.builder import ModuleBuilder
from ..ir.function import Module

#: Selector constants: scalarOp(op, a, b) adds when op == 0, subtracts else.
OP_ADD = 0
OP_SUB = 1


def build_vectorops(vector_len: int = 64, iterations: int = 50) -> Module:
    """Build the Fig. 4 program: main alternates vector adds and subs."""
    mb = ModuleBuilder("vectorops")
    mb.global_array("@a", vector_len)
    mb.global_array("@b", vector_len)
    mb.global_array("@out", vector_len)

    f = mb.function("scalarAdd", ["%x", "%y"])
    f.block("entry").add("%r", "%x", "%y").ret("%r")

    f = mb.function("scalarSub", ["%x", "%y"])
    f.block("entry").sub("%r", "%x", "%y").ret("%r")

    f = mb.function("scalarOp", ["%op", "%x", "%y"])
    f.block("entry").cmp("eq", "%isadd", "%op", OP_ADD) \
        .condbr("%isadd", "do_add", "do_sub")
    f.block("do_add").call("%r", "scalarAdd", ["%x", "%y"]).br("out")
    f.block("do_sub").call("%r", "scalarSub", ["%x", "%y"]).br("out")
    f.block("out").ret("%r")

    for name, op in (("addVectorHead", OP_ADD), ("subVectorHead", OP_SUB)):
        f = mb.function(name, ["%n"])
        f.block("entry").mov("%i", 0).mov("%acc", 0).br("loop")
        f.block("loop").cmp("slt", "%c", "%i", "%n").condbr("%c", "body", "done")
        (f.block("body")
            .load("%x", "@a", "%i")
            .load("%y", "@b", "%i")
            .call("%r", "scalarOp", [op, "%x", "%y"])
            .store("@out", "%i", "%r")
            .add("%acc", "%acc", "%r")
            .add("%i", "%i", 1)
            .br("loop"))
        f.block("done").ret("%acc")

    f = mb.function("main", ["%n"])
    f.block("entry").mov("%it", 0).mov("%total", 0).br("outer")
    f.block("outer").cmp("slt", "%c", "%it", "%n").condbr("%c", "work", "exit")
    (f.block("work")
        .call("%s1", "addVectorHead", [vector_len])
        .call("%s2", "subVectorHead", [vector_len])
        .add("%total", "%total", "%s1")
        .add("%total", "%total", "%s2")
        .add("%it", "%it", 1)
        .br("outer"))
    f.block("exit").ret("%total")
    return mb.build()
