"""Flow-consistency profile linter.

Statically audits a loaded profile against the binary's CFG: sampled
counts are noisy but must still respect the structure of the control
flow.  Each rule encodes an invariant that holds for *exact* counts on a
reducible CFG and is checked with a tolerance band
(``count > bound * (1 + rel_tol) + abs_slack``) wide enough that honest
sampling noise never trips it — the fault-injection tests pin both
directions (every count-corrupting injector is flagged, clean profiles
never are).

Rule catalog (ids are stable; they key obs events and test assertions):

``flow-conservation``
    A block's count exceeds the combined count of its predecessors, or a
    non-returning block's count exceeds the combined count of its
    successors.  Exact counts satisfy both with equality.
``unknown-probe``
    The profile carries body counts for probe ids the function never
    defined (fault: ``extra_probes``; stale profiles after CFG changes).
``unreachable-block``
    Nonzero counts on blocks statically unreachable from the entry.
``entry-inversion``
    A block outside all loops outruns the entry block.  At loop depth 0
    a block executes at most once per function entry.  Checked with its
    own, wider band (``inversion_rel_tol``): LBR range attribution
    systematically undersamples entry blocks relative to post-loop
    blocks (a clean profile shows ratios up to ~2.3x), so only gross
    inversions — dropped entry probes, wrapped counters — are flagged.
``loop-monotonicity``
    A block outruns its innermost loop's header.  Blocks at the same
    nesting depth as their header execute at most once per header
    execution (checked only on reducible CFGs, where it is provable).
``counter-overflow``
    A head or body count at or above 2^62 — physically implausible for
    sample tallies, the signature of wraparound corruption (fault:
    ``counter_overflow``).

Probe-keyed profiles only (CSSPGO probe/context modes); context profiles
are flattened first.  DWARF line-keyed profiles cannot be mapped onto
blocks reliably and are skipped per function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from ..ir.cfg import predecessors_map, reachable_blocks
from ..ir.function import Function, Module
from ..ir.instructions import Call, PseudoProbe, Ret
from ..profile.function_samples import FunctionSamples
from ..profile.profiles import ContextProfile, FlatProfile
from .loops import LoopInfo

#: rule id -> one-line description (the catalog; see module docstring).
RULES: Dict[str, str] = {
    "flow-conservation": "block count exceeds predecessor/successor flow",
    "unknown-probe": "body count on a probe id the function never defined",
    "unreachable-block": "nonzero count on a statically unreachable block",
    "entry-inversion": "non-loop block outruns the function entry block",
    "loop-monotonicity": "block outruns its innermost loop header",
    "counter-overflow": "count at or above 2^62 (wraparound corruption)",
}


class LintConfig:
    """Tolerances for the noise-band checks.

    ``rel_tol`` and ``abs_slack`` define the band: a count must exceed
    ``bound * (1 + rel_tol) + abs_slack`` to be flagged.
    ``inversion_rel_tol`` is the (wider) relative band for the
    ``entry-inversion`` rule, whose bound — the entry block's count — is
    systematically undersampled by LBR range attribution.  Defaults are
    calibrated against clean PMU-sampled profiles across workloads,
    seeds and periods (worst observed clean ratios: 2.3x entry, 1.07x
    loop header; see tests/test_lint.py); exact counts would satisfy
    every invariant with ``rel_tol = abs_slack = 0``.
    """

    __slots__ = ("rel_tol", "abs_slack", "inversion_rel_tol",
                 "overflow_threshold")

    def __init__(self, rel_tol: float = 0.5, abs_slack: float = 10.0,
                 inversion_rel_tol: float = 4.0,
                 overflow_threshold: float = float(2 ** 62)):
        self.rel_tol = rel_tol
        self.abs_slack = abs_slack
        self.inversion_rel_tol = inversion_rel_tol
        self.overflow_threshold = overflow_threshold

    def exceeds(self, count: float, bound: float) -> bool:
        return count > bound * (1.0 + self.rel_tol) + self.abs_slack

    def exceeds_inversion(self, count: float, bound: float) -> bool:
        return count > bound * (1.0 + self.inversion_rel_tol) + self.abs_slack


class LintFinding:
    """One rule violation in one function."""

    __slots__ = ("rule", "function", "detail", "count")

    def __init__(self, rule: str, function: str, detail: str,
                 count: int = 1):
        assert rule in RULES
        self.rule = rule
        self.function = function
        self.detail = detail
        self.count = count

    def __repr__(self) -> str:
        return f"<LintFinding {self.rule} {self.function}: {self.detail}>"


class LintReport:
    """All findings from one lint run."""

    __slots__ = ("findings", "functions_checked", "functions_skipped")

    def __init__(self) -> None:
        self.findings: List[LintFinding] = []
        self.functions_checked = 0
        self.functions_skipped = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def rules_fired(self) -> Set[str]:
        return {finding.rule for finding in self.findings}


def lint_profile(profile: Union[FlatProfile, ContextProfile],
                 module: Module,
                 config: Optional[LintConfig] = None) -> LintReport:
    """Lint ``profile`` against ``module``'s CFGs.

    ``module`` must be the probe-instrumented IR the profile's probe ids
    refer to (a fresh clone with ``insert_pseudo_probes`` applied — the
    same IR profiles annotate, see ``annotate.matcher``).  Context
    profiles are flattened; functions absent from the module or not
    probe-keyed are skipped, not flagged.
    """
    config = config or LintConfig()
    flat = profile.flatten() if isinstance(profile, ContextProfile) else profile
    report = LintReport()
    for name, samples in sorted(flat.functions.items()):
        fn = module.functions.get(name)
        if fn is None or not all(isinstance(k, int) for k in samples.body):
            report.functions_skipped += 1
            continue
        report.functions_checked += 1
        _lint_function(fn, samples, config, report)
    return report


def _sample(detail_labels: List[str], limit: int = 3) -> str:
    shown = ", ".join(sorted(detail_labels)[:limit])
    extra = len(detail_labels) - limit
    return shown + (f", +{extra} more" if extra > 0 else "")


def _lint_function(fn: Function, samples: FunctionSamples, config: LintConfig,
                   report: LintReport) -> None:
    block_probe: Dict[int, str] = {}
    call_probes: Set[int] = set()
    for block in fn.blocks:
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe) and not instr.inline_stack:
                block_probe.setdefault(instr.probe_id, block.label)
            elif (isinstance(instr, Call) and instr.probe_id is not None
                  and not instr.inline_probe_stack):
                call_probes.add(instr.probe_id)

    def add(rule: str, detail: str, count: int = 1) -> None:
        report.findings.append(LintFinding(rule, fn.name, detail, count))

    # unknown-probe: ids the function's probe universe never defined.
    known_ids = set(block_probe) | call_probes
    unknown = [pid for pid in samples.body if pid not in known_ids]
    if unknown:
        add("unknown-probe",
            f"probe ids {_sample([str(p) for p in unknown])}", len(unknown))

    # counter-overflow: head or any body count past the threshold.
    overflowed = [pid for pid, value in samples.body.items()
                  if value >= config.overflow_threshold]
    if samples.head >= config.overflow_threshold:
        overflowed.append(-1)  # head counter
    if overflowed:
        add("counter-overflow",
            f"{len(overflowed)} counter(s) >= 2^62", len(overflowed))

    # Map block counts; dangling probes are unknowns, not zeros.
    reachable = reachable_blocks(fn)
    counts: Dict[str, float] = {}
    for pid, label in block_probe.items():
        if pid in samples.dangling:
            continue
        counts[label] = samples.body.get(pid, 0.0)

    # unreachable-block: nonzero counts outside the reachable region.
    dead = [label for label, count in counts.items()
            if label not in reachable and count > 0.0]
    if dead:
        add("unreachable-block", f"blocks {_sample(dead)}", len(dead))

    preds = predecessors_map(fn)
    entry = fn.entry.label

    # flow-conservation: inflow and outflow upper bounds.
    violations: List[str] = []
    for block in fn.blocks:
        label = block.label
        if label not in reachable or label not in counts:
            continue
        if label != entry:
            pred_labels = [p for p in preds[label] if p in reachable]
            if pred_labels and all(p in counts for p in pred_labels):
                inflow = sum(counts[p] for p in pred_labels)
                if config.exceeds(counts[label], inflow):
                    violations.append(label)
                    continue
        succs = [s for s in dict.fromkeys(block.successors())
                 if s in reachable]
        returns = bool(block.instrs) and isinstance(block.instrs[-1], Ret)
        if succs and not returns and all(s in counts for s in succs):
            outflow = sum(counts[s] for s in succs)
            if config.exceeds(counts[label], outflow):
                violations.append(label)
    if violations:
        add("flow-conservation", f"blocks {_sample(violations)}",
            len(violations))

    loop_info = LoopInfo(fn)

    # entry-inversion: depth-0 blocks execute at most once per entry.
    if entry in counts and loop_info.reducible:
        entry_count = counts[entry]
        inverted = [label for label, count in counts.items()
                    if label != entry and label in reachable
                    and loop_info.loop_depth(label) == 0
                    and config.exceeds_inversion(count, entry_count)]
        if inverted:
            add("entry-inversion",
                f"blocks {_sample(inverted)} outrun entry "
                f"({entry_count:.0f})", len(inverted))

    # loop-monotonicity: same-depth blocks never outrun their header.
    if loop_info.reducible:
        monotonicity: List[str] = []
        for loop in loop_info.loops:
            if loop.header not in counts:
                continue
            header_count = counts[loop.header]
            for label in loop.body:
                if (label != loop.header and label in counts
                        and loop_info.innermost_loop(label) is loop
                        and config.exceeds(counts[label], header_count)):
                    monotonicity.append(label)
        if monotonicity:
            add("loop-monotonicity", f"blocks {_sample(monotonicity)}",
                len(monotonicity))
