"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

The iterative set-based ``ir.cfg.dominators`` is fine for the optimizer's
occasional queries, but the analyses in this package (loop nesting, the
linter, frequency propagation) want a *tree*: O(1) depth, ancestor walks,
and deterministic child ordering.  Both trees are built by the same
engine — the post-dominator tree is the dominator tree of the reversed
CFG rooted at a virtual exit node that all returning (or successor-less)
blocks feed into, which handles multi-exit functions uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.cfg import predecessors_map, reverse_post_order, successors_map
from ..ir.function import Function
from ..ir.instructions import Ret

#: Label of the synthetic exit block used to root the post-dominator tree.
VIRTUAL_EXIT = "<virtual-exit>"


def _build_idoms(order: List[str], preds: Dict[str, List[str]],
                 entry: str) -> Dict[str, Optional[str]]:
    """Cooper–Harvey–Kennedy over ``order`` (reverse post-order from entry)."""
    index = {label: i for i, label in enumerate(order)}
    idom: Dict[str, str] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            processed = [p for p in preds.get(label, ()) if p in idom]
            if not processed:
                continue
            new = processed[0]
            for pred in processed[1:]:
                new = intersect(new, pred)
            if idom.get(label) != new:
                idom[label] = new
                changed = True
    result: Dict[str, Optional[str]] = dict(idom)
    result[entry] = None
    return result


class DominatorTree:
    """Immediate-dominator tree over a function's reachable blocks.

    ``idom`` maps each reachable label to its immediate dominator (the
    root maps to None); ``children`` is the inverse, sorted for
    determinism; ``level`` is the root-relative tree depth used for O(1)
    ancestor pruning in :meth:`dominates`.
    """

    __slots__ = ("root", "idom", "children", "level")

    def __init__(self, root: str, idom: Dict[str, Optional[str]]):
        self.root = root
        self.idom = idom
        self.children: Dict[str, List[str]] = {label: [] for label in idom}
        for label, parent in idom.items():
            if parent is not None:
                self.children[parent].append(label)
        for kids in self.children.values():
            kids.sort()
        self.level: Dict[str, int] = {root: 0}
        worklist = list(self.children[root])
        while worklist:
            label = worklist.pop()
            parent = self.idom[label]
            assert parent is not None
            self.level[label] = self.level[parent] + 1
            worklist.extend(self.children[label])

    @classmethod
    def from_function(cls, fn: Function) -> "DominatorTree":
        order = reverse_post_order(fn)
        preds = predecessors_map(fn)
        return cls(fn.entry.label, _build_idoms(order, preds, fn.entry.label))

    def dominates(self, a: str, b: str) -> bool:
        """True when ``a`` dominates ``b`` (every node dominates itself)."""
        if a not in self.level or b not in self.level:
            return False
        while self.level[b] > self.level[a]:
            parent = self.idom[b]
            assert parent is not None
            b = parent
        return a == b

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, label: str) -> int:
        return self.level[label]


class PostDominatorTree(DominatorTree):
    """Dominator tree of the reversed CFG, rooted at :data:`VIRTUAL_EXIT`.

    Blocks that cannot reach any exit (infinite loops) do not appear in
    the tree; ``dominates`` returns False for them, which is the
    conservative answer for every client here.
    """

    @classmethod
    def from_function(cls, fn: Function) -> "PostDominatorTree":
        succs = successors_map(fn)
        # Reverse graph: virtual exit -> every exit block, edges flipped.
        rev_succs: Dict[str, List[str]] = {VIRTUAL_EXIT: []}
        rev_preds: Dict[str, List[str]] = {}
        for label, targets in succs.items():
            rev_succs.setdefault(label, [])
            for target in targets:
                rev_succs.setdefault(target, []).append(label)
                rev_preds.setdefault(label, []).append(target)
        for block in fn.blocks:
            terminator = block.instrs[-1] if block.instrs else None
            if isinstance(terminator, Ret) or not block.successors():
                rev_succs[VIRTUAL_EXIT].append(block.label)
                rev_preds.setdefault(block.label, []).append(VIRTUAL_EXIT)
        order = _rpo_generic(VIRTUAL_EXIT, rev_succs)
        return cls(VIRTUAL_EXIT, _build_idoms(order, rev_preds, VIRTUAL_EXIT))

    def post_dominates(self, a: str, b: str) -> bool:
        return self.dominates(a, b)


def _rpo_generic(entry: str, succs: Dict[str, List[str]]) -> List[str]:
    """Iterative reverse post-order over an explicit successor map."""
    visited = {entry}
    order: List[str] = []
    stack: List[Tuple[str, int]] = [(entry, 0)]
    while stack:
        label, cursor = stack[-1]
        targets = succs.get(label, [])
        if cursor < len(targets):
            stack[-1] = (label, cursor + 1)
            target = targets[cursor]
            if target not in visited:
                visited.add(target)
                stack.append((target, 0))
        else:
            order.append(label)
            stack.pop()
    order.reverse()
    return order
