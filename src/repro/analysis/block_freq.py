"""Static block-frequency propagation (LLVM BlockFrequencyInfo analogue).

Given the per-edge probabilities from :class:`BranchProbabilityInfo`,
computes relative execution frequencies with the entry block fixed at
1.0.  Rather than LLVM's loop-collapsing mass distribution this uses
plain Gauss–Seidel iteration in reverse post-order: each sweep assigns

    freq(b) = [b is entry] + sum over preds p of freq(p) * prob(p -> b)

and repeats until a fixed point.  Loop headers are accelerated with the
cyclic-probability shortcut: inflow is split into external mass and
back-edge mass, and since the back-edge mass is linear in the header's
own frequency (ratio ``r`` = the loop's cyclic probability, observable
from the previous sweep), the header jumps straight to the fixed point
``ext / (1 - r)`` — a single loop is exact after two sweeps and nests
converge in a few more, instead of the ~0.98-per-sweep crawl plain
Gauss–Seidel manages on nested loops.  :data:`MAX_ITERATIONS` bounds
irreducible cycles (whose edges are not natural back edges and get no
acceleration) and :data:`MAX_FREQUENCY` guards the pathological
cyclic-probability-1 case (statically infinite loops).  The result is
deterministic: iteration order is RPO, inputs are pure functions of the
IR.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.cfg import predecessors_map, reverse_post_order
from ..ir.function import Function
from .branch_prob import BranchProbabilityInfo

#: Fixed frequency of the function entry block.
ENTRY_FREQUENCY = 1.0
#: Sweep limit; each sweep shrinks the loop-frequency error by the loop's
#: stay probability, so 200 sweeps leave < 1e-11 at 0.875.
MAX_ITERATIONS = 200
#: Absolute convergence tolerance between sweeps.
TOLERANCE = 1e-9
#: Cap for degenerate CFGs whose loops have no static exit probability.
MAX_FREQUENCY = 1e12


class BlockFrequencyInfo:
    """Relative block frequencies for one function (entry = 1.0)."""

    __slots__ = ("fn", "bpi", "freq")

    def __init__(self, fn: Function,
                 bpi: Optional[BranchProbabilityInfo] = None):
        self.fn = fn
        self.bpi = bpi if bpi is not None else BranchProbabilityInfo(fn)
        self.freq: Dict[str, float] = self._propagate()

    def frequency(self, label: str) -> float:
        """Relative frequency of ``label`` (0.0 for unreachable blocks)."""
        return self.freq.get(label, 0.0)

    def _propagate(self) -> Dict[str, float]:
        order = reverse_post_order(self.fn)
        preds = predecessors_map(self.fn)
        loop_info = self.bpi.loop_info
        reachable = set(order)
        entry = self.fn.entry.label
        freq = {label: 0.0 for label in order}
        freq[entry] = ENTRY_FREQUENCY
        for _ in range(MAX_ITERATIONS):
            delta = 0.0
            for label in order:
                external = ENTRY_FREQUENCY if label == entry else 0.0
                back = 0.0
                for pred in preds[label]:
                    if pred not in reachable:
                        continue
                    mass = freq[pred] * self.bpi.probability(pred, label)
                    if loop_info.is_back_edge(pred, label):
                        back += mass
                    else:
                        external += mass
                if back > 0.0 and freq[label] > 0.0:
                    # The back-edge mass scales linearly with this header's
                    # own frequency; its observed ratio is the loop's cyclic
                    # probability, so solve the fixed point directly.
                    cyclic = back / freq[label]
                    if cyclic < 1.0:
                        inflow = external / (1.0 - cyclic)
                    else:
                        inflow = MAX_FREQUENCY
                else:
                    inflow = external + back
                inflow = min(inflow, MAX_FREQUENCY)
                delta = max(delta, abs(inflow - freq[label]))
                freq[label] = inflow
            if delta < TOLERANCE:
                break
        return freq
