"""Reusable static analyses over the repro IR.

The compile-time half of the profile story: dominator/post-dominator
trees, loop nesting, Ball–Larus-style branch-probability heuristics, and
static block-frequency propagation (the BPI/BFI analogues), plus the two
clients built on them — a static profile estimator for never-sampled
functions (blended into ``inference.flow``) and a flow-consistency
profile linter (``repro lint``).  See DESIGN.md sec. 12.

Everything here is pure and deterministic: analyses are recomputed from
the IR on demand and never cache across mutations.
"""

from .block_freq import BlockFrequencyInfo
from .branch_prob import (PROB_EQ_TAKEN, PROB_LOOP_STAY, PROB_RETURN_TAKEN,
                          BranchProbabilityInfo)
from .domtree import VIRTUAL_EXIT, DominatorTree, PostDominatorTree
from .lint import (RULES, LintConfig, LintFinding, LintReport, lint_profile)
from .loops import LoopInfo
from .static_profile import (COLD_ENTRY_FALLBACK, estimate_entry_counts,
                             fill_static_counts, function_frequencies,
                             synthesize_function_samples, top_down_order)

__all__ = [
    "BlockFrequencyInfo", "BranchProbabilityInfo", "COLD_ENTRY_FALLBACK",
    "DominatorTree", "LintConfig", "LintFinding", "LintReport", "LoopInfo",
    "PROB_EQ_TAKEN", "PROB_LOOP_STAY", "PROB_RETURN_TAKEN",
    "PostDominatorTree", "RULES", "VIRTUAL_EXIT", "estimate_entry_counts",
    "fill_static_counts", "function_frequencies", "lint_profile",
    "synthesize_function_samples", "top_down_order",
]
