"""Loop nesting forest built on top of ``ir.cfg.natural_loops``.

``natural_loops`` finds the loops; this module arranges them into a
nesting forest (LLVM LoopInfo analogue): per-block loop depth, the
innermost loop containing each block, and parent links between loops.
Loops sharing a header are already merged by ``natural_loops``, so for
reducible CFGs two loop bodies are either disjoint or strictly nested.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.cfg import Loop, is_reducible, natural_loops
from ..ir.function import Function


class LoopInfo:
    """Loop nesting forest for one function.

    ``loops`` is sorted innermost-first (ascending body size, then header
    label) so clients can fold over loops from the inside out; ``depth``
    maps every block label to the number of loops containing it (0 =
    outside all loops); ``reducible`` caches the CFG's reducibility so
    clients relying on nesting invariants can gate on it.
    """

    __slots__ = ("loops", "depth", "_innermost", "parent", "reducible")

    def __init__(self, fn: Function):
        self.loops: List[Loop] = sorted(
            natural_loops(fn), key=lambda lp: (len(lp.body), lp.header))
        self.reducible: bool = is_reducible(fn)
        self.depth: Dict[str, int] = {b.label: 0 for b in fn.blocks}
        self._innermost: Dict[str, Loop] = {}
        for loop in reversed(self.loops):  # outermost-first: innermost wins
            for label in loop.body:
                if label in self.depth:
                    self.depth[label] += 1
                self._innermost[label] = loop
        # Parent of loop L = the smallest strictly-containing loop.
        self.parent: Dict[str, Optional[Loop]] = {}
        for i, loop in enumerate(self.loops):
            parent = None
            for outer in self.loops[i + 1:]:
                if loop.header in outer.body and outer.header != loop.header:
                    parent = outer
                    break
            self.parent[loop.header] = parent

    def loop_depth(self, label: str) -> int:
        return self.depth.get(label, 0)

    def innermost_loop(self, label: str) -> Optional[Loop]:
        return self._innermost.get(label)

    def is_loop_header(self, label: str) -> bool:
        return any(loop.header == label for loop in self.loops)

    def is_back_edge(self, src: str, dst: str) -> bool:
        """True when ``src -> dst`` is a latch edge of some natural loop."""
        return any(loop.header == dst and src in loop.latches
                   for loop in self.loops)
