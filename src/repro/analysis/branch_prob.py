"""Static branch-probability heuristics (Ball–Larus / LLVM BPI analogue).

Per-edge probabilities for every CFG edge, derived purely from the IR.
Heuristics are applied in priority order — first one that discriminates
between a block's successors wins, mirroring LLVM's
``estimateBranchProbability`` chain:

1. *loop heuristic* — edges that stay inside the block's innermost loop
   (including the back edge to its header) take :data:`PROB_LOOP_STAY` of
   the mass; loop-exiting edges share the rest.  Ball–Larus "loop branch
   heuristic (LBH)".
2. *return heuristic* — successors that immediately return are unlikely
   (:data:`PROB_RETURN_TAKEN`).  Ball–Larus "return heuristic (RH)".
3. *opcode heuristic* — when the branch condition is an equality compare
   defined in the same block, ``eq`` is unlikely to hold and ``ne``
   likely (:data:`PROB_EQ_TAKEN`); the integer analogue of Ball–Larus's
   pointer/opcode heuristics (OH/PH).
4. uniform split.

Probabilities are normalized over *unique* successor labels (a CondBr
with both targets equal is a single edge of probability 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.function import BasicBlock, Function
from ..ir.instructions import Cmp, CondBr, Ret
from .loops import LoopInfo

#: Probability mass kept inside a loop at a stay-vs-exit branch (LLVM uses
#: 31/32 for back edges; 0.875 keeps static trip counts modest).
PROB_LOOP_STAY = 0.875
#: Probability of branching *to* a block that immediately returns.
PROB_RETURN_TAKEN = 0.25
#: Probability that an ``eq`` compare guards the taken side.
PROB_EQ_TAKEN = 0.375


def _returns_immediately(fn: Function, label: str) -> bool:
    block = fn.block(label)
    return bool(block.instrs) and isinstance(block.instrs[-1], Ret)


def _defining_cmp(block: BasicBlock, reg: object) -> Optional[Cmp]:
    """The Cmp in ``block`` that defines ``reg``, scanning backwards."""
    if not isinstance(reg, str):
        return None
    for instr in reversed(block.instrs):
        if instr.defined() == reg:
            return instr if isinstance(instr, Cmp) else None
    return None


def _split(likely: List[str], unlikely: List[str],
           likely_mass: float) -> Dict[str, float]:
    probs = {}
    for label in likely:
        probs[label] = likely_mass / len(likely)
    for label in unlikely:
        probs[label] = (1.0 - likely_mass) / len(unlikely)
    return probs


class BranchProbabilityInfo:
    """Static edge probabilities for one function.

    ``edge_prob`` maps ``(src_label, dst_label)`` to a probability in
    (0, 1]; for every block with successors the outgoing probabilities
    sum to 1.
    """

    __slots__ = ("fn", "loop_info", "edge_prob")

    def __init__(self, fn: Function, loop_info: Optional[LoopInfo] = None):
        self.fn = fn
        self.loop_info = loop_info if loop_info is not None else LoopInfo(fn)
        self.edge_prob: Dict[Tuple[str, str], float] = {}
        for block in fn.blocks:
            for succ, prob in self._block_probs(block).items():
                self.edge_prob[(block.label, succ)] = prob

    def probability(self, src: str, dst: str) -> float:
        return self.edge_prob.get((src, dst), 0.0)

    def successor_probs(self, label: str) -> Dict[str, float]:
        block = self.fn.block(label)
        return {succ: self.edge_prob[(label, succ)]
                for succ in dict.fromkeys(block.successors())}

    def _block_probs(self, block: BasicBlock) -> Dict[str, float]:
        succs = list(dict.fromkeys(block.successors()))
        if not succs:
            return {}
        if len(succs) == 1:
            return {succs[0]: 1.0}

        # 1. Loop heuristic: prefer edges staying in the innermost loop.
        loop = self.loop_info.innermost_loop(block.label)
        if loop is not None:
            stay = [s for s in succs if s in loop.body]
            leave = [s for s in succs if s not in loop.body]
            if stay and leave:
                return _split(stay, leave, PROB_LOOP_STAY)
        else:
            # Not in a loop, but a successor may be a loop header: entering
            # a loop is likelier than skipping it.
            enter = [s for s in succs if self.loop_info.is_loop_header(s)]
            skip = [s for s in succs if not self.loop_info.is_loop_header(s)]
            if enter and skip:
                return _split(enter, skip, PROB_LOOP_STAY)

        # 2. Return heuristic: branching to an immediate return is unlikely.
        returning = [s for s in succs if _returns_immediately(self.fn, s)]
        ongoing = [s for s in succs if not _returns_immediately(self.fn, s)]
        if returning and ongoing:
            return _split(ongoing, returning, 1.0 - PROB_RETURN_TAKEN)

        # 3. Opcode heuristic: eq-guarded branches rarely take the true side.
        terminator = block.instrs[-1] if block.instrs else None
        if isinstance(terminator, CondBr):
            cmp = _defining_cmp(block, terminator.cond)
            if cmp is not None and cmp.pred in ("eq", "ne"):
                true_prob = (PROB_EQ_TAKEN if cmp.pred == "eq"
                             else 1.0 - PROB_EQ_TAKEN)
                if terminator.true_target != terminator.false_target:
                    return {terminator.true_target: true_prob,
                            terminator.false_target: 1.0 - true_prob}

        # 4. No heuristic fired: uniform.
        return {s: 1.0 / len(succs) for s in succs}
