"""Static profile estimation for cold and never-sampled functions.

Sampling-based PGO goes blind wherever the sampler never fired: functions
with no samples keep ``block.count = None`` end to end and the optimizer
treats them as fully cold.  Following the static-characterization line of
work (arXiv 2311.12883), this module turns the pure-CFG frequencies from
:class:`BlockFrequencyInfo` into absolute pseudo-counts:

* entry counts are propagated top-down over the call graph — a sampled
  caller contributes its *measured* call-site block count, an estimated
  caller contributes ``entry * static_freq(call block)``, and functions
  with no known callers fall back to :data:`COLD_ENTRY_FALLBACK`;
* block counts are ``entry * relative_frequency``;
* :func:`synthesize_function_samples` renders the same estimate as a
  :class:`FunctionSamples` record (probe-keyed) so it can travel through
  the normal profile pipeline.

The blend contract (enforced by tests): :func:`fill_static_counts` never
touches a function that already carries any sampled/inferred count, so
with full sample coverage the hybrid output is bit-identical to the
sampled-only output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import networkx as nx

from ..ir.function import Function, Module
from ..ir.instructions import Call, PseudoProbe
from ..profile.function_samples import FunctionSamples
from .block_freq import BlockFrequencyInfo

#: Entry pseudo-count for functions with no known or estimated callers.
COLD_ENTRY_FALLBACK = 1.0


def function_frequencies(fn: Function) -> Dict[str, float]:
    """Relative block frequencies (entry = 1.0) for one function."""
    return dict(BlockFrequencyInfo(fn).freq)


def top_down_order(module: Module) -> List[str]:
    """Callers before callees (reverse CGSCC order), cycles broken
    deterministically — the propagation order for entry-count estimates."""
    graph = nx.DiGraph()
    for fn in module.functions.values():
        graph.add_node(fn.name)
        for callee in fn.callees():
            if module.has_function(callee):
                graph.add_edge(fn.name, callee)
    condensation = nx.condensation(graph)
    order: List[str] = []
    for scc_id in nx.topological_sort(condensation):
        order.extend(sorted(condensation.nodes[scc_id]["members"]))
    return order


def _is_annotated(fn: Function) -> bool:
    return any(block.count is not None for block in fn.blocks)


def estimate_entry_counts(module: Module,
                          known: Optional[Dict[str, float]] = None
                          ) -> Dict[str, float]:
    """Absolute entry-count estimates for every function in ``module``.

    ``known`` pins functions whose entry counts are measured (sampled
    head counts / inferred entry counts); everything else is estimated
    from its callers in top-down order.  Contributions along call-graph
    back edges (recursion) are missed — the estimate is a floor, which
    is the right bias for filling cold functions.
    """
    known = known or {}
    incoming: Dict[str, float] = {}
    estimates: Dict[str, float] = {}
    for name in top_down_order(module):
        fn = module.functions[name]
        if name in known:
            entry = float(known[name])
        else:
            entry = incoming.get(name, 0.0)
            if entry <= 0.0:
                entry = COLD_ENTRY_FALLBACK
        estimates[name] = entry
        annotated = _is_annotated(fn)
        freqs: Optional[Dict[str, float]] = None
        for block in fn.blocks:
            callees = [instr.callee for instr in block.instrs
                       if isinstance(instr, Call)
                       and module.has_function(instr.callee)]
            if not callees:
                continue
            if annotated:
                site_count = float(block.count) if block.count else 0.0
            else:
                if freqs is None:
                    freqs = function_frequencies(fn)
                site_count = entry * freqs.get(block.label, 0.0)
            for callee in callees:
                incoming[callee] = incoming.get(callee, 0.0) + site_count
    return estimates


def fill_static_counts(module: Module,
                       known_entries: Optional[Dict[str, float]] = None,
                       skip: Iterable[str] = ()) -> List[str]:
    """Fill static pseudo-counts into every *unannotated* function.

    Functions named in ``skip`` or carrying any existing block count are
    left untouched (the conservative-blend contract).  Returns the names
    that were filled, sorted.
    """
    skip_set = set(skip)
    estimates = estimate_entry_counts(module, known_entries)
    filled: List[str] = []
    for name, fn in module.functions.items():
        if name in skip_set or _is_annotated(fn):
            continue
        entry = estimates.get(name, COLD_ENTRY_FALLBACK)
        freqs = function_frequencies(fn)
        for block in fn.blocks:
            block.count = entry * freqs.get(block.label, 0.0)
        fn.entry_count = entry
        filled.append(name)
    return sorted(filled)


def synthesize_function_samples(fn: Function,
                                entry_count: float = COLD_ENTRY_FALLBACK
                                ) -> FunctionSamples:
    """Render a static estimate as a probe-keyed FunctionSamples record.

    Requires ``fn`` to be probe-instrumented: block probes become body
    counts, call-site probes become body counts plus call-target counts.
    Inlined probes (non-empty inline stacks) are skipped — synthesis
    models the function's own lexical probes only.
    """
    freqs = function_frequencies(fn)
    samples = FunctionSamples(fn.name)
    samples.head = float(entry_count)
    samples.checksum = fn.probe_checksum
    for block in fn.blocks:
        frequency = entry_count * freqs.get(block.label, 0.0)
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe) and not instr.inline_stack:
                samples.add_body(instr.probe_id, frequency)
            elif (isinstance(instr, Call) and instr.probe_id is not None
                  and not instr.inline_probe_stack):
                samples.add_body(instr.probe_id, frequency)
                samples.add_call(instr.probe_id, instr.callee, frequency)
    samples.finalize()
    return samples
