"""Profile inference: making sampled block counts flow-consistent.

The paper (sec. II.A, IV.A) runs Profi [Levin et al. / "Profile inference
revisited"] for *both* AutoFDO and CSSPGO — inference smooths hardware
sampling noise and fills blocks whose counts are unknown (probe-less blocks
created by later passes, dangling probes after if-conversion).

This implementation solves the same problem with a bounded least-squares
flow formulation instead of min-cost flow (the published MCF is one way to
minimize deviation-from-observation subject to flow conservation; bounded
least squares minimizes the L2 analogue and handles unknowns naturally):

* variables — one flow per CFG edge, plus a virtual source->entry edge and
  ret->sink edges, all constrained nonnegative;
* hard-ish rows — flow conservation at every block (large weight);
* soft rows — observed block counts (inflow should match the sample count)
  and the observed head/entry count.

Block counts are then read back as inflow, and the function entry count as
the solved virtual source->entry flow.  Functions with no observations
at all are left untouched — unless ``static_fill`` is requested, in which
case they receive static pseudo-counts from ``analysis.static_profile``
(entry counts propagated from sampled callers, block counts from static
branch-probability frequencies).  The blend is conservative by contract:
functions inference ran on keep their counts bit-for-bit; only functions
the sampler never saw are filled.

Two solver paths share this formulation (DESIGN.md sec. 14):

* the **sparse path** (default when scipy is available) builds the system
  from a cached :class:`~repro.inference.sparse.SystemTemplate` — COO/CSR
  incidence matrices and a structure-keyed ``splu`` factorization reused
  across functions and runs — and defers to the exact oracle solver
  whenever the fast solve cannot guarantee the oracle's answer;
* the **dense path** (``dense=True``) is the original row-by-row
  formulation, kept as the differential oracle the sparse path is pinned
  against.

Every departure from the primary solver is classified and counted
(``inference.solver_fallback.*`` telemetry counters, ``solver_fallback``
obs events) instead of being silently swallowed.  Module-level inference
additionally consults the installed :class:`~repro.inference.incremental.
InferenceSession` (solution memoization across rolling profile
generations) and can fan per-function solves out to the sharded pool
(``inference.sharded``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .. import obs, telemetry
from ..ir.cfg import reachable_blocks
from ..ir.function import Function, Module
from ..ir.instructions import Ret

if TYPE_CHECKING:  # runtime imports stay lazy (sparse needs scipy)
    from .incremental import InferenceSession
    from .skeleton import CFGSkeleton
    from .sparse import SolverCache

#: Relative weight of flow-conservation rows vs observation rows.
CONSERVATION_WEIGHT = 50.0


def _scipy_available() -> bool:
    try:
        from . import sparse  # noqa: F401 (probe the import)
    except ImportError:  # pragma: no cover - scipy present in dev envs
        return False
    return sparse.HAVE_SCIPY


def _record_fallback(fn_name: str, reason: str) -> None:
    """Count one classified departure from the primary solver."""
    telemetry.count("inference", "solver_fallback")
    telemetry.count("inference", f"solver_fallback.{reason}")
    obs.emit("solver_fallback", function=fn_name, reason=reason)


def _lstsq_clip(matrix: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Last-resort solver: unconstrained lstsq clipped at the bounds."""
    solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    return np.clip(solution, 0.0, None)


def _solve_dense(fn_name: str, matrix: np.ndarray,
                 target: np.ndarray) -> np.ndarray:
    try:
        from scipy.optimize import lsq_linear
    except ImportError:
        _record_fallback(fn_name, "scipy_missing")
        return _lstsq_clip(matrix, target)
    try:
        return lsq_linear(matrix, target, bounds=(0.0, np.inf),
                          max_iter=200).x
    except Exception:
        _record_fallback(fn_name, "solver_error")
        return _lstsq_clip(matrix, target)


def _infer_dense(fn: Function, head_count: Optional[float]) -> None:
    """The original dense formulation — the differential oracle."""
    reachable = [b for b in fn.blocks if b.label in reachable_blocks(fn)]
    observed = [b for b in reachable if b.count is not None]
    labels = [b.label for b in reachable]
    index = {label: i for i, label in enumerate(labels)}

    # Edge list: (src_block_index or -1 for SRC, dst_block_index or -2 for
    # SINK)
    edges: List[Tuple[int, int]] = [(-1, index[fn.entry.label])]
    for block in reachable:
        i = index[block.label]
        succs = [s for s in block.successors() if s in index]
        for succ in succs:
            edges.append((i, index[succ]))
        if isinstance(block.instrs[-1], Ret) or not succs:
            edges.append((i, -2))

    num_edges = len(edges)
    rows: List[np.ndarray] = []
    rhs: List[float] = []

    # Flow conservation per block: inflow - outflow = 0.
    for block in reachable:
        i = index[block.label]
        row = np.zeros(num_edges)
        for e, (src, dst) in enumerate(edges):
            if dst == i:
                row[e] += 1.0
            if src == i:
                row[e] -= 1.0
        rows.append(row * CONSERVATION_WEIGHT)
        rhs.append(0.0)

    # Observations: inflow of observed blocks.
    for block in observed:
        i = index[block.label]
        row = np.zeros(num_edges)
        for e, (_src, dst) in enumerate(edges):
            if dst == i:
                row[e] = 1.0
        rows.append(row)
        rhs.append(float(block.count))
    if head_count is not None:
        row = np.zeros(num_edges)
        row[0] = 1.0
        rows.append(row)
        rhs.append(float(head_count))

    matrix = np.vstack(rows)
    target = np.asarray(rhs)
    solution = _solve_dense(fn.name, matrix, target)

    for block in reachable:
        i = index[block.label]
        inflow = sum(solution[e] for e, (_s, d) in enumerate(edges) if d == i)
        block.count = float(max(0.0, inflow))
    _set_entry_count(fn, head_count, float(solution[0]))


def _set_entry_count(fn: Function, head_count: Optional[float],
                     source_flow: float) -> None:
    """Entry count: the observed head if given, else the *solved* virtual
    source->entry flow — consistent with block inflows even when the entry
    block is a loop header (its inflow then includes back edges, which are
    not function entries)."""
    if head_count is not None:
        fn.entry_count = float(head_count)
    else:
        fn.entry_count = max(0.0, source_flow)


def solve_system(fn_name: str, skeleton: "CFGSkeleton",
                 obs_indices: Tuple[int, ...], obs_values: List[float],
                 head_count: Optional[float], cache: "SolverCache"
                 ) -> Tuple[float, np.ndarray, Optional[str]]:
    """Solve one function's system on the sparse path.

    Returns ``(source_flow, per-block inflow, fallback_reason)``; pure in
    its inputs, so it runs identically in-process and in pool workers
    (``inference.sharded``) and its results are memoizable
    (``inference.incremental``).  ``fallback_reason`` is reported by the
    *caller* so workers stay observability-free.
    """
    from .sparse import solve_raw
    return solve_raw(cache, skeleton.digest, skeleton.n_blocks,
                     skeleton.edges, obs_indices, obs_values, head_count)


def _infer_sparse(fn: Function, head_count: Optional[float],
                  cache: "SolverCache") -> None:
    from .skeleton import extract_skeleton, observation_pattern
    skeleton = extract_skeleton(fn)
    obs_indices, obs_values = observation_pattern(fn, skeleton)
    source_flow, inflow, reason = solve_system(
        fn.name, skeleton, obs_indices, obs_values, head_count, cache)
    if reason is not None:
        _record_fallback(fn.name, reason)
    _apply_solution(fn, skeleton.labels, head_count, source_flow, inflow)


def _apply_solution(fn: Function, labels: List[str],
                    head_count: Optional[float], source_flow: float,
                    inflow: np.ndarray) -> None:
    for i, label in enumerate(labels):
        fn.block(label).count = float(inflow[i])
    _set_entry_count(fn, head_count, source_flow)


def infer_function_counts(fn: Function, head_count: Optional[float] = None,
                          *, dense: bool = False,
                          cache: "Optional[SolverCache]" = None) -> bool:
    """Smooth ``fn``'s annotated block counts in place.

    ``head_count`` — observed function entry count (probe/head samples).
    ``dense`` forces the original dense differential-oracle path;
    ``cache`` overrides the process-wide solver cache on the sparse path.
    Returns False when the function carries no observations to infer from.
    """
    live = reachable_blocks(fn)
    has_observation = head_count is not None or any(
        b.count is not None for b in fn.blocks if b.label in live)
    if not has_observation:
        return False
    if dense or not _scipy_available():
        _infer_dense(fn, head_count)
        return True
    from .sparse import default_cache
    _infer_sparse(fn, head_count, cache if cache is not None
                  else default_cache())
    return True


def infer_module_counts(module: Module,
                        head_counts: Optional[Dict[str, float]] = None,
                        static_fill: bool = False, *,
                        dense: bool = False,
                        session: "Optional[InferenceSession]" = None,
                        shards: Optional[int] = None,
                        jobs: Optional[int] = None) -> int:
    """Run inference over every annotated function; returns how many ran.

    With ``static_fill`` the functions inference could *not* run on (no
    observations at all) are filled with static pseudo-counts instead of
    staying count-less; see ``analysis.static_profile``.

    ``session`` (default: the installed
    :class:`~repro.inference.incremental.InferenceSession`, if any)
    supplies the solver cache, memoizes solutions across repeated runs,
    and carries default shard/job settings; ``shards``/``jobs`` override
    the session's.  ``shards > 1`` partitions the solve work
    deterministically (``inference.sharded``); ``jobs > 1`` runs shards in
    a process pool — shard count never changes the solved counts.
    """
    from .incremental import current as current_session
    sess = session if session is not None else current_session()
    use_dense = (dense or (sess is not None and sess.dense)
                 or not _scipy_available())
    if use_dense:
        return _infer_module_dense(module, head_counts, static_fill)

    from .skeleton import extract_skeleton, observation_pattern
    from .sparse import default_cache
    cache = sess.cache if sess is not None else default_cache()
    n_shards = shards if shards is not None else (
        sess.shards if sess is not None else 1)
    n_jobs = jobs if jobs is not None else (
        sess.jobs if sess is not None else 1)

    inferred: List[str] = []
    reused = 0
    fallbacks = 0
    pending: List[Tuple[str, "CFGSkeleton", Tuple[int, ...], List[float],
                        Optional[float]]] = []
    pending_fns: Dict[str, Tuple[Function, List[str]]] = {}
    for name, fn in module.functions.items():
        head = head_counts.get(name) if head_counts else None
        skeleton = extract_skeleton(fn)
        obs_indices, obs_values = observation_pattern(fn, skeleton)
        if not obs_indices and head is None:
            continue
        if sess is not None:
            memo = sess.lookup(name, skeleton.digest, obs_indices,
                               obs_values, head)
            if memo is not None:
                source_flow, inflow = memo
                _apply_solution(fn, skeleton.labels, head, source_flow,
                                inflow)
                inferred.append(name)
                reused += 1
                continue
        pending.append((name, skeleton, obs_indices, obs_values, head))
        pending_fns[name] = (fn, skeleton.labels)

    if pending:
        if n_shards > 1 and len(pending) > 1:
            from .sharded import solve_pending_sharded
            results = solve_pending_sharded(pending, shards=n_shards,
                                            jobs=n_jobs, cache=cache,
                                            pool=(sess.pool if sess is not None
                                                  else None))
        else:
            results = {}
            for name, skeleton, obs_indices, obs_values, head in pending:
                results[name] = solve_system(name, skeleton, obs_indices,
                                             obs_values, head, cache)
        for name, skeleton, obs_indices, obs_values, head in pending:
            source_flow, inflow, reason = results[name]
            if reason is not None:
                fallbacks += 1
                _record_fallback(name, reason)
            fn, labels = pending_fns[name]
            _apply_solution(fn, labels, head, source_flow, inflow)
            inferred.append(name)
            if sess is not None:
                sess.store(name, skeleton.digest, obs_indices, obs_values,
                           head, source_flow, inflow)

    if sess is not None:
        sess.reused += reused
        sess.solved += len(pending)
        telemetry.count("inference", "incremental_reuse", reused)
        telemetry.count("inference", "incremental_solves", len(pending))
    telemetry.count("inference", "functions_inferred", len(inferred))
    obs.emit("inference_run", functions=len(module.functions),
             inferred=len(inferred), solver="sparse", reused=reused,
             solved=len(pending), fallbacks=fallbacks, shards=n_shards,
             jobs=n_jobs)

    if static_fill:
        _fill_static(module, inferred)
    return len(inferred)


def _infer_module_dense(module: Module,
                        head_counts: Optional[Dict[str, float]],
                        static_fill: bool) -> int:
    """Serial dense-oracle module loop (``dense=True`` / no scipy)."""
    inferred: List[str] = []
    for name, fn in module.functions.items():
        head = head_counts.get(name) if head_counts else None
        if infer_function_counts(fn, head, dense=True):
            inferred.append(name)
    telemetry.count("inference", "functions_inferred", len(inferred))
    obs.emit("inference_run", functions=len(module.functions),
             inferred=len(inferred), solver="dense", reused=0,
             solved=len(inferred), fallbacks=0, shards=1, jobs=1)
    if static_fill:
        _fill_static(module, inferred)
    return len(inferred)


def _fill_static(module: Module, inferred: List[str]) -> None:
    from ..analysis.static_profile import fill_static_counts
    known = {name: module.functions[name].entry_count
             for name in inferred
             if module.functions[name].entry_count is not None}
    fill_static_counts(module, known_entries=known, skip=inferred)
