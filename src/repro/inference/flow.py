"""Profile inference: making sampled block counts flow-consistent.

The paper (sec. II.A, IV.A) runs Profi [Levin et al. / "Profile inference
revisited"] for *both* AutoFDO and CSSPGO — inference smooths hardware
sampling noise and fills blocks whose counts are unknown (probe-less blocks
created by later passes, dangling probes after if-conversion).

This implementation solves the same problem with a bounded least-squares
flow formulation instead of min-cost flow (the published MCF is one way to
minimize deviation-from-observation subject to flow conservation; bounded
least squares minimizes the L2 analogue and handles unknowns naturally):

* variables — one flow per CFG edge, plus a virtual source->entry edge and
  ret->sink edges, all constrained nonnegative;
* hard-ish rows — flow conservation at every block (large weight);
* soft rows — observed block counts (inflow should match the sample count)
  and the observed head/entry count.

Block counts are then read back as inflow.  Functions with no observations
at all are left untouched — unless ``static_fill`` is requested, in which
case they receive static pseudo-counts from ``analysis.static_profile``
(entry counts propagated from sampled callers, block counts from static
branch-probability frequencies).  The blend is conservative by contract:
functions inference ran on keep their counts bit-for-bit; only functions
the sampler never saw are filled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.cfg import predecessors_map, reachable_blocks
from ..ir.function import Function, Module
from ..ir.instructions import Ret

#: Relative weight of flow-conservation rows vs observation rows.
CONSERVATION_WEIGHT = 50.0


def infer_function_counts(fn: Function, head_count: Optional[float] = None) -> bool:
    """Smooth ``fn``'s annotated block counts in place.

    ``head_count`` — observed function entry count (probe/head samples).
    Returns False when the function carries no observations to infer from.
    """
    reachable = [b for b in fn.blocks if b.label in reachable_blocks(fn)]
    observed = [b for b in reachable if b.count is not None]
    if not observed and head_count is None:
        return False

    labels = [b.label for b in reachable]
    index = {label: i for i, label in enumerate(labels)}

    # Edge list: (src_block_index or -1 for SRC, dst_block_index or -2 for SINK)
    edges: List[Tuple[int, int]] = [(-1, index[fn.entry.label])]
    for block in reachable:
        i = index[block.label]
        succs = [s for s in block.successors() if s in index]
        for succ in succs:
            edges.append((i, index[succ]))
        if isinstance(block.instrs[-1], Ret) or not succs:
            edges.append((i, -2))

    num_edges = len(edges)
    rows: List[np.ndarray] = []
    rhs: List[float] = []

    # Flow conservation per block: inflow - outflow = 0.
    for block in reachable:
        i = index[block.label]
        row = np.zeros(num_edges)
        for e, (src, dst) in enumerate(edges):
            if dst == i:
                row[e] += 1.0
            if src == i:
                row[e] -= 1.0
        rows.append(row * CONSERVATION_WEIGHT)
        rhs.append(0.0)

    # Observations: inflow of observed blocks.
    for block in observed:
        i = index[block.label]
        row = np.zeros(num_edges)
        for e, (_src, dst) in enumerate(edges):
            if dst == i:
                row[e] = 1.0
        rows.append(row)
        rhs.append(float(block.count))
    if head_count is not None:
        row = np.zeros(num_edges)
        row[0] = 1.0
        rows.append(row)
        rhs.append(float(head_count))

    matrix = np.vstack(rows)
    target = np.asarray(rhs)
    try:
        from scipy.optimize import lsq_linear
        solution = lsq_linear(matrix, target, bounds=(0.0, np.inf),
                              max_iter=200).x
    except Exception:  # pragma: no cover - scipy unavailable/failed
        solution, *_ = np.linalg.lstsq(matrix, target, rcond=None)
        solution = np.clip(solution, 0.0, None)

    for block in reachable:
        i = index[block.label]
        inflow = sum(solution[e] for e, (_s, d) in enumerate(edges) if d == i)
        block.count = float(max(0.0, inflow))
    if head_count is not None:
        fn.entry_count = float(head_count)
    elif fn.entry.count is not None:
        fn.entry_count = fn.entry.count
    return True


def infer_module_counts(module: Module,
                        head_counts: Optional[Dict[str, float]] = None,
                        static_fill: bool = False) -> int:
    """Run inference over every annotated function; returns how many ran.

    With ``static_fill`` the functions inference could *not* run on (no
    observations at all) are filled with static pseudo-counts instead of
    staying count-less; see ``analysis.static_profile``.
    """
    ran = 0
    inferred: List[str] = []
    for name, fn in module.functions.items():
        head = head_counts.get(name) if head_counts else None
        if infer_function_counts(fn, head):
            ran += 1
            inferred.append(name)
    if static_fill:
        from ..analysis.static_profile import fill_static_counts
        known = {name: module.functions[name].entry_count
                 for name in inferred
                 if module.functions[name].entry_count is not None}
        fill_static_counts(module, known_entries=known, skip=inferred)
    return ran
