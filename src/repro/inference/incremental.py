"""Incremental re-solve: solution memoization across rolling generations.

The fleet story (ROADMAP item 1) re-runs profile inference every freshness
window over mostly-unchanged inputs: the same binaries keep serving, most
functions' sampled counts move little or not at all between collections.
A solved system is a pure function of ``(skeleton digest, observation
pattern, observation values)``, so an :class:`InferenceSession` memoizes
``(source_flow, inflow)`` results under exactly that key and short-circuits
the solver entirely on a repeat:

* **exact mode** (``tolerance=0.0``, the default) reuses a solution only
  for bit-identical observation vectors — reuse can never change counts;
* **tolerance mode** (``tolerance > 0``) additionally reuses the previous
  solution when every observation moved by at most the given relative
  tolerance — the rolling-window "nothing interesting changed" fast path,
  trading exactness for skipping the solve entirely.

The session also carries the solver cache (factorizations — see
``inference.sparse``) and the default shard/pool configuration, so
``pgo/driver.py`` wires the whole inference configuration through one
installed object without touching the annotation call chain.  The
module-level :func:`install`/:func:`uninstall`/:func:`current` mirror the
``telemetry``/``obs`` session pattern: nothing installed means no
memoization and zero overhead.

Reuse and solve totals are exposed both as attributes (``session.reused``/
``session.solved``) and as ``inference.incremental_reuse`` /
``inference.incremental_solves`` telemetry counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from .sharded import ShardedInferencePool
    from .sparse import SolverCache

#: Memo key minus the observation values: (function name, digest,
#: obs pattern, has_head).  The name is not needed for soundness (solves
#: are pure in the other three plus the values) but keeps two functions
#: that share a structure from thrashing one slot — repeat runs then reuse
#: every unchanged function, not just one per structure.
_PatternKey = Tuple[str, str, Tuple[int, ...], bool]


def _max_rel_delta(new: np.ndarray, old: np.ndarray) -> float:
    """Largest per-observation relative change (denominator floored at 1)."""
    if new.size == 0:
        return 0.0
    return float(np.max(np.abs(new - old) / np.maximum(np.abs(old), 1.0)))


class InferenceSession:
    """One installed inference configuration + solution memo."""

    def __init__(self, *, cache: "Optional[SolverCache]" = None,
                 tolerance: float = 0.0, shards: int = 1, jobs: int = 1,
                 pool: "Optional[ShardedInferencePool]" = None,
                 memoize: bool = True, dense: bool = False,
                 capacity: int = 65536):
        from .sparse import default_cache
        #: Factorization cache shared by every solve under this session.
        self.cache = cache if cache is not None else default_cache()
        #: Maximum relative observation drift for tolerance-mode reuse.
        self.tolerance = tolerance
        #: Default partition width / pool width for module-level solves.
        self.shards = shards
        self.jobs = jobs
        #: Long-lived worker pool (``inference.sharded``), or None.
        self.pool = pool
        #: ``memoize=False`` keeps the session purely as a configuration
        #: carrier (shards/jobs/dense) with the memo disabled.
        self.memoize = memoize
        #: Route every solve through the dense differential oracle.
        self.dense = dense
        #: Memo entries kept before the memo resets (runaway-churn guard).
        self.capacity = capacity
        self.reused = 0
        self.solved = 0
        self._memo: Dict[_PatternKey,
                         Tuple[np.ndarray, float, np.ndarray]] = {}

    def lookup(self, name: str, digest: str, obs_indices: Tuple[int, ...],
               obs_values: List[float], head_count: Optional[float]
               ) -> Optional[Tuple[float, np.ndarray]]:
        """Return the memoized ``(source_flow, inflow)`` or ``None``.

        A hit requires the same skeleton and observation pattern, plus
        observation values (head included) equal to the stored run's —
        exactly, or within :attr:`tolerance` relative drift.
        """
        if not self.memoize:
            return None
        key = self._key(name, digest, obs_indices, head_count)
        entry = self._memo.get(key)
        if entry is None:
            return None
        stored_values, source_flow, inflow = entry
        values = self._values(obs_values, head_count)
        if values.shape != stored_values.shape:
            return None
        if self.tolerance <= 0.0:
            if not np.array_equal(values, stored_values):
                return None
        elif _max_rel_delta(values, stored_values) > self.tolerance:
            return None
        return source_flow, inflow.copy()

    def store(self, name: str, digest: str, obs_indices: Tuple[int, ...],
              obs_values: List[float], head_count: Optional[float],
              source_flow: float, inflow: np.ndarray) -> None:
        if not self.memoize:
            return
        if len(self._memo) >= self.capacity:
            self._memo.clear()
        key = self._key(name, digest, obs_indices, head_count)
        self._memo[key] = (self._values(obs_values, head_count),
                           source_flow, inflow.copy())

    @staticmethod
    def _key(name: str, digest: str, obs_indices: Tuple[int, ...],
             head_count: Optional[float]) -> _PatternKey:
        return (name, digest, obs_indices, head_count is not None)

    @staticmethod
    def _values(obs_values: List[float],
                head_count: Optional[float]) -> np.ndarray:
        values = list(obs_values)
        if head_count is not None:
            values.append(float(head_count))
        return np.asarray(values)

    def stats(self) -> Dict[str, int]:
        return {"reused": self.reused, "solved": self.solved,
                "memo_size": len(self._memo)}

    def clear(self) -> None:
        self._memo.clear()

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def __repr__(self) -> str:
        return (f"<InferenceSession memo={len(self._memo)} "
                f"reused={self.reused} solved={self.solved} "
                f"tol={self.tolerance} shards={self.shards} "
                f"jobs={self.jobs}>")


#: The installed session, or None (no memoization — the default).
_active: Optional[InferenceSession] = None


def install(session: Optional[InferenceSession] = None) -> InferenceSession:
    """Install ``session`` (or a fresh default one) process-wide."""
    global _active
    _active = session if session is not None else InferenceSession()
    return _active


def uninstall() -> None:
    global _active
    _active = None


def current() -> Optional[InferenceSession]:
    return _active
