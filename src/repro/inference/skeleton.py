"""CFG skeletons: the structure-only view of a function the solver sees.

The flow-inference system (``inference.flow``) is determined by three
independent inputs with very different lifetimes:

1. the **CFG skeleton** — which edges exist (changes only when code
   changes);
2. the **observation pattern** — which blocks carry sampled counts and
   whether a head count is present (changes per profile *shape*);
3. the **observation values** — the sampled counts themselves (change on
   every collection).

Only (3) varies between rolling profile generations, and only (1)+(2)
determine the least-squares matrix.  This module extracts (1) as a
:class:`CFGSkeleton` with a content digest — the cache key that lets
``inference.sparse`` reuse factorizations across functions with identical
shapes (generated workloads produce many) and across repeated runs, the
same way :func:`repro.ir.checksum.cfg_checksum` keys stale-profile
detection on CFG shape alone.

The edge list preserves the exact ordering of the historical dense
formulation (``fn.blocks`` order filtered to reachable blocks, a virtual
``SRC -> entry`` edge first, per-block successor edges, ``block -> SINK``
edges after a ``Ret`` or missing terminator) so sparse and dense paths
solve literally the same system.  The digest hashes block/edge *indices*,
never labels, so renamed-but-identical CFGs share a cache entry.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import Ret

#: Virtual endpoint indices in the edge list (match the dense formulation).
SRC = -1
SINK = -2

#: ``(src_index | SRC, dst_index | SINK)`` — one flow variable per entry.
EdgeList = Tuple[Tuple[int, int], ...]


def skeleton_digest(n_blocks: int, edges: EdgeList) -> str:
    """Content digest of one CFG skeleton (hex, stable across processes).

    Hashes indices only: two functions whose reachable blocks map onto the
    same indexed edge structure get the same digest regardless of labels,
    register names, or instruction payloads.
    """
    hasher = hashlib.md5(b"v1;%d;" % n_blocks)
    hasher.update(b"".join([b"%d,%d;" % edge for edge in edges]))
    return hasher.hexdigest()


class CFGSkeleton:
    """The structural half of one function's inference system."""

    __slots__ = ("labels", "index", "edges", "digest")

    def __init__(self, labels: List[str], edges: EdgeList,
                 digest: Optional[str] = None):
        #: Reachable block labels in solve order (``fn.blocks`` order).
        self.labels = labels
        #: Label -> block index in :attr:`labels`.
        self.index: Dict[str, int] = {lab: i for i, lab in enumerate(labels)}
        #: Flow variables; ``edges[0]`` is always the virtual SRC->entry edge.
        self.edges = edges
        self.digest = digest if digest is not None else skeleton_digest(
            len(labels), edges)

    @property
    def n_blocks(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return (f"<CFGSkeleton {self.n_blocks} blocks {self.n_edges} edges "
                f"{self.digest[:12]}>")


def extract_skeleton(fn: Function) -> CFGSkeleton:
    """Build the skeleton for ``fn``, in the dense formulation's exact order.

    Runs on every inference call (even cache/memo hits), so it traverses the
    CFG exactly once: ``successors()`` re-parses the terminator per call and
    ``cfg.reachable_blocks`` would walk the graph a second time, which
    together dominated the warm-cache profile.
    """
    blocks = fn.blocks
    succ_map = {b.label: b.successors() for b in blocks}
    entry = blocks[0].label
    live = {entry}
    stack = [entry]
    while stack:
        for succ in succ_map[stack.pop()]:
            if succ not in live and succ in succ_map:
                live.add(succ)
                stack.append(succ)
    reachable = blocks if len(live) == len(blocks) else [
        b for b in blocks if b.label in live]
    labels = [b.label for b in reachable]
    index = {label: i for i, label in enumerate(labels)}
    edges: List[Tuple[int, int]] = [(SRC, index[entry])]
    for block in reachable:
        i = index[block.label]
        succs = [s for s in succ_map[block.label] if s in index]
        for succ in succs:
            edges.append((i, index[succ]))
        if isinstance(block.instrs[-1], Ret) or not succs:
            edges.append((i, SINK))
    return CFGSkeleton(labels, tuple(edges))


def observation_pattern(fn: Function, skeleton: CFGSkeleton
                        ) -> Tuple[Tuple[int, ...], List[float]]:
    """Split observations into pattern (indices) and values (counts).

    The index tuple feeds the template cache key; the value list only ever
    touches the right-hand side.
    """
    indices: List[int] = []
    values: List[float] = []
    for i, label in enumerate(skeleton.labels):
        count = fn.block(label).count
        if count is not None:
            indices.append(i)
            values.append(float(count))
    return tuple(indices), values
