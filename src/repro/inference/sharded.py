"""Sharded per-function inference solves (the profgen-pool pattern).

Per-function flow solves are embarrassingly parallel: each function's
system depends only on its own skeleton and observations, and module
counts are written back per function.  Following
``correlate/sharded.py``:

1. the parent partitions pending functions **deterministically** by an
   FNV-1a hash of the function name — stable across processes, platforms
   and ``PYTHONHASHSEED``, and cache-friendly: structurally identical
   functions (generated workloads produce many clones named apart) spread
   over shards, while re-solves of the *same* function always land on the
   same shard, whose warm factorization cache they reuse;
2. ``shards`` fixes the partition independently of ``jobs``, which only
   sets the worker-pool width: ``jobs <= 1`` runs every shard in-process
   against the caller's cache — zero IPC, same code path
   (:func:`~repro.inference.sparse.solve_raw`), identical floats — so
   shard count never changes solved counts;
3. workers receive **compact system encodings** (digest, edge list,
   observation pattern/values), never pickled IR modules, and keep a
   process-global solver cache that stays warm across tasks and across
   calls when a long-lived :class:`ShardedInferencePool` is reused;
4. results merge back in the parent keyed by function name — the caller
   applies them in module order, so pool scheduling never reorders
   anything observable.  Workers stay observability-free: fallback
   reasons travel home in the results and per-shard cache stats are
   re-counted by the parent, mirroring how profgen workers ship their
   telemetry sessions back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from .skeleton import EdgeList
from .sparse import SolverCache, solve_raw

if TYPE_CHECKING:
    from .skeleton import CFGSkeleton

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: One encoded solve: (name, digest, n_blocks, edges, obs_indices,
#: obs_values, head_count) — everything :func:`solve_raw` needs, nothing
#: else crosses the process boundary.
Task = Tuple[str, str, int, EdgeList, Tuple[int, ...], List[float],
             Optional[float]]
#: One solve result: (source_flow, inflow, fallback_reason).
Solution = Tuple[float, np.ndarray, Optional[str]]
#: What flow hands us: (name, skeleton, obs_indices, obs_values, head).
PendingEntry = Tuple[str, "CFGSkeleton", Tuple[int, ...], List[float],
                     Optional[float]]


def name_shard(name: str, shards: int) -> int:
    """Deterministic shard index of one function name (FNV-1a)."""
    h = _FNV_OFFSET
    for byte in name.encode():
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h % shards


def partition_tasks(tasks: List[Task], shards: int) -> List[List[Task]]:
    """Split tasks into ``shards`` deterministic buckets by function name,
    preserving input order within each bucket."""
    if shards <= 1:
        return [list(tasks)]
    buckets: List[List[Task]] = [[] for _ in range(shards)]
    for task in tasks:
        buckets[name_shard(task[0], shards)].append(task)
    return buckets


def _solve_tasks(tasks: List[Task], cache: SolverCache
                 ) -> List[Tuple[str, Solution]]:
    return [(name, solve_raw(cache, digest, n_blocks, edges, obs_indices,
                             obs_values, head))
            for name, digest, n_blocks, edges, obs_indices, obs_values, head
            in tasks]


#: Per-worker solver cache — created on first task, warm for the lifetime
#: of the worker process (i.e. across every call through a reused pool).
_WORKER_CACHE: Optional[SolverCache] = None


def _pool_worker(tasks: List[Task]
                 ) -> Tuple[List[Tuple[str, Solution]], Dict[str, int]]:
    """Solve one shard in a pool worker (module-level, picklable).

    Ships back the shard's cache-stats delta so the parent can re-count
    worker cache activity into its own telemetry.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SolverCache()
    before = _WORKER_CACHE.stats()
    results = _solve_tasks(tasks, _WORKER_CACHE)
    after = _WORKER_CACHE.stats()
    delta = {key: after[key] - before.get(key, 0)
             for key in ("hits", "misses")}
    return results, delta


def _run_pool(pool, buckets: List[List[Task]]) -> Dict[str, Solution]:
    """Run buckets through anything with ``submit`` (pool or executor)."""
    futures = [pool.submit(_pool_worker, bucket)
               for bucket in buckets if bucket]
    merged: Dict[str, Solution] = {}
    try:
        for future in futures:  # shard order
            results, delta = future.result()
            telemetry.count("inference", "solver_cache_hit", delta["hits"])
            telemetry.count("inference", "solver_cache_miss",
                            delta["misses"])
            for name, solution in results:
                merged[name] = solution
    except BaseException:
        # Interrupted mid-merge (KeyboardInterrupt, a failed solve): cancel
        # what has not started so shutdown does not wait on dead work.
        for future in futures:
            future.cancel()
        raise
    return merged


def solve_pending_sharded(pending: List[PendingEntry], *, shards: int,
                          jobs: int, cache: SolverCache,
                          pool: "Optional[ShardedInferencePool]" = None
                          ) -> Dict[str, Solution]:
    """Solve every pending function across deterministic shards.

    Returns function name -> :data:`Solution`.  ``jobs <= 1`` (or a single
    shard) solves in-process against ``cache``; ``jobs > 1`` dispatches to
    ``pool`` (or a transient pool) whose workers keep their own warm
    caches.  Either way the solved floats are identical — the partition is
    a pure function of the names and every solve is pure.
    """
    tasks: List[Task] = [
        (name, skeleton.digest, skeleton.n_blocks, skeleton.edges,
         obs_indices, obs_values, head)
        for name, skeleton, obs_indices, obs_values, head in pending]
    shards = max(1, shards)
    if pool is not None:
        jobs = pool.jobs
    jobs = max(1, min(jobs, shards))
    buckets = partition_tasks(tasks, shards)
    telemetry.count("inference", "sharded_runs")
    telemetry.count("inference", "sharded_shards", shards)
    telemetry.count("inference", "sharded_jobs", jobs)

    if jobs > 1 and pool is not None:
        return _run_pool(pool, buckets)
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as transient:
            return _run_pool(transient, buckets)
    merged: Dict[str, Solution] = {}
    for bucket in buckets:
        for name, solution in _solve_tasks(bucket, cache):
            merged[name] = solution
    return merged


class ShardedInferencePool:
    """A long-lived inference worker pool.

    Unlike :class:`~repro.correlate.sharded.ShardedProfgenPool`, workers
    need no per-binary initializer state — every task is self-contained —
    so one pool serves any module.  What reuse buys is the *worker
    caches*: factorizations warmed by one rolling generation are still
    there for the next.  Use as a context manager, or :meth:`close` when
    done.
    """

    def __init__(self, jobs: int = 2):
        self.jobs = max(2, jobs)
        self.executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.jobs)
        self._outstanding: set = set()

    def submit(self, fn, *args):
        """Submit one task, tracking the future for cancellation."""
        if self.executor is None:
            raise RuntimeError("pool is closed")
        future = self.executor.submit(fn, *args)
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        return future

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down; idempotent.  With ``cancel``, outstanding
        futures are cancelled and pending queue entries dropped first, so
        an interrupted run exits without cancellation tracebacks."""
        executor = self.executor
        if executor is None:
            return
        self.executor = None
        if cancel:
            for future in list(self._outstanding):
                future.cancel()
        executor.shutdown(wait=True, cancel_futures=cancel)
        self._outstanding.clear()

    def terminate(self) -> None:
        """Cancel everything outstanding and close (SIGINT/SIGTERM path)."""
        self.close(cancel=True)

    def __enter__(self) -> "ShardedInferencePool":
        return self

    def __exit__(self, exc_type, *exc: object) -> None:
        self.close(cancel=exc_type is not None)

    def __repr__(self) -> str:
        return f"<ShardedInferencePool jobs={self.jobs}>"
