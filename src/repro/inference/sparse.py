"""Sparse inference systems with structure-keyed factorization caching.

The dense formulation in ``inference.flow`` rebuilds an
``(blocks + observed [+ head]) x edges`` matrix row by Python row and
solves it cold for every function on every run — O(V*E) build work that
dominates once modules reach production size.  This module replaces it
with:

* a **COO -> CSR incidence build**: conservation rows, observation rows
  and the head row are assembled directly from the skeleton's edge list
  (same rows, same values, same order — the dense matrix and
  ``template.matrix.toarray()`` are elementwise identical);
* a **cached normal-equation factorization**: the matrix depends only on
  ``(skeleton digest, observation pattern)``, so its ``splu`` factor of
  ``G = A^T A`` is computed once per structure and reused for every
  function and every run that shares it — only the right-hand side
  changes;
* a **solution-quality gate**: the normal-equation solve is only accepted
  when the factorization is full-rank (checked via the LU diagonal) and
  the solution respects the nonnegativity bounds; otherwise the template
  falls back to the exact dense-oracle solver (``lsq_linear`` on the same
  matrix), so a fast-path answer is always within float noise of the
  oracle and a fallback answer is *bit-identical* to it.

Templates also carry the ``V x E`` inflow matrix, so count readback is one
sparse matvec instead of a Python double loop.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from .skeleton import CFGSkeleton, EdgeList

try:  # pragma: no cover - exercised via flow's scipy_missing fallback
    import scipy.sparse as _sp
    import scipy.sparse.linalg as _spl
    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _sp = None
    _spl = None
    HAVE_SCIPY = False

# flow imports this module lazily (inside its sparse dispatch), so the
# top-level import here is acyclic.
from .flow import CONSERVATION_WEIGHT

#: Relative floor under which an LU pivot marks the system rank-deficient.
_RANK_TOL = 1e-10
#: Relative bound-violation tolerance before the fast path defers to the
#: oracle (tiny negative flows are float noise; large ones mean the
#: unconstrained optimum genuinely leaves the feasible region).
_NEG_TOL = 1e-9

#: Cache key: (skeleton digest, observed block indices, head row present).
TemplateKey = Tuple[str, Tuple[int, ...], bool]


class SystemTemplate:
    """One cached least-squares system: matrix, factorization, readback.

    Everything here is a pure function of ``(n_blocks, edges,
    obs_indices, has_head)`` — observation *values* never enter, which is
    what makes the cache safe: solving only ever reads the template.
    """

    __slots__ = ("key", "n_blocks", "n_edges", "obs_indices", "has_head",
                 "n_rows", "matrix", "matrix_t", "inflow", "factor",
                 "failure_reason")

    def __init__(self, key: TemplateKey, n_blocks: int, edges: EdgeList,
                 obs_indices: Tuple[int, ...], has_head: bool):
        if not HAVE_SCIPY:  # pragma: no cover - flow gates on HAVE_SCIPY
            raise RuntimeError("scipy is required for sparse inference")
        self.key = key
        self.n_blocks = n_blocks
        self.n_edges = len(edges)
        self.obs_indices = obs_indices
        self.has_head = has_head
        self.n_rows = n_blocks + len(obs_indices) + (1 if has_head else 0)

        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        # Conservation rows (one per block, weighted): inflow - outflow = 0.
        # Duplicate (row, col) entries sum on conversion, matching the
        # dense build's `+= / -=` (a self-loop nets to an explicit zero).
        inflow_rows: List[int] = []
        inflow_cols: List[int] = []
        for e, (src, dst) in enumerate(edges):
            if dst >= 0:
                rows.append(dst)
                cols.append(e)
                data.append(CONSERVATION_WEIGHT)
                inflow_rows.append(dst)
                inflow_cols.append(e)
            if src >= 0:
                rows.append(src)
                cols.append(e)
                data.append(-CONSERVATION_WEIGHT)
        # Observation rows: inflow of each observed block.
        dst_edges: Dict[int, List[int]] = {}
        for e, (_src, dst) in enumerate(edges):
            if dst >= 0:
                dst_edges.setdefault(dst, []).append(e)
        for k, i in enumerate(obs_indices):
            for e in dst_edges.get(i, ()):
                rows.append(n_blocks + k)
                cols.append(e)
                data.append(1.0)
        # Head row: the virtual SRC->entry flow (always edge 0).
        if has_head:
            rows.append(self.n_rows - 1)
            cols.append(0)
            data.append(1.0)

        matrix = _sp.coo_matrix(
            (np.asarray(data), (np.asarray(rows), np.asarray(cols))),
            shape=(self.n_rows, self.n_edges)).tocsr()
        self.matrix = matrix
        self.matrix_t = _sp.csr_matrix(matrix.T)
        self.inflow = _sp.coo_matrix(
            (np.ones(len(inflow_rows)),
             (np.asarray(inflow_rows, dtype=np.int64),
              np.asarray(inflow_cols, dtype=np.int64))),
            shape=(n_blocks, self.n_edges)).tocsr()

        # Factor the normal equations once.  A rank-deficient system has
        # infinitely many least-squares solutions and the normal equations
        # cannot pick the oracle's (the min-norm one), so those templates
        # permanently route to the oracle solver.
        self.factor: Optional[Any] = None
        self.failure_reason: Optional[str] = None
        gram = _sp.csc_matrix(self.matrix_t @ matrix)
        try:
            factor = _spl.splu(gram)
        except RuntimeError:
            # splu raises on *exactly* singular systems; near-singular ones
            # factor but fail the pivot-ratio check below.  Same diagnosis.
            self.failure_reason = "rank_deficient"
        else:
            diag = np.abs(factor.U.diagonal())
            if diag.size == 0 or diag.min() <= _RANK_TOL * max(
                    float(diag.max()), 1.0):
                self.failure_reason = "rank_deficient"
            else:
                self.factor = factor

    def rhs(self, obs_values: List[float],
            head_count: Optional[float]) -> np.ndarray:
        """Right-hand side for one set of observation values."""
        target = np.zeros(self.n_rows)
        if self.obs_indices:
            target[self.n_blocks:self.n_blocks + len(self.obs_indices)] = \
                obs_values
        if self.has_head:
            target[-1] = float(head_count if head_count is not None else 0.0)
        return target

    def solve_fast(self, target: np.ndarray) -> Optional[np.ndarray]:
        """Normal-equation solve via the cached factor.

        Returns ``None`` when this template cannot guarantee the oracle's
        answer — rank-deficient structure, or a solution that leaves the
        nonnegative orthant beyond float noise — in which case the caller
        must use :meth:`solve_oracle`.
        """
        if self.factor is None:
            return None
        x = self.factor.solve(self.matrix_t @ target)
        if x.min() < -_NEG_TOL * max(1.0, float(np.abs(target).max())):
            return None
        return np.maximum(x, 0.0)

    def solve_oracle(self, target: np.ndarray) -> np.ndarray:
        """The exact solver the dense path runs, on this same matrix."""
        from scipy.optimize import lsq_linear
        return lsq_linear(self.matrix.toarray(), target,
                          bounds=(0.0, np.inf), max_iter=200).x

    def __repr__(self) -> str:
        state = self.failure_reason or "factored"
        return (f"<SystemTemplate {self.n_rows}x{self.n_edges} {state} "
                f"{self.key[0][:12]}>")


class SolverCache:
    """Process-wide template cache keyed by :data:`TemplateKey`.

    ``capacity`` bounds memory on adversarial structure churn: the cache
    empties (and counts an eviction cycle) rather than growing without
    bound — solves are pure, so eviction only costs a rebuild.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._templates: Dict[TemplateKey, SystemTemplate] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def template(self, skeleton: CFGSkeleton, obs_indices: Tuple[int, ...],
                 has_head: bool) -> SystemTemplate:
        return self.template_raw(skeleton.digest, skeleton.n_blocks,
                                 skeleton.edges, obs_indices, has_head)

    def template_raw(self, digest: str, n_blocks: int, edges: EdgeList,
                     obs_indices: Tuple[int, ...],
                     has_head: bool) -> SystemTemplate:
        """Skeleton-free lookup — what pool workers use (``sharded``)."""
        key: TemplateKey = (digest, obs_indices, has_head)
        entry = self._templates.get(key)
        if entry is not None:
            self.hits += 1
            telemetry.count("inference", "solver_cache_hit")
            return entry
        self.misses += 1
        telemetry.count("inference", "solver_cache_miss")
        if len(self._templates) >= self.capacity:
            self._templates.clear()
            self.evictions += 1
        entry = SystemTemplate(key, n_blocks, edges, obs_indices, has_head)
        self._templates[key] = entry
        return entry

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._templates)}

    def clear(self) -> None:
        self._templates.clear()

    def __len__(self) -> int:
        return len(self._templates)

    def __repr__(self) -> str:
        return (f"<SolverCache {len(self._templates)} templates "
                f"hits={self.hits} misses={self.misses}>")


def solve_raw(cache: SolverCache, digest: str, n_blocks: int,
              edges: EdgeList, obs_indices: Tuple[int, ...],
              obs_values: List[float], head_count: Optional[float]
              ) -> Tuple[float, np.ndarray, Optional[str]]:
    """Solve one system from raw parts via the cache.

    Returns ``(source_flow, per-block inflow, fallback_reason)``.  Pure in
    its inputs: identical in-process, in pool workers, and on cache
    hits vs misses — which is what makes both the sharded merge and the
    incremental memo sound.
    """
    template = cache.template_raw(digest, n_blocks, edges, obs_indices,
                                  head_count is not None)
    target = template.rhs(obs_values, head_count)
    reason: Optional[str] = None
    solution = template.solve_fast(target)
    if solution is None:
        reason = template.failure_reason or "negative_flow"
        solution = template.solve_oracle(target)
    inflow = np.maximum(template.inflow @ solution, 0.0)
    return float(solution[0]), inflow, reason


#: The process-wide cache used when no explicit cache/session is provided.
#: Templates are observation-value-independent, so sharing across modules,
#: runs, and PGO variants is always sound.
_DEFAULT_CACHE = SolverCache()


def default_cache() -> SolverCache:
    return _DEFAULT_CACHE
