"""Profile inference (the Profi-equivalent flow smoothing)."""

from .flow import (CONSERVATION_WEIGHT, infer_function_counts,
                   infer_module_counts)

__all__ = ["CONSERVATION_WEIGHT", "infer_function_counts",
           "infer_module_counts"]
