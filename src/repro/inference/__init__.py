"""Profile inference (the Profi-equivalent flow smoothing).

``flow`` holds the formulation and both solver paths (sparse default,
dense differential oracle); ``skeleton``/``sparse`` the structure-keyed
factorization cache; ``incremental`` the cross-run solution memo;
``sharded`` the deterministic process-pool fan-out.  See DESIGN.md
sec. 14.
"""

from .flow import (CONSERVATION_WEIGHT, infer_function_counts,
                   infer_module_counts)
from .incremental import InferenceSession, current, install, uninstall
from .skeleton import CFGSkeleton, extract_skeleton, observation_pattern
from .sparse import SolverCache, SystemTemplate, default_cache

__all__ = ["CONSERVATION_WEIGHT", "CFGSkeleton", "InferenceSession",
           "SolverCache", "SystemTemplate", "current", "default_cache",
           "extract_skeleton", "infer_function_counts",
           "infer_module_counts", "install", "observation_pattern",
           "uninstall"]
