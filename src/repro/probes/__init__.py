"""Correlation-anchor instrumentation: pseudo-probes and real counters."""

from .descriptor import (FunctionProbeDescriptor, ProbeDesc,
                         ProbeDescriptorTable, ProbeKind)
from .insertion import (has_probes, insert_pseudo_probes,
                        insert_pseudo_probes_function)
from .instrumentation import (InstrumentationMap, instrument_function,
                              instrument_module)

__all__ = [
    "FunctionProbeDescriptor", "InstrumentationMap", "ProbeDesc",
    "ProbeDescriptorTable", "ProbeKind", "has_probes",
    "insert_pseudo_probes", "insert_pseudo_probes_function",
    "instrument_function", "instrument_module",
]
