"""Traditional instrumentation insertion (the Instr-PGO baseline).

Inserts an :class:`~repro.ir.instructions.InstrProfIncrement` at the head of
every basic block.  Unlike pseudo-probes these lower to *real* machine
instructions that update counters at run time — the source of the ~50-73%
profiling slowdown the paper reports — and they act as strong optimization
barriers (code-merge transformations refuse to merge blocks incrementing
distinct counters).

Production compilers reduce the counter count with Ball-Larus minimal
spanning-tree placement; we instrument every block, and account for the MST
saving in the cost model instead (see perfmodel), since what the experiments
need is the *relative* overhead gap against sampling, not its exact value.
"""

from __future__ import annotations

from typing import Dict

from ..ir.function import Function, Module
from ..ir.instructions import InstrProfIncrement


class InstrumentationMap:
    """Maps (function, counter_id) back to the block it instruments."""

    def __init__(self) -> None:
        self.counter_block: Dict[tuple, str] = {}
        self.num_counters: Dict[str, int] = {}

    def block_for(self, func_name: str, counter_id: int) -> str:
        return self.counter_block[(func_name, counter_id)]


def instrument_function(fn: Function, imap: InstrumentationMap) -> None:
    for counter_id, block in enumerate(fn.blocks):
        block.instrs.insert(0, InstrProfIncrement(fn.name, counter_id))
        imap.counter_block[(fn.name, counter_id)] = block.label
    imap.num_counters[fn.name] = len(fn.blocks)


def instrument_module(module: Module) -> InstrumentationMap:
    imap = InstrumentationMap()
    for fn in module.functions.values():
        instrument_function(fn, imap)
    return imap
