"""Pseudo-probe insertion pass (paper sec. III.A).

Probes are inserted "into each basic block of the control-flow graph at an
early stage of the optimization pipeline before any aggressive
transformations".  We do exactly that: the pass runs on freshly built IR,
placing one block probe at the head of every block and assigning every call
site its own call probe id.  The per-function CFG checksum is computed and
stored at the same time; it travels with the profile so stale profiles from
drifted sources can be rejected (see :mod:`repro.ir.checksum`).
"""

from __future__ import annotations

from ..ir.checksum import cfg_checksum
from ..ir.function import Function, Module
from ..ir.instructions import Call, PseudoProbe
from .descriptor import (FunctionProbeDescriptor, ProbeDesc,
                         ProbeDescriptorTable, ProbeKind)


def insert_pseudo_probes_function(fn: Function) -> FunctionProbeDescriptor:
    """Instrument one function; returns its probe descriptor.

    Block probes are numbered 1..N in layout order; call probes continue the
    numbering.  The probe is placed at the head of the block so any sample
    attributed to the block's address range increments the probe's count.
    """
    next_id = 1
    # Checksum before probes are physically present so re-instrumenting a
    # drifted source computes a comparable value.
    checksum = cfg_checksum(fn)
    desc = FunctionProbeDescriptor(fn.name, fn.guid, checksum)
    for block in fn.blocks:
        probe = PseudoProbe(fn.guid, next_id, dloc=None)
        block.instrs.insert(0, probe)
        desc.add(ProbeDesc(next_id, ProbeKind.BLOCK, block.label))
        next_id += 1
    for block in fn.blocks:
        for instr in block.instrs:
            if isinstance(instr, Call):
                instr.probe_id = next_id
                instr.lexical_guid = fn.guid
                desc.add(ProbeDesc(next_id, ProbeKind.CALL, block.label,
                                   callee=instr.callee))
                next_id += 1
    fn.probe_checksum = checksum
    return desc


def insert_pseudo_probes(module: Module) -> ProbeDescriptorTable:
    """Instrument every function in the module with pseudo-probes."""
    table = ProbeDescriptorTable()
    for fn in module.functions.values():
        table.add(insert_pseudo_probes_function(fn))
        module.probe_guid_names[fn.guid] = fn.name
        module.probe_guid_checksums[fn.guid] = fn.probe_checksum
    return table


def has_probes(fn: Function) -> bool:
    return any(isinstance(i, PseudoProbe) for i in fn.instructions())
