"""Probe descriptors: the per-function probe inventory.

At insertion time every function gets a :class:`FunctionProbeDescriptor`
recording which probe ids exist, which are block probes vs call-site probes,
and the CFG checksum at insertion time.  Profile generation and profile
annotation both consult descriptors: the former to know what a raw probe id
means, the latter to detect stale profiles via checksum mismatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class ProbeKind:
    BLOCK = "block"
    CALL = "call"


class ProbeDesc:
    """Descriptor of one probe: id, kind, and home block at insertion time."""

    __slots__ = ("probe_id", "kind", "block_label", "callee")

    def __init__(self, probe_id: int, kind: str, block_label: str,
                 callee: Optional[str] = None):
        self.probe_id = probe_id
        self.kind = kind
        self.block_label = block_label
        self.callee = callee

    def __repr__(self) -> str:
        target = f" -> {self.callee}" if self.callee else ""
        return f"<Probe {self.probe_id} {self.kind} @{self.block_label}{target}>"


class FunctionProbeDescriptor:
    """All probes of one function plus its insertion-time CFG checksum."""

    def __init__(self, name: str, guid: int, checksum: int):
        self.name = name
        self.guid = guid
        self.checksum = checksum
        self.probes: Dict[int, ProbeDesc] = {}

    def add(self, desc: ProbeDesc) -> None:
        self.probes[desc.probe_id] = desc

    def block_probes(self) -> List[ProbeDesc]:
        return [p for p in self.probes.values() if p.kind == ProbeKind.BLOCK]

    def call_probes(self) -> List[ProbeDesc]:
        return [p for p in self.probes.values() if p.kind == ProbeKind.CALL]

    def __repr__(self) -> str:
        return f"<FunctionProbeDescriptor {self.name} ({len(self.probes)} probes)>"


class ProbeDescriptorTable:
    """Module-wide descriptor registry, keyed by function GUID and name."""

    def __init__(self) -> None:
        self.by_guid: Dict[int, FunctionProbeDescriptor] = {}
        self.by_name: Dict[str, FunctionProbeDescriptor] = {}

    def add(self, desc: FunctionProbeDescriptor) -> None:
        self.by_guid[desc.guid] = desc
        self.by_name[desc.name] = desc

    def get_by_guid(self, guid: int) -> Optional[FunctionProbeDescriptor]:
        return self.by_guid.get(guid)

    def get_by_name(self, name: str) -> Optional[FunctionProbeDescriptor]:
        return self.by_name.get(name)
