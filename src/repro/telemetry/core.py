"""Process-wide telemetry: statistics counters, hierarchical span timers,
and an optimization-remarks stream.

This is the reproduction's analogue of the introspection machinery the paper's
production deployment leans on:

* **counters** mirror LLVM's ``Statistic`` registry (``-stats``) and
  llvm-profgen's warning tallies — monotonically increasing named integers,
  keyed ``(component, name)``;
* **spans** mirror ``-time-passes`` / ``-ftime-trace``: wall-clock intervals
  with nesting, exportable as Chrome trace events;
* **remarks** mirror ``-fsave-optimization-record``: one record per
  optimization decision (inlined, unrolled, split, …) with a debug location.

Telemetry is *opt-in* and globally scoped.  The disabled path is
zero-overhead by construction: every module-level entry point checks one
global and returns immediately — no timestamps are taken, nothing is
allocated, and ``span()`` returns a shared no-op context manager.  Enabling
telemetry therefore cannot change any compilation or correlation result,
only observe it (single-threaded by design, like the rest of the simulator).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple


class Remark:
    """One optimization decision (``-fsave-optimization-record`` analogue).

    ``loc`` is either ``None`` or a dict with ``function``/``line``/
    ``discriminator`` keys (see :func:`remark` for the conversion from a
    :class:`~repro.ir.debug_info.DebugLoc`).
    """

    __slots__ = ("pass_name", "name", "function", "message", "loc", "args")

    def __init__(self, pass_name: str, name: str, function: str,
                 message: str, loc: Optional[Dict[str, Any]] = None,
                 args: Optional[Dict[str, Any]] = None):
        self.pass_name = pass_name
        self.name = name          # e.g. "Inlined", "Unrolled", "Missed"
        self.function = function  # function the decision applies to
        self.message = message
        self.loc = loc
        self.args = args or {}

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "Pass": self.pass_name,
            "Name": self.name,
            "Function": self.function,
            "Message": self.message,
        }
        if self.loc is not None:
            record["DebugLoc"] = {
                "Function": self.loc.get("function", self.function),
                "Line": self.loc.get("line", 0),
                "Discriminator": self.loc.get("discriminator", 0),
            }
        if self.args:
            record["Args"] = dict(self.args)
        return record

    def __repr__(self) -> str:
        return f"<Remark {self.pass_name}:{self.name} {self.function}>"


class SpanRecord:
    """One completed span: a named wall-clock interval with nesting depth."""

    __slots__ = ("name", "category", "start_us", "duration_us", "depth", "args")

    def __init__(self, name: str, category: str, start_us: float,
                 duration_us: float, depth: int, args: Dict[str, Any]):
        self.name = name
        self.category = category
        self.start_us = start_us
        self.duration_us = duration_us
        self.depth = depth
        self.args = args

    def __repr__(self) -> str:
        return (f"<SpanRecord {self.category}:{self.name} "
                f"{self.duration_us:.1f}us depth={self.depth}>")


class _Span:
    """Live span context manager; records a :class:`SpanRecord` on exit.

    The ``args`` dict is shared with the record, so ``set()`` after ``with``
    exit (e.g. to attach after-the-fact deltas) still lands in the export.
    """

    __slots__ = ("_session", "name", "category", "args", "_start", "_depth")

    def __init__(self, session: "TelemetrySession", name: str, category: str,
                 args: Dict[str, Any]):
        self._session = session
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0
        self._depth = 0

    def set(self, **kwargs: Any) -> "_Span":
        self.args.update(kwargs)
        return self

    def __enter__(self) -> "_Span":
        session = self._session
        self._depth = len(session._span_stack)
        session._span_stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        session = self._session
        if session._span_stack and session._span_stack[-1] is self:
            session._span_stack.pop()
        session.spans.append(SpanRecord(
            self.name, self.category,
            (self._start - session._epoch) * 1e6,
            (end - self._start) * 1e6,
            self._depth, self.args))
        return False


class _NullSpan:
    """Shared no-op span for the disabled path (never allocates)."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class TelemetrySession:
    """All telemetry collected between :func:`enable` and :func:`disable`."""

    def __init__(self) -> None:
        #: (component, name) -> monotonically increasing int.
        self.counters: Counter = Counter()
        self.spans: List[SpanRecord] = []
        self.remarks: List[Remark] = []
        self._span_stack: List[_Span] = []
        self._epoch = time.perf_counter()

    # -- direct (session-bound) API -----------------------------------------
    def count(self, component: str, name: str, n: int = 1) -> None:
        self.counters[(component, name)] += n

    def span(self, name: str, category: str = "", **args: Any) -> _Span:
        return _Span(self, name, category, args)

    def add_remark(self, remark: Remark) -> None:
        self.remarks.append(remark)

    def counter(self, component: str, name: str) -> int:
        return self.counters.get((component, name), 0)

    def merge(self, other: "TelemetrySession") -> None:
        """Fold another session into this one: counters add, spans and
        remarks append (how pool workers' telemetry rejoins the parent)."""
        self.counters.update(other.counters)
        self.spans.extend(other.spans)
        self.remarks.extend(other.remarks)

    def __repr__(self) -> str:
        return (f"<TelemetrySession counters={len(self.counters)} "
                f"spans={len(self.spans)} remarks={len(self.remarks)}>")


#: The active session, or None (telemetry disabled — the default).
_session: Optional[TelemetrySession] = None


def enable(session: Optional[TelemetrySession] = None) -> TelemetrySession:
    """Install ``session`` as the process-wide collector.

    Called with no argument while a session is already active, the active
    session is **kept** — a library enabling telemetry under a CLI that is
    already collecting must not clobber the counters and spans registered
    so far (they would silently vanish from every later export).  Passing
    an explicit ``session`` always installs it.
    """
    global _session
    if session is not None:
        _session = session
    elif _session is None:
        _session = TelemetrySession()
    return _session


def disable() -> None:
    """Stop collecting; subsequent telemetry calls become no-ops."""
    global _session
    _session = None


def current() -> Optional[TelemetrySession]:
    return _session


def enabled() -> bool:
    return _session is not None


def count(component: str, name: str, n: int = 1) -> None:
    """Bump counter ``(component, name)`` by ``n``; no-op when disabled."""
    session = _session
    if session is not None:
        session.counters[(component, name)] += n


def span(name: str, category: str = "", **args: Any):
    """Open a timing span; returns a context manager.  When telemetry is
    disabled this returns a shared no-op object and takes no timestamps."""
    session = _session
    if session is None:
        return _NULL_SPAN
    return _Span(session, name, category, args)


def _loc_dict(function: str, loc: Any) -> Optional[Dict[str, Any]]:
    """Normalize a debug location: DebugLoc-like object, dict, or None."""
    if loc is None:
        return None
    if isinstance(loc, dict):
        return loc
    line = getattr(loc, "line", None)
    if line is None:
        return None
    return {"function": function, "line": line,
            "discriminator": getattr(loc, "discriminator", 0)}


def remark(pass_name: str, name: str, function: str, message: str,
           loc: Any = None, **args: Any) -> None:
    """Record one optimization remark; no-op when disabled.

    ``loc`` may be a :class:`~repro.ir.debug_info.DebugLoc` (duck-typed via
    ``.line``/``.discriminator``), a prebuilt dict, or None.
    """
    session = _session
    if session is not None:
        session.remarks.append(Remark(pass_name, name, function, message,
                                      _loc_dict(function, loc), args))
