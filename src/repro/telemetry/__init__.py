"""Pipeline-wide telemetry: counters, span timers, remarks, exporters.

See DESIGN.md sec. "Telemetry & diagnostics" for the module map and the
counter -> LLVM-analogue fidelity table.  Import as::

    from repro import telemetry
    telemetry.count("correlate", "samples_broken")
    with telemetry.span("profile-generation", "stage"):
        ...

Every entry point is a no-op while telemetry is disabled (the default).
"""

from .core import (Remark, SpanRecord, TelemetrySession, count, current,
                   disable, enable, enabled, remark, span)
from .report import (chrome_trace, remarks_to_json, render_stats_report,
                     write_chrome_trace, write_remarks)

__all__ = [
    "Remark", "SpanRecord", "TelemetrySession",
    "count", "current", "disable", "enable", "enabled", "remark", "span",
    "chrome_trace", "remarks_to_json", "render_stats_report",
    "write_chrome_trace", "write_remarks",
]
