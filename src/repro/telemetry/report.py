"""Telemetry exporters: human-readable stats report, Chrome trace-event
JSON (``chrome://tracing`` / Perfetto), and optimization-remarks JSON.

Format fidelity:

* :func:`render_stats_report` mimics LLVM's ``-stats`` footer (value,
  component, name) followed by a ``-time-passes``-style table aggregated
  from spans with category ``"pass"``;
* :func:`chrome_trace` emits complete ("ph": "X") trace events, the same
  shape ``-ftime-trace`` produces, so the full PGO cycle nests visually per
  variant / iteration / stage / pass;
* :func:`remarks_to_json` serializes remarks the way
  ``-fsave-optimization-record`` does (Pass/Name/Function/DebugLoc/Args).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .core import TelemetrySession


def _aggregate_spans(session: TelemetrySession, category: str
                     ) -> List[Tuple[str, float, int]]:
    """(name, total_seconds, runs) for every span of ``category``,
    hottest first."""
    totals: Dict[str, List[float]] = {}
    for record in session.spans:
        if record.category != category:
            continue
        entry = totals.setdefault(record.name, [0.0, 0])
        entry[0] += record.duration_us / 1e6
        entry[1] += 1
    rows = [(name, total, int(runs)) for name, (total, runs) in totals.items()]
    rows.sort(key=lambda row: -row[1])
    return rows


def _timing_table(rows: List[Tuple[str, float, int]], title: str) -> List[str]:
    lines = [f"=== {title} ===",
             f"  {'wall (s)':>12s} {'%':>6s} {'runs':>6s}  name"]
    total = sum(row[1] for row in rows) or 1.0
    for name, seconds, runs in rows:
        lines.append(f"  {seconds:12.6f} {100.0 * seconds / total:6.1f} "
                     f"{runs:6d}  {name}")
    return lines


def render_stats_report(session: TelemetrySession) -> str:
    """LLVM ``-stats`` + ``-time-passes`` style plain-text report."""
    lines: List[str] = []
    bar = "===" + "-" * 66 + "==="
    lines.append(bar)
    lines.append("                    ... Statistics Collected ...")
    lines.append(bar)
    if session.counters:
        width = max(len(str(v)) for v in session.counters.values())
        for (component, name), value in sorted(session.counters.items()):
            lines.append(f"  {value:{width}d} {component:20s} - {name}")
    else:
        lines.append("  (no counters recorded)")
    lines.append("")

    pass_rows = _aggregate_spans(session, "pass")
    if pass_rows:
        lines.extend(_timing_table(pass_rows, "Pass execution timing "
                                              "(-time-passes analogue)"))
        lines.append("")
    stage_rows = _aggregate_spans(session, "stage")
    if stage_rows:
        lines.extend(_timing_table(stage_rows, "Pipeline stage timing"))
        lines.append("")
    pgo_rows = _aggregate_spans(session, "pgo")
    if pgo_rows:
        lines.extend(_timing_table(pgo_rows, "PGO cycle timing (per variant)"))
        lines.append("")

    if session.remarks:
        by_pass: Dict[str, int] = {}
        for rem in session.remarks:
            by_pass[rem.pass_name] = by_pass.get(rem.pass_name, 0) + 1
        summary = ", ".join(f"{name} {count}"
                            for name, count in sorted(by_pass.items()))
        lines.append(f"=== Optimization remarks: {len(session.remarks)} "
                     f"({summary}) ===")
        lines.append("")
    return "\n".join(lines)


def chrome_trace(session: TelemetrySession) -> Dict[str, Any]:
    """Chrome trace-event JSON object (the ``-ftime-trace`` shape)."""
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": "repro PGO pipeline"},
    }]
    for record in sorted(session.spans, key=lambda r: r.start_us):
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": record.category or "span",
            "ph": "X",
            "ts": record.start_us,
            "dur": record.duration_us,
            "pid": 1,
            "tid": 1,
        }
        if record.args:
            event["args"] = {key: value for key, value in record.args.items()
                             if isinstance(value, (str, int, float, bool))}
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def remarks_to_json(session: TelemetrySession) -> List[Dict[str, Any]]:
    return [rem.to_dict() for rem in session.remarks]


def write_chrome_trace(session: TelemetrySession, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(session), handle, indent=1)


def write_remarks(session: TelemetrySession, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(remarks_to_json(session), handle, indent=1)
