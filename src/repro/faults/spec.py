"""Fault specifications: which injectors run, how hard, and from what seed.

A spec is a comma-separated list of ``name[:intensity]`` entries with an
optional ``@seed=N`` suffix — the CLI's ``--fault-spec`` syntax::

    truncate_lbr:0.5,corrupt_addrs:0.2@seed=7
    stale_checksum          (intensity defaults to 1.0, seed to 0)

Intensity is the per-item fault probability in ``[0, 1]`` (per sample, per
record, per line — whatever the injector's unit is).  Everything is
deterministic: the same spec applied to the same input produces the same
corruption, byte for byte, which is what makes fuzz failures replayable.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple


class FaultSpec:
    """A parsed fault specification."""

    def __init__(self, faults: List[Tuple[str, float]], seed: int = 0):
        from .injectors import INJECTORS
        for name, intensity in faults:
            if name not in INJECTORS:
                raise ValueError(
                    f"unknown fault injector {name!r} (choose from "
                    f"{', '.join(sorted(INJECTORS))})")
            if not 0.0 <= intensity <= 1.0:
                raise ValueError(
                    f"fault intensity must be in [0, 1], got "
                    f"{name}:{intensity}")
        self.faults = list(faults)
        self.seed = seed

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        seed = 0
        if "@" in text:
            text, _, options = text.partition("@")
            for option in options.split(","):
                key, _, value = option.partition("=")
                if key.strip() != "seed":
                    raise ValueError(f"unknown fault-spec option {key!r}")
                try:
                    seed = int(value)
                except ValueError:
                    raise ValueError(f"fault-spec seed must be an integer, "
                                     f"got {value!r}") from None
        faults: List[Tuple[str, float]] = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, _, intensity_text = entry.partition(":")
            try:
                intensity = float(intensity_text) if intensity_text else 1.0
            except ValueError:
                raise ValueError(f"bad fault intensity {intensity_text!r} "
                                 f"for {name!r}") from None
            faults.append((name.strip(), intensity))
        if not faults:
            raise ValueError("empty fault spec")
        return cls(faults, seed)

    def entries_of_kind(self, kind: str) -> List[Tuple[str, float]]:
        """The (name, intensity) entries whose injector targets ``kind``."""
        from .injectors import INJECTORS
        return [(name, intensity) for name, intensity in self.faults
                if INJECTORS[name].kind == kind]

    def rng_for(self, name: str) -> random.Random:
        """Deterministic per-injector stream: independent of entry order,
        stable across processes (no ``hash()`` involvement)."""
        return random.Random(self.seed * 0x9E3779B1
                             + zlib.crc32(name.encode("utf-8")))

    def __repr__(self) -> str:
        body = ",".join(f"{name}:{intensity:g}"
                        for name, intensity in self.faults)
        return f"<FaultSpec {body}@seed={self.seed}>"


def parse_fault_spec(text: str) -> FaultSpec:
    return FaultSpec.parse(text)
