"""Deterministic fault injectors for every profile-pipeline boundary.

Four injector kinds — three per boundary the *data* pipeline crosses, one
for the *operational* plane of the fleet service:

* ``perf`` — corrupt raw :class:`~repro.hw.perf_data.PerfData` before
  profile generation (truncated LBR rings, dropped/duplicated samples,
  out-of-range addresses, shuffled stack frames);
* ``profile`` — corrupt a generated :class:`~repro.profile.profiles`
  object before application (stale checksums, missing/extra probes,
  counter overflow, GUID collisions / moved functions, mutated inline
  trees — the "profile from a different build" family);
* ``text`` — corrupt the serialized text encoding before loading
  (malformed lines: bit-rot, truncation splices);
* ``fleet`` — operational failures of the continuous-profiling fleet
  service (DESIGN.md sec. 15): crashed and hung collection workers, slow
  collections that blow task deadlines, dropped shard results, and
  clock-skewed generation timestamps.  Fleet injectors have no data-plane
  hook — they are *decision points* the fleet orchestrator draws through
  :class:`~repro.fleet.faults.FaultPlane`, from the same per-injector
  seeded streams, so every retry/degradation path has a replayable
  trigger.

Every injector draws from a :class:`random.Random` seeded per
``(spec seed, injector name)``, so a spec replays identically, and records
what it touched in an :class:`InjectionReport` — the ground truth the fuzz
tests reconcile drop counters against (exact accounting).

Injectors never mutate their input: ``apply_perf_faults`` /
``apply_profile_faults`` / ``apply_text_faults`` copy first, corrupt the
copy, and hand it back with the report.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional, Tuple, Union

from .. import obs
from ..codegen.binary import TEXT_BASE
from ..hw.perf_data import PerfData, PerfSample
from ..profile.profiles import ContextProfile, FlatProfile
from .spec import FaultSpec

Profile = Union[FlatProfile, ContextProfile]


class InjectionReport:
    """What a fault application actually did, per injector and metric."""

    def __init__(self) -> None:
        #: (injector name, metric) -> count.
        self.events: Counter = Counter()

    def add(self, injector: str, metric: str, n: int = 1) -> None:
        self.events[(injector, metric)] += n

    def get(self, injector: str, metric: str) -> int:
        return self.events.get((injector, metric), 0)

    def total(self, metric: Optional[str] = None) -> int:
        """Event count across injectors — for one metric, or all of them."""
        if metric is None:
            return sum(self.events.values())
        return sum(count for (_inj, m), count in self.events.items()
                   if m == metric)

    def __repr__(self) -> str:
        body = ", ".join(f"{inj}.{metric}={count}"
                         for (inj, metric), count in sorted(self.events.items()))
        return f"<InjectionReport {body or 'clean'}>"


class Injector:
    """One named corruption; subclasses override one ``apply_*`` hook."""

    name = ""
    kind = ""  # "perf" | "profile" | "text"

    def apply_perf(self, rng: random.Random, data: PerfData,
                   intensity: float, report: InjectionReport) -> None:
        raise NotImplementedError

    def apply_profile(self, rng: random.Random, profile: Profile,
                      intensity: float, report: InjectionReport) -> None:
        raise NotImplementedError

    def apply_text(self, rng: random.Random, text: str,
                   intensity: float, report: InjectionReport) -> str:
        raise NotImplementedError


def _out_of_range_addr(rng: random.Random) -> int:
    """An address guaranteed to lie below the text section."""
    return rng.randint(0x1000, TEXT_BASE - 1)


# ---------------------------------------------------------------------------
# perf-data injectors
# ---------------------------------------------------------------------------


class TruncateLBR(Injector):
    """Truncated LBR rings: keep only the newest entries of a sample's ring
    (what a mid-record collection cutoff produces)."""

    name = "truncate_lbr"
    kind = "perf"

    def apply_perf(self, rng, data, intensity, report):
        for i, sample in enumerate(data.samples):
            if not sample.lbr or rng.random() >= intensity:
                continue
            keep = rng.randint(0, len(sample.lbr) - 1)
            lbr = sample.lbr[len(sample.lbr) - keep:]
            data.samples[i] = PerfSample(lbr, sample.stack, sample.ip)
            report.add(self.name, "samples_truncated")
            if not lbr:
                report.add(self.name, "samples_emptied")


class DropSamples(Injector):
    """Dropped samples: the kernel ran out of ring-buffer space."""

    name = "drop_samples"
    kind = "perf"

    def apply_perf(self, rng, data, intensity, report):
        kept: List[PerfSample] = []
        for sample in data.samples:
            if rng.random() < intensity:
                report.add(self.name, "samples_dropped")
            else:
                kept.append(sample)
        data.samples[:] = kept


class DuplicateSamples(Injector):
    """Duplicated samples: replayed ring-buffer pages double-count payloads."""

    name = "dup_samples"
    kind = "perf"

    def apply_perf(self, rng, data, intensity, report):
        duplicates: List[PerfSample] = []
        for sample in data.samples:
            if rng.random() < intensity:
                duplicates.append(sample)
                report.add(self.name, "samples_duplicated")
        data.samples.extend(duplicates)


class CorruptAddresses(Injector):
    """Out-of-range addresses: every LBR entry and stack frame of a hit
    sample points outside the binary (JIT pages, vdso, a different build)."""

    name = "corrupt_addrs"
    kind = "perf"

    def apply_perf(self, rng, data, intensity, report):
        for i, sample in enumerate(data.samples):
            if rng.random() >= intensity:
                continue
            lbr = tuple((_out_of_range_addr(rng), _out_of_range_addr(rng))
                        for _ in sample.lbr)
            stack = tuple(_out_of_range_addr(rng) for _ in sample.stack)
            data.samples[i] = PerfSample(lbr, stack, sample.ip)
            report.add(self.name, "samples_corrupted")
            if not lbr:
                report.add(self.name, "samples_corrupted_empty_lbr")


class ShuffleStack(Injector):
    """Shuffled stack frames: a torn stack walk delivers frames out of
    order (degrades context reconstruction, must never crash it)."""

    name = "shuffle_stack"
    kind = "perf"

    def apply_perf(self, rng, data, intensity, report):
        for i, sample in enumerate(data.samples):
            if len(sample.stack) < 2 or rng.random() >= intensity:
                continue
            stack = list(sample.stack)
            rng.shuffle(stack)
            data.samples[i] = PerfSample(sample.lbr, tuple(stack), sample.ip)
            report.add(self.name, "stacks_shuffled")


# ---------------------------------------------------------------------------
# profile injectors
# ---------------------------------------------------------------------------


def _profile_records(profile: Profile):
    """(key, FunctionSamples) pairs in deterministic order for either kind."""
    if isinstance(profile, ContextProfile):
        return sorted(profile.contexts.items(), key=lambda kv: str(kv[0]))
    return sorted(profile.functions.items())


class StaleChecksum(Injector):
    """Stale function bodies: the recorded CFG checksum no longer matches
    the IR (source drift between profiling build and this build)."""

    name = "stale_checksum"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        for _key, samples in _profile_records(profile):
            if samples.checksum is None or rng.random() >= intensity:
                continue
            # XOR with an odd value always flips the low bit: guaranteed stale.
            samples.checksum ^= rng.getrandbits(32) | 1
            report.add(self.name, "checksums_staled")


class MissingProbes(Injector):
    """Missing probes: body entries vanished (trimmed, truncated, or from
    a build whose probe universe shrank)."""

    name = "missing_probes"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        for _key, samples in _profile_records(profile):
            for key in sorted(samples.body, key=str):
                if rng.random() < intensity:
                    del samples.body[key]
                    report.add(self.name, "probes_removed")
            samples.finalize()


class ExtraProbes(Injector):
    """Extra probes: body entries for probe ids this build never placed
    (a build whose probe universe grew, or plain corruption)."""

    name = "extra_probes"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        for _key, samples in _profile_records(profile):
            if rng.random() >= intensity:
                continue
            dwarf_keys = any(isinstance(k, tuple) for k in samples.body)
            for n in range(rng.randint(1, 3)):
                bogus = 100_000 + rng.randint(0, 999)
                key = (bogus, 0) if dwarf_keys else bogus
                samples.body[key] = float(rng.randint(1, 1000))
                report.add(self.name, "probes_added")
            samples.finalize()


class CounterOverflow(Injector):
    """Counter overflow: counts blown up to 2^63-scale values (wrapped
    accumulators); consumers must keep summing/scaling without crashing."""

    name = "counter_overflow"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        for _key, samples in _profile_records(profile):
            if not samples.body or rng.random() >= intensity:
                continue
            for key in samples.body:
                samples.body[key] = float(2 ** 63) + samples.body[key]
            samples.head = float(2 ** 63) + samples.head
            samples.finalize()
            report.add(self.name, "counters_overflowed")


class GuidCollision(Injector):
    """Profile from a different build: records renamed onto other functions
    (GUID collision) or onto names this binary does not have (moved/renamed
    functions -> unknown GUIDs)."""

    name = "guid_collision"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        if isinstance(profile, ContextProfile):
            for key, samples in _profile_records(profile):
                if key not in profile.contexts or rng.random() >= intensity:
                    continue
                samples = profile.contexts.pop(key)
                leaf, site = key[-1]
                new_key = key[:-1] + ((f"__moved_{leaf}", site),)
                samples.name = f"__moved_{leaf}"
                existing = profile.contexts.get(new_key)
                if existing is None:
                    profile.contexts[new_key] = samples
                else:
                    existing.merge(samples)
                report.add(self.name, "records_moved")
            return
        for name, _samples in _profile_records(profile):
            if name not in profile.functions or rng.random() >= intensity:
                continue
            samples = profile.functions.pop(name)
            others = sorted(n for n in profile.functions)
            if others and rng.random() < 0.5:
                target = rng.choice(others)  # collision: merge into victim
                profile.functions[target].merge(samples)
                report.add(self.name, "records_collided")
            else:
                samples.name = f"__moved_{name}"
                profile.functions[samples.name] = samples
                report.add(self.name, "records_moved")


class MutateInlineTree(Injector):
    """Changed inline trees: a caller frame removed from a context key, the
    shape a different build's inliner would have produced.  No-op on flat
    profiles (they have no contexts)."""

    name = "mutate_inline_tree"
    kind = "profile"

    def apply_profile(self, rng, profile, intensity, report):
        if not isinstance(profile, ContextProfile):
            return
        for key, _samples in _profile_records(profile):
            if (len(key) < 2 or key not in profile.contexts
                    or rng.random() >= intensity):
                continue
            samples = profile.contexts.pop(key)
            drop_at = rng.randrange(len(key) - 1)  # never the leaf
            new_key = key[:drop_at] + key[drop_at + 1:]
            existing = profile.contexts.get(new_key)
            if existing is None:
                profile.contexts[new_key] = samples
            else:
                existing.merge(samples)
            report.add(self.name, "contexts_mutated")


# ---------------------------------------------------------------------------
# fleet (operational) injectors
# ---------------------------------------------------------------------------


class FleetInjector(Injector):
    """Operational injector: a named, seeded decision point of the fleet
    orchestrator rather than a data corruption.

    Intensity is the per-decision firing probability (per busy worker per
    tick for crash/hang, per task start for slow collections, per
    generation for shard drops and clock skew).  The orchestrator draws
    from the spec's per-injector stream (:meth:`FaultSpec.rng_for`) in
    deterministic simulation order — same spec, same fleet seed, same
    failures, tick for tick.
    """

    kind = "fleet"
    #: One-line description of when the orchestrator consults the injector.
    decision = ""


class WorkerCrash(FleetInjector):
    """Collection worker dies mid-task: its task is orphaned and must be
    re-queued exactly once by crash recovery; the supervisor respawns a
    replacement worker."""

    name = "worker_crash"
    decision = "per busy worker per tick"


class WorkerHang(FleetInjector):
    """Collection worker wedges: heartbeats stop while the task neither
    progresses nor fails, until hang detection cancels it cooperatively."""

    name = "worker_hang"
    decision = "per busy worker per tick"


class SlowCollection(FleetInjector):
    """Collection runs several times slower than planned (loaded host,
    throttled PMU) — the way per-task deadlines actually get exceeded."""

    name = "slow_collection"
    decision = "per task start"


class DropShardResult(FleetInjector):
    """One shard's partial profile is lost in flight; the merge cannot
    complete, so the whole collection attempt fails and retries."""

    name = "drop_shard"
    decision = "per profile generation"


class ClockSkew(FleetInjector):
    """Generation timestamp skewed against the fleet clock (NTP drift on
    the collection host): freshness-window decisions see the wrong age."""

    name = "clock_skew"
    decision = "per profile generation"


# ---------------------------------------------------------------------------
# text injectors
# ---------------------------------------------------------------------------


class MalformedText(Injector):
    """Malformed text-format lines: body lines replaced with junk that can
    never parse (bit-rot / splice damage in a stored profile)."""

    name = "malformed_text"
    kind = "text"

    def apply_text(self, rng, text, intensity, report):
        out: List[str] = []
        for line in text.splitlines():
            if line.startswith(" ") and line.strip() \
                    and rng.random() < intensity:
                out.append(" @@corrupt@@: not-a-count")
                report.add(self.name, "lines_corrupted")
            else:
                out.append(line)
        return "\n".join(out) + ("\n" if text.endswith("\n") else "")


#: Registry of every injector, by name — the fault taxonomy.
INJECTORS = {injector.name: injector for injector in [
    TruncateLBR(), DropSamples(), DuplicateSamples(), CorruptAddresses(),
    ShuffleStack(),
    StaleChecksum(), MissingProbes(), ExtraProbes(), CounterOverflow(),
    GuidCollision(), MutateInlineTree(),
    MalformedText(),
    WorkerCrash(), WorkerHang(), SlowCollection(), DropShardResult(),
    ClockSkew(),
]}


# ---------------------------------------------------------------------------
# application entry points (copy, corrupt the copy, report)
# ---------------------------------------------------------------------------


def clone_perf_data(data: PerfData) -> PerfData:
    """Shallow-per-sample copy: injectors replace sample objects wholesale,
    so sharing the (immutable-payload) samples is safe."""
    copy = PerfData(data.period, data.lbr_depth, data.pebs)
    copy.samples = list(data.samples)
    copy.instructions_retired = data.instructions_retired
    copy.binary_id = data.binary_id
    return copy


def clone_profile(profile: Profile) -> Profile:
    if isinstance(profile, ContextProfile):
        copy = ContextProfile()
        copy.contexts = {key: samples.clone()
                         for key, samples in profile.contexts.items()}
        return copy
    copy = FlatProfile(profile.kind)
    copy.functions = {name: samples.clone()
                      for name, samples in profile.functions.items()}
    return copy


def _emit_injected(kind: str, report: InjectionReport,
                   total_before: int) -> None:
    """Record what this application pass actually corrupted (the report may
    arrive pre-populated from an earlier pass, so emit the delta)."""
    delta = report.total() - total_before
    if delta:
        obs.emit("faults_injected", kind=kind, count=delta)


def apply_perf_faults(data: PerfData, spec: Optional[FaultSpec],
                      report: Optional[InjectionReport] = None
                      ) -> Tuple[PerfData, InjectionReport]:
    """Apply the spec's perf-data injectors to a copy of ``data``."""
    report = report if report is not None else InjectionReport()
    if spec is None:
        return data, report
    entries = spec.entries_of_kind("perf")
    if not entries:
        return data, report
    data = clone_perf_data(data)
    total_before = report.total()
    for name, intensity in entries:
        INJECTORS[name].apply_perf(spec.rng_for(name), data, intensity,
                                   report)
    _emit_injected("perf", report, total_before)
    return data, report


def apply_profile_faults(profile: Profile, spec: Optional[FaultSpec],
                         report: Optional[InjectionReport] = None
                         ) -> Tuple[Profile, InjectionReport]:
    """Apply the spec's profile injectors to a copy of ``profile``."""
    report = report if report is not None else InjectionReport()
    if spec is None:
        return profile, report
    entries = spec.entries_of_kind("profile")
    if not entries:
        return profile, report
    profile = clone_profile(profile)
    total_before = report.total()
    for name, intensity in entries:
        INJECTORS[name].apply_profile(spec.rng_for(name), profile, intensity,
                                      report)
    _emit_injected("profile", report, total_before)
    return profile, report


def apply_text_faults(text: str, spec: Optional[FaultSpec],
                      report: Optional[InjectionReport] = None
                      ) -> Tuple[str, InjectionReport]:
    """Apply the spec's text injectors to the serialized profile text."""
    report = report if report is not None else InjectionReport()
    if spec is None:
        return text, report
    total_before = report.total()
    for name, intensity in spec.entries_of_kind("text"):
        text = INJECTORS[name].apply_text(spec.rng_for(name), text,
                                          intensity, report)
    _emit_injected("text", report, total_before)
    return text, report
