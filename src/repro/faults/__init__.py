"""Fault injection: deterministic, seedable corruption of every pipeline
boundary (DESIGN.md sec. 10).

The subsystem exists to *prove* graceful degradation: every injector in
:data:`~repro.faults.injectors.INJECTORS` can be driven through the full
pipeline in permissive mode with zero uncaught exceptions, and the
``correlate.drop.*`` / ``annotate.drop.*`` / ``profile.drop.*`` telemetry
counters account exactly for everything discarded.
"""

from .injectors import (INJECTORS, InjectionReport, apply_perf_faults,
                        apply_profile_faults, apply_text_faults,
                        clone_perf_data, clone_profile)
from .spec import FaultSpec, parse_fault_spec

__all__ = [
    "FaultSpec", "INJECTORS", "InjectionReport", "apply_perf_faults",
    "apply_profile_faults", "apply_text_faults", "clone_perf_data",
    "clone_profile", "parse_fault_spec",
]
