"""Algorithm 2: the top-down context-sensitive pre-inliner.

Runs offline, as part of profile generation (paper sec. III.B(b)): it makes
global top-down inline decisions using context-sensitive hotness and the
binary-extracted size table (Algorithm 3), then *transforms the profile*:

* contexts it decides to inline keep their full context key and gain the
  ``ShouldBeInlined`` attribute, which the compiler's sample loader honors;
* contexts it declines are merged back into the callee's base profile (so
  the standalone callee is annotated accurately — Algorithm 2 lines 3-7).

This sidesteps ThinLTO's isolation problem: no cross-module profile
adjustment is needed at compile time because it already happened here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..profile.context import ContextKey, base_context, leaf_function
from ..profile.function_samples import ATTR_SHOULD_INLINE, FunctionSamples
from ..profile.profiles import ContextProfile
from .call_graph import profiled_call_graph, top_down_order
from .size_extractor import SizeTable


#: Probe id of every function's entry block (insertion numbers blocks from 1).
ENTRY_PROBE_ID = 1


class PreInlinerConfig:
    """Heuristic knobs (deliberately close to the compiler inliner's)."""

    def __init__(self, *,
                 hot_callsite_fraction: float = 0.002,
                 size_threshold_hot: int = 400,
                 size_threshold_normal: int = 72,
                 caller_size_limit: int = 1000,
                 default_callee_size: int = 80):
        self.hot_callsite_fraction = hot_callsite_fraction
        self.size_threshold_hot = size_threshold_hot
        self.size_threshold_normal = size_threshold_normal
        self.caller_size_limit = caller_size_limit
        self.default_callee_size = default_callee_size


class PreInlineDecision:
    __slots__ = ("context", "inlined", "size", "hotness")

    def __init__(self, context: ContextKey, inlined: bool, size: int,
                 hotness: float):
        self.context = context
        self.inlined = inlined
        self.size = size
        self.hotness = hotness

    def __repr__(self) -> str:
        verdict = "inline" if self.inlined else "keep"
        return f"<{verdict} {self.context} size={self.size} hot={self.hotness:g}>"


def should_inline(size: int, hotness: float, total_samples: float,
                  config: PreInlinerConfig) -> bool:
    if total_samples <= 0 or hotness <= 0:
        return False
    if hotness >= config.hot_callsite_fraction * total_samples:
        return size <= config.size_threshold_hot
    return size <= config.size_threshold_normal


def run_preinliner(profile: ContextProfile, sizes: SizeTable,
                   config: Optional[PreInlinerConfig] = None
                   ) -> List[PreInlineDecision]:
    """Transform ``profile`` in place; returns the decision log."""
    config = config or PreInlinerConfig()
    total_samples = profile.total_samples()
    decisions: List[PreInlineDecision] = []
    graph = profiled_call_graph(profile)
    order = top_down_order(graph)

    decided: Set[ContextKey] = set()
    for name in order:
        # Each function's base instance is one inlining scope; marked child
        # contexts re-enter the scope's candidate queue (Algorithm 2's
        # Enqueue(Candidates, NewCandidates)), so the whole nested subtree
        # shares the scope's size budget.
        instance = base_context(name)
        if instance in profile.contexts:
            _inline_into(profile, instance, sizes, config, total_samples,
                         decisions, decided)

    # Anything left unmarked and non-base (e.g. candidates dropped when a
    # scope's size budget ran out) counts as declined: promote shallowest
    # first so subtree structure survives under the new root.
    while True:
        leftovers = [c for c in profile.contexts
                     if len(c) > 1 and ATTR_SHOULD_INLINE
                     not in profile.contexts[c].attributes
                     and _root_is_unmarked(profile, c)]
        if not leftovers:
            break
        profile.promote_subtree(min(leftovers, key=len))
    profile.finalize()
    return decisions


def _root_is_unmarked(profile: ContextProfile, context: ContextKey) -> bool:
    """True when no ancestor of ``context`` carries the inline mark (marked
    ancestors keep their whole subtree rooted where it is — the loader walks
    through them even if this particular descendant stays a call site)."""
    for depth in range(1, len(context)):
        prefix = context[:depth]
        prefix = prefix[:-1] + ((prefix[-1][0], None),)
        record = profile.contexts.get(prefix)
        if record is not None and ATTR_SHOULD_INLINE in record.attributes:
            return False
    return True


def _subtree_size(profile: ContextProfile, sizes: SizeTable,
                  context, config: PreInlinerConfig) -> int:
    total = 0
    members = profile.subtree_of(context) or [context]
    for ctx in members:
        size = sizes.size_for(ctx)
        total += size if size is not None else config.default_callee_size
    return total


def _inline_into(profile: ContextProfile, instance: ContextKey,
                 sizes: SizeTable, config: PreInlinerConfig,
                 total_samples: float,
                 decisions: List[PreInlineDecision],
                 decided: Set[ContextKey]) -> None:
    """Greedy knapsack over this instance's candidate child contexts
    (Algorithm 2's inner while loop)."""
    own_size = sizes.size_for(instance)
    if own_size is None:
        own_size = config.default_callee_size
    func_size = own_size
    candidates = [c for c in profile.children_of(instance)
                  if c not in decided]

    def hotness_of(ctx: ContextKey) -> float:
        # Benefit of inlining a call site scales with how often the call
        # executes (call elimination + specialization opportunity) — not
        # with how many samples its body burns: a dispatch loop calling a
        # huge service 300 times is a cold call site even though the service
        # dominates the profile.  The context's entry-probe count (probe 1)
        # is the exact execution count, and is available even when the
        # profiling binary had already inlined the callee (no physical call
        # branch -> no head samples).
        record = profile.contexts.get(ctx)
        if record is None:
            return 0.0
        return max(record.head, record.body.get(ENTRY_PROBE_ID, 0.0))

    while candidates and func_size < config.caller_size_limit:
        candidates.sort(key=hotness_of)
        candidate = candidates.pop()  # most beneficial first
        if candidate in decided:
            continue
        decided.add(candidate)
        samples = profile.get_or_create(candidate)
        hotness = hotness_of(candidate)
        # Cost the *whole hot chain* the mark would pull in, not just the
        # candidate's exclusive bytes: inlining a mid-level callee into a
        # service drags its own hot inlinees along, and that is what must
        # fit the threshold (this is what keeps inlining rooted at the
        # right level and Fig. 7's code size smaller, not bigger).
        size = _subtree_size(profile, sizes, candidate, config)
        if should_inline(size, hotness, total_samples, config):
            samples.attributes.add(ATTR_SHOULD_INLINE)
            func_size += size
            decisions.append(PreInlineDecision(candidate, True, size,
                                               hotness))
            candidates.extend(c for c in profile.children_of(candidate)
                              if c not in decided)
        else:
            decisions.append(PreInlineDecision(candidate, False, size,
                                               hotness))
            # Not inlined here: the callee stays outlined, so its samples —
            # and its entire context subtree — belong to the callee's own
            # scope (MoveContextProfileToBaseProfile, generalized to the
            # subtree).  The callee's base instance, processed later in
            # top-down order, decides inlining *into* the outlined copy.
            profile.promote_subtree(candidate)
