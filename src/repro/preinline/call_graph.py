"""Profiled call graph and its top-down traversal order (Algorithm 2 input).

Built from the context profile itself: every context ``[... @ F:site @ G]``
contributes an F -> G edge weighted by the context's total samples; base
profiles contribute edges from their recorded call targets.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from ..profile.profiles import ContextProfile


def profiled_call_graph(profile: ContextProfile) -> "nx.DiGraph":
    graph = nx.DiGraph()
    for context, samples in profile.contexts.items():
        leaf = samples.name
        graph.add_node(leaf)
        if len(context) >= 2:
            caller = context[-2][0]
            weight = samples.total
            if graph.has_edge(caller, leaf):
                graph[caller][leaf]["weight"] += weight
            else:
                graph.add_edge(caller, leaf, weight=weight)
        for targets in samples.calls.values():
            for callee, count in targets.items():
                if graph.has_edge(leaf, callee):
                    graph[leaf][callee]["weight"] += count
                else:
                    graph.add_edge(leaf, callee, weight=count)
    return graph


def top_down_order(graph: "nx.DiGraph") -> List[str]:
    """Callers before callees; cycles (SCCs) flattened in stable order."""
    condensation = nx.condensation(graph)
    order: List[str] = []
    for scc_id in nx.topological_sort(condensation):
        order.extend(sorted(condensation.nodes[scc_id]["members"]))
    return order
