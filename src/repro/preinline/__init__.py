"""Context-sensitive pre-inliner (paper Algorithms 2 and 3)."""

from .call_graph import profiled_call_graph, top_down_order
from .preinliner import (PreInlineDecision, PreInlinerConfig, run_preinliner,
                         should_inline)
from .size_extractor import SizeTable, extract_function_sizes

__all__ = [
    "PreInlineDecision", "PreInlinerConfig", "SizeTable",
    "extract_function_sizes", "profiled_call_graph", "run_preinliner",
    "should_inline", "top_down_order",
]
