"""Algorithm 3: context-sensitive inline cost from the profiling binary.

The pre-inliner needs the *cost* of inlining a callee in a given context.
Early-IR size estimates are unreliable; the paper instead measures the actual
machine-code bytes of each (possibly inlined) function copy in the profiling
binary: "extracted size can often accurately tell the pre-inliner that
certain functions will eventually be fully optimized away".

Every machine instruction is attributed to the probe inline chain of its
block's probe anchor (self-describing, see DESIGN.md sec. 5), giving
``FuncSizeForContext`` keyed by (function, callsite) chains exactly like
profile contexts.  Zero entries are created for every prefix of an observed
chain (Algorithm 3 lines 8-13) so lookups distinguish "copy fully optimized
away" (0) from "never inlined here" (miss).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..codegen.binary import Binary
from ..profile.context import ContextKey, base_context


class SizeTable:
    """``FuncSizeForContext`` plus fallback queries for the pre-inliner."""

    def __init__(self) -> None:
        self.size_for_context: Dict[ContextKey, int] = {}
        #: Sum and count per leaf function, for the averaging fallback.
        self._leaf_totals: Dict[str, List[int]] = {}

    def record(self, context: ContextKey, size: int) -> None:
        self.size_for_context[context] = (
            self.size_for_context.get(context, 0) + size)

    def ensure(self, context: ContextKey) -> None:
        self.size_for_context.setdefault(context, 0)

    def finalize(self) -> None:
        self._leaf_totals.clear()
        for context, size in self.size_for_context.items():
            leaf = context[-1][0]
            entry = self._leaf_totals.setdefault(leaf, [0, 0])
            entry[0] += size
            entry[1] += 1

    def size_for(self, context: ContextKey) -> Optional[int]:
        """Specialized size if this exact context existed in the profiling
        binary; else the standalone copy's size; else the average over all
        observed copies; else None (function never emitted)."""
        exact = self.size_for_context.get(context)
        if exact is not None:
            return exact
        leaf = context[-1][0]
        standalone = self.size_for_context.get(base_context(leaf))
        if standalone is not None:
            return standalone
        totals = self._leaf_totals.get(leaf)
        if totals and totals[1]:
            return totals[0] // totals[1]
        return None


def extract_function_sizes(binary: Binary) -> SizeTable:
    """Run Algorithm 3 over the profiling binary.

    The current inline context per binary function is tracked from the most
    recent probe anchor: a probe record carries both its lexical owner (the
    leaf function the following bytes belong to) and its call-site chain.
    Bytes before the first probe of a function belong to the function itself.
    """
    table = SizeTable()
    #: binary function -> (callsite chain, leaf function name)
    current: Dict[str, Tuple[tuple, str]] = {}
    for minstr in binary.instrs:
        func = minstr.func
        if minstr.probes:
            record = minstr.probes[-1]
            leaf = binary.guid_to_name.get(record.guid, func)
            current[func] = (record.inline_stack, leaf)
        chain, leaf = current.get(func, ((), func))
        context = _chain_to_context(binary, chain, leaf)
        table.record(context, minstr.size)
        # Algorithm 3's prefix materialization: guarantee entries for every
        # enclosing context so "optimized away" reads as 0, not as a miss.
        prefix = context
        while len(prefix) > 1:
            caller, _site = prefix[-2]
            prefix = prefix[:-2] + ((caller, None),)
            table.ensure(prefix)
    table.finalize()
    return table


def _chain_to_context(binary: Binary, chain: tuple, leaf: str) -> ContextKey:
    if not chain:
        return base_context(leaf)
    names: List[Tuple[str, Optional[int]]] = [
        (binary.guid_to_name.get(g, f"guid:{g:x}"), pid) for g, pid in chain]
    return tuple(names) + ((leaf, None),)
