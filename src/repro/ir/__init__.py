"""IR substrate: instructions, blocks, functions, modules, analyses.

This package models the compiler-internal program representation the paper's
techniques operate on.  See DESIGN.md sec. 2 for how it maps to LLVM.
"""

from .builder import FunctionBuilder, ModuleBuilder
from .cfg import (Loop, back_edges, dominators, immediate_dominators,
                  is_reducible, loop_exits, natural_loops, predecessors_map,
                  reachable_blocks, reverse_post_order, successors_map)
from .checksum import cfg_checksum
from .debug_info import DebugLoc, InlineSite
from .function import BasicBlock, Function, Module, function_guid
from .instructions import (BINARY_OPS, CMP_PREDS, Assign, BinOp, Br, Call,
                           Cmp, CondBr, Instr, InstrProfIncrement, Load,
                           Operand, PseudoProbe, Ret, Select, Store, is_real,
                           is_reg)
from .interpreter import (ExecutionLimitExceeded, IRExecutionResult,
                          IRInterpreter)
from .printer import print_function, print_module
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Assign", "BINARY_OPS", "BasicBlock", "BinOp", "Br", "CMP_PREDS", "Call",
    "Cmp", "CondBr", "DebugLoc", "ExecutionLimitExceeded", "Function",
    "FunctionBuilder", "IRExecutionResult", "IRInterpreter", "InlineSite",
    "Instr", "InstrProfIncrement", "Load", "Loop", "Module", "ModuleBuilder",
    "Operand", "PseudoProbe", "Ret", "Select", "Store", "VerificationError",
    "back_edges", "cfg_checksum", "dominators", "function_guid",
    "immediate_dominators", "is_real", "is_reducible", "is_reg",
    "loop_exits", "natural_loops", "predecessors_map", "print_function",
    "print_module", "reachable_blocks", "reverse_post_order",
    "successors_map", "verify_function", "verify_module",
]
