"""Basic blocks, functions and modules.

A :class:`Function` is an ordered list of :class:`BasicBlock`; the first block
is the entry.  Block order is meaningful — it is the layout order codegen uses
until the Ext-TSP layout pass reorders it.  A :class:`Module` is a set of
functions plus global arrays, mirroring one linked program.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional

from .instructions import (Br, Call, CondBr, Instr, PseudoProbe, Ret,
                           TERMINATORS)


def function_guid(name: str) -> int:
    """Stable 64-bit GUID for a function name (MD5-based, like LLVM's)."""
    digest = hashlib.md5(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class BasicBlock:
    """A labelled straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("label", "instrs", "count", "is_cold")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None):
        self.label = label
        self.instrs = instrs if instrs is not None else []
        #: Profile-annotated execution count (None = no profile).
        self.count: Optional[float] = None
        #: Set by the hot/cold splitter; codegen places cold blocks far away.
        self.is_cold = False

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} has no terminator")
        return self.instrs[-1]

    def successors(self) -> List[str]:
        term = self.instrs[-1] if self.instrs else None
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            if term.true_target == term.false_target:
                return [term.true_target]
            return [term.true_target, term.false_target]
        return []

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        return self.instrs[:-1] if self.instrs and self.instrs[-1].is_terminator else list(self.instrs)

    def probes(self) -> List[PseudoProbe]:
        return [i for i in self.instrs if isinstance(i, PseudoProbe)]

    def calls(self) -> List[Call]:
        return [i for i in self.instrs if isinstance(i, Call)]

    def clone(self, new_label: Optional[str] = None) -> "BasicBlock":
        bb = BasicBlock(new_label or self.label, [i.clone() for i in self.instrs])
        bb.count = self.count
        bb.is_cold = self.is_cold
        return bb

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instrs)} instrs)>"


class Function:
    """An IR function: parameters, local arrays, and an ordered block list."""

    def __init__(self, name: str, params: Optional[List[str]] = None):
        self.name = name
        self.guid = function_guid(name)
        self.params: List[str] = list(params or [])
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}
        #: Local arrays: name -> size in elements.
        self.local_arrays: Dict[str, int] = {}
        #: Entry count from profile annotation (None = no profile).
        self.entry_count: Optional[float] = None
        #: CFG checksum persisted at probe-insertion time (see ir.checksum).
        self.probe_checksum: Optional[int] = None
        #: Marks functions the hot/cold splitter produced.
        self.is_cold_split = False
        #: Inlining barrier (noinline attribute / cross-module boundary).
        self.noinline = False

    # -- block management -------------------------------------------------
    def add_block(self, block: BasicBlock, after: Optional[str] = None) -> BasicBlock:
        if block.label in self._by_label:
            raise ValueError(f"duplicate block label {block.label} in {self.name}")
        if after is None:
            self.blocks.append(block)
        else:
            idx = self.blocks.index(self._by_label[after])
            self.blocks.insert(idx + 1, block)
        self._by_label[block.label] = block
        return block

    def remove_block(self, label: str) -> None:
        block = self._by_label.pop(label)
        self.blocks.remove(block)

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reindex(self) -> None:
        """Rebuild the label map after in-place relabeling or reordering."""
        self._by_label = {b.label: b for b in self.blocks}

    def fresh_label(self, hint: str = "bb") -> str:
        i = len(self.blocks)
        while f"{hint}{i}" in self._by_label:
            i += 1
        return f"{hint}{i}"

    # -- queries -----------------------------------------------------------
    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def callees(self) -> List[str]:
        return [i.callee for i in self.instructions() if isinstance(i, Call)]

    def fresh_reg(self, hint: str = "t") -> str:
        taken = set()
        for instr in self.instructions():
            defined = instr.defined()
            if defined:
                taken.add(defined)
        taken.update(self.params)
        i = 0
        while f"%{hint}{i}" in taken:
            i += 1
        return f"%{hint}{i}"

    def clone(self, new_name: Optional[str] = None) -> "Function":
        fn = Function(new_name or self.name, list(self.params))
        if new_name is None:
            fn.guid = self.guid
        fn.local_arrays = dict(self.local_arrays)
        fn.entry_count = self.entry_count
        fn.probe_checksum = self.probe_checksum
        fn.is_cold_split = self.is_cold_split
        fn.noinline = self.noinline
        for block in self.blocks:
            fn.add_block(block.clone())
        return fn

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A linked program: functions plus global arrays."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        #: Global arrays: name -> size in elements.
        self.global_arrays: Dict[str, int] = {}
        self.entry_function = "main"
        #: Set by profile annotation (repro.profile.summary.ProfileSummary).
        self.profile_summary = None
        #: GUID -> name and GUID -> CFG checksum recorded at pseudo-probe
        #: insertion time.  Kept module-level so the probe metadata section
        #: can resolve inlined-away functions even after dead-function
        #: elimination removed their standalone copies.
        self.probe_guid_names: Dict[int, str] = {}
        self.probe_guid_checksums: Dict[int, int] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def guid_map(self) -> Dict[int, str]:
        return {fn.guid: name for name, fn in self.functions.items()}

    def clone(self) -> "Module":
        mod = Module(self.name)
        mod.global_arrays = dict(self.global_arrays)
        mod.entry_function = self.entry_function
        mod.profile_summary = self.profile_summary
        mod.probe_guid_names = dict(self.probe_guid_names)
        mod.probe_guid_checksums = dict(self.probe_guid_checksums)
        for fn in self.functions.values():
            mod.add_function(fn.clone())
        return mod

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"
