"""Debug-location model (a DWARF-like source attribution for IR and machine code).

Sampling-based PGO (AutoFDO) correlates binary samples back to source using
debug locations: a source line, a discriminator distinguishing multiple paths
on the same line, and an inline stack recording the chain of call sites through
which an instruction was inlined.  The paper (sec. II.A, III.A) attributes most
of AutoFDO's profile-quality loss to optimizations degrading exactly this
information, which is why this module models it explicitly rather than as an
opaque tag.
"""

from __future__ import annotations

from typing import Optional, Tuple


class InlineSite:
    """One frame of an inline stack: ``callee`` was inlined at ``line`` of caller.

    ``callsite_line`` is the source line of the call instruction in the
    (transitive) caller; ``callee`` is the name of the function whose body the
    instruction originally came from.  A full inline stack is an outermost-first
    tuple of these sites, mirroring DWARF's DW_TAG_inlined_subroutine chain.
    """

    __slots__ = ("callee", "callsite_line", "callsite_discriminator")

    def __init__(self, callee: str, callsite_line: int, callsite_discriminator: int = 0):
        self.callee = callee
        self.callsite_line = callsite_line
        self.callsite_discriminator = callsite_discriminator

    def key(self) -> Tuple[str, int, int]:
        return (self.callee, self.callsite_line, self.callsite_discriminator)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InlineSite) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"InlineSite({self.callee!r}@{self.callsite_line}.{self.callsite_discriminator})"


class DebugLoc:
    """A source location: function-relative line, discriminator, inline stack.

    Lines are *function relative offsets* (AutoFDO's trick to survive code
    motion of whole functions within a file), starting at 1 for the first
    statement of the function.  ``inline_stack`` is outermost-first; empty for
    code still attributed to its lexical function.
    """

    __slots__ = ("line", "discriminator", "inline_stack")

    def __init__(
        self,
        line: int,
        discriminator: int = 0,
        inline_stack: Tuple[InlineSite, ...] = (),
    ):
        self.line = line
        self.discriminator = discriminator
        self.inline_stack = tuple(inline_stack)

    def key(self) -> tuple:
        return (self.line, self.discriminator, tuple(s.key() for s in self.inline_stack))

    def with_line(self, line: int) -> "DebugLoc":
        return DebugLoc(line, self.discriminator, self.inline_stack)

    def with_discriminator(self, disc: int) -> "DebugLoc":
        return DebugLoc(self.line, disc, self.inline_stack)

    def pushed_into(self, site: InlineSite) -> "DebugLoc":
        """Return the location after inlining: ``site`` is prepended outermost."""
        return DebugLoc(self.line, self.discriminator, (site,) + self.inline_stack)

    def leaf_function(self, root: str) -> str:
        """Name of the function this location lexically belongs to."""
        if self.inline_stack:
            return self.inline_stack[-1].callee
        return root

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DebugLoc) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        stack = "".join(f"@{s.callee}:{s.callsite_line}" for s in self.inline_stack)
        return f"!{self.line}.{self.discriminator}{stack}"


UNKNOWN_LOC: Optional[DebugLoc] = None
