"""Reference IR interpreter.

Executes a :class:`~repro.ir.function.Module` directly at the IR level.  This
is the *semantic oracle*: the machine-level executor in :mod:`repro.hw` must
produce identical results for the same program and inputs, which the test
suite checks by differential testing.  It also collects exact per-block
execution counts, used as ground truth in profile-quality tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from .function import Function, Module
from .instructions import (Assign, BinOp, Br, Call, Cmp, CondBr,
                           InstrProfIncrement, Load, PseudoProbe, Ret, Select,
                           Store)
from .semantics import eval_binop, eval_cmp, wrap_index


class ExecutionLimitExceeded(Exception):
    """Raised when an execution exceeds the configured step budget."""


class IRExecutionResult:
    """Outcome of one IR-level execution."""

    def __init__(self) -> None:
        self.return_value: Optional[int] = None
        self.steps = 0
        #: Exact execution count per (function, block label).
        self.block_counts: Counter = Counter()
        #: Exact taken count per (function, from_label, to_label) CFG edge.
        self.edge_counts: Counter = Counter()
        #: Counter values from InstrProfIncrement intrinsics: (func, id) -> count.
        self.instr_counters: Counter = Counter()
        #: Call counts per (caller, caller_block, callee).
        self.call_counts: Counter = Counter()


class IRInterpreter:
    """Interprets IR modules with a step budget and bounded call stack."""

    def __init__(self, module: Module, max_steps: int = 10_000_000,
                 max_call_depth: int = 256):
        self.module = module
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.globals: Dict[str, List[int]] = {
            name: [0] * size for name, size in module.global_arrays.items()}

    def run(self, args: Sequence[int] = (), entry: Optional[str] = None) -> IRExecutionResult:
        result = IRExecutionResult()
        entry_name = entry or self.module.entry_function
        result.return_value = self._call(self.module.function(entry_name),
                                         list(args), result, depth=0)
        return result

    def _call(self, fn: Function, args: List[int], result: IRExecutionResult,
              depth: int) -> Optional[int]:
        if depth > self.max_call_depth:
            raise ExecutionLimitExceeded(f"call depth > {self.max_call_depth}")
        regs: Dict[str, int] = {}
        for param, value in zip(fn.params, args):
            regs[param] = value
        for param in fn.params[len(args):]:
            regs[param] = 0
        locals_mem: Dict[str, List[int]] = {
            name: [0] * size for name, size in fn.local_arrays.items()}

        def value_of(operand) -> int:
            if isinstance(operand, str):
                return regs.get(operand, 0)
            return operand

        def array_of(name: str) -> List[int]:
            if name in locals_mem:
                return locals_mem[name]
            return self.globals[name]

        block = fn.entry
        prev_label: Optional[str] = None
        while True:
            result.block_counts[(fn.name, block.label)] += 1
            if prev_label is not None:
                result.edge_counts[(fn.name, prev_label, block.label)] += 1
            for instr in block.instrs:
                result.steps += 1
                if result.steps > self.max_steps:
                    raise ExecutionLimitExceeded(f"steps > {self.max_steps}")
                if isinstance(instr, Assign):
                    regs[instr.dst] = value_of(instr.src)
                elif isinstance(instr, BinOp):
                    regs[instr.dst] = eval_binop(instr.op, value_of(instr.lhs),
                                                 value_of(instr.rhs))
                elif isinstance(instr, Cmp):
                    regs[instr.dst] = eval_cmp(instr.pred, value_of(instr.lhs),
                                               value_of(instr.rhs))
                elif isinstance(instr, Select):
                    regs[instr.dst] = (value_of(instr.tval) if value_of(instr.cond)
                                       else value_of(instr.fval))
                elif isinstance(instr, Load):
                    arr = array_of(instr.array)
                    regs[instr.dst] = arr[wrap_index(value_of(instr.index), len(arr))]
                elif isinstance(instr, Store):
                    arr = array_of(instr.array)
                    arr[wrap_index(value_of(instr.index), len(arr))] = value_of(instr.value)
                elif isinstance(instr, Call):
                    result.call_counts[(fn.name, block.label, instr.callee)] += 1
                    callee = self.module.function(instr.callee)
                    ret = self._call(callee, [value_of(a) for a in instr.args],
                                     result, depth + 1)
                    if instr.dst is not None:
                        regs[instr.dst] = ret if ret is not None else 0
                elif isinstance(instr, Br):
                    prev_label = block.label
                    block = fn.block(instr.target)
                    break
                elif isinstance(instr, CondBr):
                    prev_label = block.label
                    target = (instr.true_target if value_of(instr.cond)
                              else instr.false_target)
                    block = fn.block(target)
                    break
                elif isinstance(instr, Ret):
                    return value_of(instr.value) if instr.value is not None else None
                elif isinstance(instr, InstrProfIncrement):
                    result.instr_counters[(instr.func_name, instr.counter_id)] += 1
                elif isinstance(instr, PseudoProbe):
                    pass  # zero-cost by construction
                else:
                    raise TypeError(f"unhandled instruction {instr!r}")
            else:
                raise RuntimeError(f"block {fn.name}/{block.label} fell through")
