"""IR instruction set.

The IR is a register machine over 64-bit integers: unbounded virtual registers
(operands spelled as strings beginning with ``%``), integer constants (plain
Python ints), named memory arrays with wrap-around indexing, direct calls,
and structured terminators.  It is deliberately *not* SSA: optimizations in
:mod:`repro.opt` are written against a mutable register machine, which keeps
transformations like tail merge and if-convert (the ones that damage profile
correlation in the paper) straightforward to express.

Two intrinsic instructions mirror the paper's correlation anchors (Fig. 2):

* :class:`PseudoProbe` — CSSPGO's pseudo-instrumentation intrinsic.  Lowers to
  *metadata only* (no machine instruction), blocks cross-block code merge, may
  be freely duplicated.
* :class:`InstrProfIncrement` — traditional instrumentation.  Lowers to a real
  counter-increment machine instruction and acts as a strong optimization
  barrier.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .debug_info import DebugLoc

Operand = Union[str, int]  # "%reg" or immediate constant

BINARY_OPS = frozenset({"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr"})
CMP_PREDS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge"})


def is_reg(operand: Operand) -> bool:
    """True when *operand* names a virtual register rather than a constant."""
    return isinstance(operand, str)


class Instr:
    """Base class of all IR instructions.

    Subclasses expose a uniform interface used by optimization passes:
    ``uses()`` (registers read), ``defined()`` (register written or None),
    ``clone()`` (deep copy), and ``replace_uses(mapping)``.
    """

    __slots__ = ("dloc",)
    opcode = "instr"
    is_terminator = False
    has_side_effects = False

    def __init__(self, dloc: Optional[DebugLoc] = None):
        self.dloc = dloc

    def uses(self) -> List[str]:
        return []

    def defined(self) -> Optional[str]:
        return None

    def clone(self) -> "Instr":
        raise NotImplementedError

    def replace_uses(self, mapping: dict) -> None:
        """Rewrite register operands according to ``mapping`` (old -> new)."""

    def _fmt_loc(self) -> str:
        return f"  ; {self.dloc!r}" if self.dloc is not None else ""


def _map_op(operand: Operand, mapping: dict) -> Operand:
    if isinstance(operand, str):
        return mapping.get(operand, operand)
    return operand


class Assign(Instr):
    """``dst = src`` register/constant copy."""

    __slots__ = ("dst", "src")
    opcode = "mov"

    def __init__(self, dst: str, src: Operand, dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.dst = dst
        self.src = src

    def uses(self) -> List[str]:
        return [self.src] if is_reg(self.src) else []

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "Assign":
        return Assign(self.dst, self.src, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.src = _map_op(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = mov {self.src}{self._fmt_loc()}"


class BinOp(Instr):
    """``dst = lhs <op> rhs`` for an arithmetic/logical *op* in :data:`BINARY_OPS`."""

    __slots__ = ("op", "dst", "lhs", "rhs")
    opcode = "binop"

    def __init__(self, op: str, dst: str, lhs: Operand, rhs: Operand,
                 dloc: Optional[DebugLoc] = None):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(dloc)
        self.op = op
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def uses(self) -> List[str]:
        return [x for x in (self.lhs, self.rhs) if is_reg(x)]

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.dst, self.lhs, self.rhs, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.lhs = _map_op(self.lhs, mapping)
        self.rhs = _map_op(self.rhs, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}{self._fmt_loc()}"


class Cmp(Instr):
    """``dst = lhs <pred> rhs`` producing 0/1, *pred* in :data:`CMP_PREDS`."""

    __slots__ = ("pred", "dst", "lhs", "rhs")
    opcode = "cmp"

    def __init__(self, pred: str, dst: str, lhs: Operand, rhs: Operand,
                 dloc: Optional[DebugLoc] = None):
        if pred not in CMP_PREDS:
            raise ValueError(f"unknown compare predicate {pred!r}")
        super().__init__(dloc)
        self.pred = pred
        self.dst = dst
        self.lhs = lhs
        self.rhs = rhs

    def uses(self) -> List[str]:
        return [x for x in (self.lhs, self.rhs) if is_reg(x)]

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "Cmp":
        return Cmp(self.pred, self.dst, self.lhs, self.rhs, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.lhs = _map_op(self.lhs, mapping)
        self.rhs = _map_op(self.rhs, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = cmp {self.pred} {self.lhs}, {self.rhs}{self._fmt_loc()}"


class Select(Instr):
    """``dst = cond ? tval : fval`` — produced by if-conversion."""

    __slots__ = ("dst", "cond", "tval", "fval")
    opcode = "select"

    def __init__(self, dst: str, cond: Operand, tval: Operand, fval: Operand,
                 dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.dst = dst
        self.cond = cond
        self.tval = tval
        self.fval = fval

    def uses(self) -> List[str]:
        return [x for x in (self.cond, self.tval, self.fval) if is_reg(x)]

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "Select":
        return Select(self.dst, self.cond, self.tval, self.fval, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.cond = _map_op(self.cond, mapping)
        self.tval = _map_op(self.tval, mapping)
        self.fval = _map_op(self.fval, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = select {self.cond}, {self.tval}, {self.fval}{self._fmt_loc()}"


class Load(Instr):
    """``dst = array[index]`` with wrap-around indexing (index taken mod size)."""

    __slots__ = ("dst", "array", "index")
    opcode = "load"
    has_side_effects = False

    def __init__(self, dst: str, array: str, index: Operand,
                 dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.dst = dst
        self.array = array
        self.index = index

    def uses(self) -> List[str]:
        return [self.index] if is_reg(self.index) else []

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "Load":
        return Load(self.dst, self.array, self.index, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.index = _map_op(self.index, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = load {self.array}[{self.index}]{self._fmt_loc()}"


class Store(Instr):
    """``array[index] = value`` with wrap-around indexing."""

    __slots__ = ("array", "index", "value")
    opcode = "store"
    has_side_effects = True

    def __init__(self, array: str, index: Operand, value: Operand,
                 dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.array = array
        self.index = index
        self.value = value

    def uses(self) -> List[str]:
        return [x for x in (self.index, self.value) if is_reg(x)]

    def clone(self) -> "Store":
        return Store(self.array, self.index, self.value, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.index = _map_op(self.index, mapping)
        self.value = _map_op(self.value, mapping)

    def __repr__(self) -> str:
        return f"store {self.array}[{self.index}] = {self.value}{self._fmt_loc()}"


class Call(Instr):
    """``dst = call callee(args...)`` — direct call; ``dst`` may be None.

    ``probe_id`` is assigned by pseudo-probe insertion: call sites receive
    their own probe ids (distinct from block probes) so that inline contexts
    can be spelled as chains of ``(caller_guid, callsite_probe_id)`` exactly
    as LLVM's CSSPGO encodes them.
    """

    __slots__ = ("dst", "callee", "args", "probe_id", "lexical_guid",
                 "inline_probe_stack")
    opcode = "call"
    has_side_effects = True

    def __init__(self, dst: Optional[str], callee: str, args: Sequence[Operand],
                 dloc: Optional[DebugLoc] = None, probe_id: Optional[int] = None,
                 lexical_guid: Optional[int] = None,
                 inline_probe_stack: Tuple[Tuple[int, int], ...] = ()):
        super().__init__(dloc)
        self.dst = dst
        self.callee = callee
        self.args = list(args)
        # Probe identity of this call site: ``probe_id`` in the namespace of
        # ``lexical_guid`` (the function the call lexically belongs to), under
        # the inline chain ``inline_probe_stack`` (outermost-first
        # (guid, callsite_probe_id) pairs accumulated by the inliner).
        self.probe_id = probe_id
        self.lexical_guid = lexical_guid
        self.inline_probe_stack = tuple(inline_probe_stack)

    def probe_context(self) -> Tuple[Tuple[int, int], ...]:
        """Full probe-context chain identifying this call site, or () if the
        module is not probe-instrumented."""
        if self.probe_id is None or self.lexical_guid is None:
            return ()
        return self.inline_probe_stack + ((self.lexical_guid, self.probe_id),)

    def uses(self) -> List[str]:
        return [a for a in self.args if is_reg(a)]

    def defined(self) -> Optional[str]:
        return self.dst

    def clone(self) -> "Call":
        return Call(self.dst, self.callee, list(self.args), self.dloc,
                    self.probe_id, self.lexical_guid, self.inline_probe_stack)

    def replace_uses(self, mapping: dict) -> None:
        self.args = [_map_op(a, mapping) for a in self.args]

    def __repr__(self) -> str:
        lhs = f"{self.dst} = " if self.dst else ""
        return f"{lhs}call {self.callee}({', '.join(map(str, self.args))}){self._fmt_loc()}"


class Br(Instr):
    """Unconditional branch to block ``target``."""

    __slots__ = ("target",)
    opcode = "br"
    is_terminator = True

    def __init__(self, target: str, dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.target = target

    def clone(self) -> "Br":
        return Br(self.target, self.dloc)

    def __repr__(self) -> str:
        return f"br {self.target}{self._fmt_loc()}"


class CondBr(Instr):
    """Conditional branch: to ``true_target`` when ``cond`` is nonzero."""

    __slots__ = ("cond", "true_target", "false_target")
    opcode = "condbr"
    is_terminator = True

    def __init__(self, cond: Operand, true_target: str, false_target: str,
                 dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.cond = cond
        self.true_target = true_target
        self.false_target = false_target

    def uses(self) -> List[str]:
        return [self.cond] if is_reg(self.cond) else []

    def clone(self) -> "CondBr":
        return CondBr(self.cond, self.true_target, self.false_target, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        self.cond = _map_op(self.cond, mapping)

    def __repr__(self) -> str:
        return f"br {self.cond}, {self.true_target}, {self.false_target}{self._fmt_loc()}"


class Ret(Instr):
    """Return ``value`` (may be a constant, register, or None for void)."""

    __slots__ = ("value",)
    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Operand] = None, dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.value = value

    def uses(self) -> List[str]:
        return [self.value] if is_reg(self.value) else []

    def clone(self) -> "Ret":
        return Ret(self.value, self.dloc)

    def replace_uses(self, mapping: dict) -> None:
        if self.value is not None:
            self.value = _map_op(self.value, mapping)

    def __repr__(self) -> str:
        return f"ret {self.value}{self._fmt_loc()}"


class PseudoProbe(Instr):
    """CSSPGO pseudo-instrumentation intrinsic (paper sec. III.A).

    ``guid`` identifies the lexical function the probe instruments, ``probe_id``
    the basic block within it.  ``inline_stack`` mirrors DebugLoc inline stacks
    but carries *probe* call-site ids instead of lines: a tuple of
    ``(caller_guid, callsite_probe_id)`` outermost-first, appended to as the
    inliner clones the probe into callers.  The probe never lowers to a machine
    instruction; codegen materializes it as metadata attached to the address of
    the next real instruction.
    """

    __slots__ = ("guid", "probe_id", "inline_stack", "dangling")
    opcode = "pseudoprobe"
    has_side_effects = True  # models "memory intrinsic" semantics: not DCE-able

    def __init__(self, guid: int, probe_id: int,
                 inline_stack: Tuple[Tuple[int, int], ...] = (),
                 dangling: bool = False,
                 dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.guid = guid
        self.probe_id = probe_id
        self.inline_stack = tuple(inline_stack)
        self.dangling = dangling

    def clone(self) -> "PseudoProbe":
        return PseudoProbe(self.guid, self.probe_id, self.inline_stack,
                           self.dangling, self.dloc)

    def probe_key(self) -> tuple:
        return (self.guid, self.probe_id, self.inline_stack)

    def __repr__(self) -> str:
        stack = "".join(f"@{g:x}:{i}" for g, i in self.inline_stack)
        tag = " dangling" if self.dangling else ""
        return f"pseudoprobe {self.guid:x}:{self.probe_id}{stack}{tag}{self._fmt_loc()}"


class InstrProfIncrement(Instr):
    """Traditional instrumentation intrinsic: increments counter ``counter_id``
    of ``func_name`` at run time.  Lowers to a real machine instruction and is
    a strong barrier: blocks in which distinct counters are incremented are
    never merged, and the intrinsic is never duplicated or hoisted.
    """

    __slots__ = ("func_name", "counter_id")
    opcode = "instrprof"
    has_side_effects = True

    def __init__(self, func_name: str, counter_id: int, dloc: Optional[DebugLoc] = None):
        super().__init__(dloc)
        self.func_name = func_name
        self.counter_id = counter_id

    def clone(self) -> "InstrProfIncrement":
        return InstrProfIncrement(self.func_name, self.counter_id, self.dloc)

    def __repr__(self) -> str:
        return f"instrprof.increment {self.func_name}#{self.counter_id}{self._fmt_loc()}"


TERMINATORS = (Br, CondBr, Ret)
PROBE_LIKE = (PseudoProbe, InstrProfIncrement)


def is_real(instr: Instr) -> bool:
    """True for instructions that lower to machine code (pseudo-probes do not)."""
    return not isinstance(instr, PseudoProbe)
