"""IR structural verifier.

Run after construction and between optimization passes in tests to catch
malformed IR early: missing/misplaced terminators, dangling branch targets,
unknown callees/arrays, and probe invariants.
"""

from __future__ import annotations

from typing import List, Optional

from .function import Function, Module
from .instructions import Call, CondBr, Br, InstrProfIncrement, Load, PseudoProbe, Store


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_function(fn: Function, module: Optional[Module] = None) -> None:
    errors: List[str] = []
    if not fn.blocks:
        errors.append(f"{fn.name}: function has no blocks")
    labels = {b.label for b in fn.blocks}
    if len(labels) != len(fn.blocks):
        errors.append(f"{fn.name}: duplicate block labels")
    for block in fn.blocks:
        if not block.instrs:
            errors.append(f"{fn.name}/{block.label}: empty block")
            continue
        if not block.instrs[-1].is_terminator:
            errors.append(f"{fn.name}/{block.label}: does not end with a terminator")
        for i, instr in enumerate(block.instrs):
            if instr.is_terminator and i != len(block.instrs) - 1:
                errors.append(f"{fn.name}/{block.label}: terminator mid-block at {i}")
            if isinstance(instr, (Br, CondBr)):
                for target in block.successors():
                    if target not in labels:
                        errors.append(f"{fn.name}/{block.label}: branch to unknown block {target}")
            if isinstance(instr, (Load, Store)):
                known = instr.array in fn.local_arrays or (
                    module is not None and instr.array in module.global_arrays)
                if module is not None and not known:
                    errors.append(f"{fn.name}/{block.label}: unknown array {instr.array}")
            if isinstance(instr, Call) and module is not None:
                if not module.has_function(instr.callee):
                    errors.append(f"{fn.name}/{block.label}: call to unknown function {instr.callee}")
            if isinstance(instr, PseudoProbe) and instr.guid != fn.guid and not instr.inline_stack:
                errors.append(
                    f"{fn.name}/{block.label}: top-level probe with foreign guid {instr.guid:x}")
    if errors:
        raise VerificationError("; ".join(errors))


def verify_module(module: Module) -> None:
    if module.entry_function not in module.functions:
        raise VerificationError(f"entry function {module.entry_function} not defined")
    for fn in module.functions.values():
        verify_function(fn, module)
