"""CFG analyses: predecessors, reverse post-order, dominators, natural loops.

These are the minimum analyses the optimization passes need.  They are
recomputed on demand (the IR is small enough that caching would only add
invalidation bugs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .function import BasicBlock, Function


def successors_map(fn: Function) -> Dict[str, List[str]]:
    return {b.label: b.successors() for b in fn.blocks}


def predecessors_map(fn: Function) -> Dict[str, List[str]]:
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block.label)
    return preds


def reverse_post_order(fn: Function) -> List[str]:
    """Labels of reachable blocks in reverse post-order from the entry."""
    visited: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(fn.block(label).successors()))]
        visited.add(label)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(fn.block(succ).successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.entry.label)
    order.reverse()
    return order


def reachable_blocks(fn: Function) -> Set[str]:
    return set(reverse_post_order(fn))


def dominators(fn: Function) -> Dict[str, Set[str]]:
    """Classic iterative dominator sets (block label -> set of dominators)."""
    rpo = reverse_post_order(fn)
    preds = predecessors_map(fn)
    all_blocks = set(rpo)
    dom: Dict[str, Set[str]] = {label: set(all_blocks) for label in rpo}
    entry = fn.entry.label
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            pred_doms = [dom[p] for p in preds[label] if p in all_blocks]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def immediate_dominators(fn: Function) -> Dict[str, Optional[str]]:
    """Immediate dominators (label -> idom label, entry -> None).

    Derived from the dominator sets: a block's idom is its deepest strict
    dominator, i.e. the strict dominator with the largest dominator set.
    """
    dom = dominators(fn)
    entry = fn.entry.label
    idom: Dict[str, Optional[str]] = {entry: None}
    for label, doms in dom.items():
        if label == entry:
            continue
        strict = doms - {label}
        idom[label] = max(strict, key=lambda d: (len(dom[d]), d))
    return idom


def back_edges(fn: Function) -> List[Tuple[str, str]]:
    """Edges ``(tail, header)`` whose target dominates their source."""
    dom = dominators(fn)
    edges = []
    for block in fn.blocks:
        if block.label not in dom:
            continue
        for succ in block.successors():
            if succ in dom[block.label]:
                edges.append((block.label, succ))
    return edges


def is_reducible(fn: Function) -> bool:
    """True when removing all back edges leaves the reachable CFG acyclic.

    All structured control flow (the workload generator emits only
    if/else and counted loops) is reducible; irreducible regions can only
    come from hand-built IR, and analyses that rely on loop nesting
    (frequency propagation, the profile linter's monotonicity rule) must
    degrade gracefully on them.
    """
    reachable = reachable_blocks(fn)
    removed = set(back_edges(fn))
    indegree: Dict[str, int] = {label: 0 for label in reachable}
    succs: Dict[str, List[str]] = {label: [] for label in reachable}
    for label in reachable:
        for succ in fn.block(label).successors():
            if succ in reachable and (label, succ) not in removed:
                succs[label].append(succ)
                indegree[succ] += 1
    worklist = [label for label, deg in sorted(indegree.items()) if deg == 0]
    seen = 0
    while worklist:
        current = worklist.pop()
        seen += 1
        for succ in succs[current]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                worklist.append(succ)
    return seen == len(reachable)


class Loop:
    """A natural loop: header plus body block labels (header included)."""

    __slots__ = ("header", "body", "latches")

    def __init__(self, header: str, body: Set[str], latches: Set[str]):
        self.header = header
        self.body = body
        self.latches = latches

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={sorted(self.body)}>"


def natural_loops(fn: Function) -> List[Loop]:
    """Find natural loops via back edges (tail dominated by head).

    Loops sharing a header are merged, matching LLVM's LoopInfo behaviour.
    """
    dom = dominators(fn)
    preds = predecessors_map(fn)
    reachable = set(dom)
    loops: Dict[str, Loop] = {}
    for block in fn.blocks:
        if block.label not in reachable:
            continue
        for succ in block.successors():
            if succ in dom[block.label]:  # back edge block -> succ
                header = succ
                body: Set[str] = {header, block.label}
                worklist = [block.label]
                while worklist:
                    current = worklist.pop()
                    if current == header:
                        continue
                    for pred in preds[current]:
                        if pred not in body and pred in reachable:
                            body.add(pred)
                            worklist.append(pred)
                if header in loops:
                    loops[header].body |= body
                    loops[header].latches.add(block.label)
                else:
                    loops[header] = Loop(header, body, {block.label})
    return list(loops.values())


def loop_exits(fn: Function, loop: Loop) -> List[Tuple[str, str]]:
    """Edges (from_label, to_label) leaving the loop body."""
    exits = []
    for label in loop.body:
        for succ in fn.block(label).successors():
            if succ not in loop.body:
                exits.append((label, succ))
    return exits
