"""Textual IR dump, for debugging and golden tests."""

from __future__ import annotations

from .function import Function, Module


def print_function(fn: Function) -> str:
    lines = [f"define {fn.name}({', '.join(fn.params)}) {{"]
    for array, size in sorted(fn.local_arrays.items()):
        lines.append(f"  local {array}[{size}]")
    for block in fn.blocks:
        count = f"  ; count={block.count:g}" if block.count is not None else ""
        lines.append(f"{block.label}:{count}")
        for instr in block.instrs:
            lines.append(f"  {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for array, size in sorted(module.global_arrays.items()):
        parts.append(f"global {array}[{size}]")
    for name in sorted(module.functions):
        parts.append(print_function(module.functions[name]))
    return "\n\n".join(parts)
