"""CFG-shape checksums for pseudo-probe profile matching (paper sec. III.A).

The paper mitigates *source drift* by persisting "a checksum reflecting the
shape of the IR control-flow graph" in the profile: CFG-altering source edits
invalidate the profile (detected as a checksum mismatch), while edits that do
not change the CFG — adding a comment, shifting line numbers — leave the
checksum intact and the probe-based profile remains fully usable.

The checksum therefore hashes only *structure*: the reachable blocks in a
canonical order, their branch shapes, call targets, and probe ids — never
source lines.
"""

from __future__ import annotations

import hashlib

from .cfg import reverse_post_order
from .function import Function
from .instructions import Call, CondBr, PseudoProbe, Ret


def cfg_checksum(fn: Function) -> int:
    """64-bit checksum of the function's CFG shape.

    Hashes, per reachable block in RPO: the probe ids placed in the block,
    the callee names of its calls, and the indices of its successors.  Line
    numbers and register names are deliberately excluded so that non-CFG source
    drift leaves the checksum unchanged.
    """
    rpo = reverse_post_order(fn)
    index = {label: i for i, label in enumerate(rpo)}
    hasher = hashlib.md5()
    for label in rpo:
        block = fn.block(label)
        hasher.update(str(index[label]).encode())
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe) and not instr.inline_stack:
                hasher.update(b"p%d" % instr.probe_id)
            elif isinstance(instr, Call):
                hasher.update(b"c" + instr.callee.encode())
            elif isinstance(instr, CondBr):
                hasher.update(b"?")
            elif isinstance(instr, Ret):
                hasher.update(b"r")
        for succ in block.successors():
            hasher.update(str(index.get(succ, -1)).encode())
        hasher.update(b"|")
    return int.from_bytes(hasher.digest()[:8], "little")
