"""Shared evaluation semantics for IR and machine-level interpreters.

Both interpreters must agree exactly (the test suite differential-tests them),
so the arithmetic rules live in one place:

* values are 64-bit two's-complement signed integers;
* division/remainder by zero yields 0 (a total definition so generated
  programs cannot trap);
* shift amounts are taken modulo 64;
* array indices wrap modulo the array size.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def to_i64(value: int) -> int:
    """Wrap a Python int to signed 64-bit."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def eval_binop(op: str, lhs: int, rhs: int) -> int:
    if op == "add":
        return to_i64(lhs + rhs)
    if op == "sub":
        return to_i64(lhs - rhs)
    if op == "mul":
        return to_i64(lhs * rhs)
    if op == "sdiv":
        if rhs == 0:
            return 0
        return to_i64(int(lhs / rhs))  # C-style truncating division
    if op == "srem":
        if rhs == 0:
            return 0
        return to_i64(lhs - int(lhs / rhs) * rhs)
    if op == "and":
        return to_i64(lhs & rhs)
    if op == "or":
        return to_i64(lhs | rhs)
    if op == "xor":
        return to_i64(lhs ^ rhs)
    if op == "shl":
        return to_i64(lhs << (rhs % 64))
    if op == "ashr":
        return to_i64(lhs >> (rhs % 64))
    raise ValueError(f"unknown binary op {op!r}")


def eval_cmp(pred: str, lhs: int, rhs: int) -> int:
    if pred == "eq":
        return int(lhs == rhs)
    if pred == "ne":
        return int(lhs != rhs)
    if pred == "slt":
        return int(lhs < rhs)
    if pred == "sle":
        return int(lhs <= rhs)
    if pred == "sgt":
        return int(lhs > rhs)
    if pred == "sge":
        return int(lhs >= rhs)
    raise ValueError(f"unknown compare predicate {pred!r}")


def wrap_index(index: int, size: int) -> int:
    return index % size if size > 0 else 0
