"""Fluent IR construction helper.

The builder tracks a current insertion block and auto-assigns source lines so
constructed functions come with realistic debug locations (each statement gets
the next function-relative line, the way a frontend would emit them).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .debug_info import DebugLoc
from .function import BasicBlock, Function, Module
from .instructions import (Assign, BinOp, Br, Call, Cmp, CondBr, Instr, Load,
                           Operand, Ret, Select, Store)


class FunctionBuilder:
    """Builds one function block-by-block with automatic line numbering."""

    def __init__(self, name: str, params: Optional[Sequence[str]] = None):
        self.fn = Function(name, list(params or []))
        self._current: Optional[BasicBlock] = None
        self._next_line = 1

    # -- blocks ------------------------------------------------------------
    def block(self, label: str) -> "FunctionBuilder":
        """Create block *label* and make it the insertion point."""
        self._current = self.fn.add_block(BasicBlock(label))
        return self

    def switch_to(self, label: str) -> "FunctionBuilder":
        self._current = self.fn.block(label)
        return self

    def _emit(self, instr: Instr) -> Instr:
        if self._current is None:
            raise ValueError("no current block; call .block(label) first")
        if instr.dloc is None:
            instr.dloc = DebugLoc(self._next_line)
            self._next_line += 1
        self._current.instrs.append(instr)
        return instr

    # -- instructions --------------------------------------------------------
    def mov(self, dst: str, src: Operand, line: Optional[int] = None) -> "FunctionBuilder":
        self._emit(Assign(dst, src, _loc(line)))
        return self

    def binop(self, op: str, dst: str, lhs: Operand, rhs: Operand,
              line: Optional[int] = None) -> "FunctionBuilder":
        self._emit(BinOp(op, dst, lhs, rhs, _loc(line)))
        return self

    def add(self, dst: str, lhs: Operand, rhs: Operand) -> "FunctionBuilder":
        return self.binop("add", dst, lhs, rhs)

    def sub(self, dst: str, lhs: Operand, rhs: Operand) -> "FunctionBuilder":
        return self.binop("sub", dst, lhs, rhs)

    def mul(self, dst: str, lhs: Operand, rhs: Operand) -> "FunctionBuilder":
        return self.binop("mul", dst, lhs, rhs)

    def cmp(self, pred: str, dst: str, lhs: Operand, rhs: Operand,
            line: Optional[int] = None) -> "FunctionBuilder":
        self._emit(Cmp(pred, dst, lhs, rhs, _loc(line)))
        return self

    def select(self, dst: str, cond: Operand, tval: Operand, fval: Operand) -> "FunctionBuilder":
        self._emit(Select(dst, cond, tval, fval))
        return self

    def load(self, dst: str, array: str, index: Operand) -> "FunctionBuilder":
        self._emit(Load(dst, array, index))
        return self

    def store(self, array: str, index: Operand, value: Operand) -> "FunctionBuilder":
        self._emit(Store(array, index, value))
        return self

    def call(self, dst: Optional[str], callee: str, args: Sequence[Operand] = ()) -> "FunctionBuilder":
        self._emit(Call(dst, callee, list(args)))
        return self

    def br(self, target: str) -> "FunctionBuilder":
        self._emit(Br(target))
        return self

    def condbr(self, cond: Operand, true_target: str, false_target: str) -> "FunctionBuilder":
        self._emit(CondBr(cond, true_target, false_target))
        return self

    def ret(self, value: Optional[Operand] = None) -> "FunctionBuilder":
        self._emit(Ret(value))
        return self

    def local_array(self, name: str, size: int) -> "FunctionBuilder":
        self.fn.local_arrays[name] = size
        return self

    def build(self) -> Function:
        return self.fn


def _loc(line: Optional[int]) -> Optional[DebugLoc]:
    return DebugLoc(line) if line is not None else None


class ModuleBuilder:
    """Builds a module out of :class:`FunctionBuilder` results."""

    def __init__(self, name: str = "module"):
        self.module = Module(name)

    def function(self, name: str, params: Optional[Sequence[str]] = None) -> FunctionBuilder:
        fb = FunctionBuilder(name, params)
        self.module.add_function(fb.fn)
        return fb

    def global_array(self, name: str, size: int) -> "ModuleBuilder":
        self.module.global_arrays[name] = size
        return self

    def build(self) -> Module:
        return self.module
