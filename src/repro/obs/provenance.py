"""Provenance manifests: which binary, which samples, which faults — for
every generated profile.

A production PGO service must answer "where did this profile come from and
can I trust it?" without re-running anything.  The manifest is that answer,
written alongside the profile text (``<profile>.manifest.json``):

* **binary identity** — :meth:`repro.codegen.binary.Binary.identity` of the
  profiled build, plus the identity stamped on the sample session;
* **perf lineage** — sample counts (total/unique/dedup ratio), PMU config,
  instructions retired, iteration count;
* **fault lineage** — the fault spec (if any) and the ground-truth
  injection digest, so corrupted-on-purpose profiles are self-describing;
* **fallback chain** — every degradation hop with its reason;
* **drop accounting** — ``correlate.drop.* / annotate.drop.* /
  profile.drop.*`` totals attributable to this profile;
* **quality** — scores from :mod:`repro.quality.overlap` (trim fidelity:
  block overlap of the final profile against its pre-trim form);
* **profile stats** — records / total samples / size / context depth.

``repro validate --manifest`` cross-checks a profile against its manifest;
``repro report`` renders the manifests carried by ``profile_generated``
events as the provenance table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from ..profile.profiles import ContextProfile, FlatProfile
from ..quality.overlap import block_overlap_program

MANIFEST_SCHEMA_VERSION = 1

#: Manifest file naming convention, shared by writer and readers.
MANIFEST_SUFFIX = ".manifest.json"

Profile = Union[FlatProfile, ContextProfile]


def manifest_path_for(profile_path: str) -> str:
    return profile_path + MANIFEST_SUFFIX


def profile_block_counts(profile: Profile) -> Dict[str, Dict[str, float]]:
    """Flatten a profile to ``{function: {body key: count}}``.

    Context profiles aggregate every context onto its leaf function, which
    makes pre-trim and post-trim profiles directly comparable with the
    block-overlap metric regardless of how contexts were merged.
    """
    out: Dict[str, Dict[str, float]] = {}
    if isinstance(profile, ContextProfile):
        records = profile.contexts.values()
    else:
        records = profile.functions.values()
    for samples in records:
        counts = out.setdefault(samples.name, {})
        for key, count in samples.body.items():
            label = str(key)
            counts[label] = counts.get(label, 0.0) + count
    return out


def trim_overlap_score(raw_counts: Dict[str, Dict[str, float]],
                       profile: Profile) -> float:
    """Block overlap D(P) of the final (trimmed) profile vs its raw form."""
    return block_overlap_program(profile_block_counts(profile), raw_counts)


class ProfileManifest:
    """Everything known about one generated profile's origin."""

    def __init__(self, *,
                 variant: str,
                 kind: str,
                 binary_identity: Optional[str] = None,
                 perf: Optional[Dict[str, Any]] = None,
                 faults: Optional[Dict[str, Any]] = None,
                 fallbacks: Optional[List[Dict[str, str]]] = None,
                 drops: Optional[Dict[str, int]] = None,
                 quality: Optional[Dict[str, float]] = None,
                 profile_stats: Optional[Dict[str, float]] = None,
                 created_at: Optional[float] = None,
                 shards: Optional[List[Dict[str, Any]]] = None):
        self.schema_version = MANIFEST_SCHEMA_VERSION
        self.variant = variant
        self.kind = kind  # dwarf | probe | context | instr
        self.binary_identity = binary_identity
        self.perf: Dict[str, Any] = perf or {}
        self.faults: Dict[str, Any] = faults or {}
        #: [{"from": variant, "to": variant, "reason": str}, ...]
        self.fallbacks: List[Dict[str, str]] = fallbacks or []
        self.drops: Dict[str, int] = drops or {}
        self.quality: Dict[str, float] = quality or {}
        self.profile_stats: Dict[str, float] = profile_stats or {}
        self.created_at = created_at
        #: Per-shard provenance of a sharded generation, in shard order:
        #: ``[{"shard": i, "samples": n, "used": n, "broken": n,
        #: "unique": n, "dropped": {reason: n}}, ...]``.  Empty for serial
        #: generation — the field is additive, so schema version 1 stands.
        self.shards: List[Dict[str, Any]] = shards or []

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "variant": self.variant,
            "kind": self.kind,
            "binary_identity": self.binary_identity,
            "perf": dict(self.perf),
            "faults": dict(self.faults),
            "fallbacks": [dict(hop) for hop in self.fallbacks],
            "drops": dict(self.drops),
            "quality": dict(self.quality),
            "profile_stats": dict(self.profile_stats),
            "created_at": self.created_at,
            "shards": [dict(shard) for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ProfileManifest":
        version = record.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema version {version!r} "
                f"(expected {MANIFEST_SCHEMA_VERSION})")
        for field in ("variant", "kind"):
            if not isinstance(record.get(field), str):
                raise ValueError(f"manifest missing required field {field!r}")
        return cls(
            variant=record["variant"],
            kind=record["kind"],
            binary_identity=record.get("binary_identity"),
            perf=dict(record.get("perf") or {}),
            faults=dict(record.get("faults") or {}),
            fallbacks=[dict(hop) for hop in record.get("fallbacks") or []],
            drops=dict(record.get("drops") or {}),
            quality=dict(record.get("quality") or {}),
            profile_stats=dict(record.get("profile_stats") or {}),
            created_at=record.get("created_at"),
            shards=[dict(shard) for shard in record.get("shards") or []],
        )

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "ProfileManifest":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- consistency --------------------------------------------------------
    def drop_accounting_consistent(self) -> bool:
        """``used + dropped == total`` over the correlate stage, when the
        manifest carries sample accounting at all."""
        total = self.perf.get("samples")
        used = self.perf.get("samples_used")
        if total is None or used is None:
            return True
        dropped = sum(count for name, count in self.drops.items()
                      if name.startswith("correlate.drop."))
        return used + dropped == total

    def shard_accounting_consistent(self) -> bool:
        """Summed per-shard accounting must equal the merged profile's.

        For every drop reason, the per-shard deltas must sum to the merged
        drop accounting, and per-shard total/used sample counts must sum
        to the manifest's ``perf`` tallies — partitioning is exact, so any
        discrepancy means a shard was lost, double-merged, or mislabeled.
        Vacuously true for unsharded manifests.
        """
        if not self.shards:
            return True
        summed: Dict[str, int] = {}
        total = used = 0
        for shard in self.shards:
            total += int(shard.get("samples", 0))
            used += int(shard.get("used", 0))
            for reason, count in (shard.get("dropped") or {}).items():
                key = f"correlate.drop.{reason}"
                summed[key] = summed.get(key, 0) + int(count)
        merged = {name: count for name, count in self.drops.items()
                  if name.startswith("correlate.drop.")}
        if summed != merged:
            return False
        if (self.perf.get("samples") is not None
                and total != self.perf["samples"]):
            return False
        if (self.perf.get("samples_used") is not None
                and used != self.perf["samples_used"]):
            return False
        return True

    def __repr__(self) -> str:
        return (f"<ProfileManifest {self.variant}/{self.kind} "
                f"binary={self.binary_identity} "
                f"fallbacks={len(self.fallbacks)}>")
