"""Persistent observability: event log, metrics time-series, provenance
manifests, health/SLO reporting (DESIGN.md sec. 11).

Layered *on top of* :mod:`repro.telemetry`: telemetry stays the cheap
in-process collector; obs makes it durable.  One :class:`Observability`
session bundles the structured :class:`~repro.obs.events.EventLog` with a
:class:`~repro.obs.metrics.MetricsRegistry` bridged from the active
telemetry session.  Like telemetry, the module-level API is a no-op while
nothing is installed::

    from repro import obs
    obs.emit("fallback_taken", from_variant="csspgo",
             to_variant="autofdo", reason="ProfileStaleError")
    obs.snapshot("variant:csspgo")   # metrics time-series point

The CLI installs a session for ``--events-out PATH``; the ``repro report``
subcommand turns the resulting JSONL into the terminal/HTML dashboard and
the SLO scorecard.
"""

from __future__ import annotations

from typing import Any, Optional

from .. import telemetry
from .dashboard import build_report, render_html, render_text
from .events import (EVENT_TYPES, Event, EventLog, events_to_dicts,
                     read_event_log)
from .health import (HealthReport, SLORule, compute_indicators,
                     default_rules, evaluate_health, parse_rules)
from .metrics import Histogram, MetricsRegistry, SeriesPoint
from .provenance import (MANIFEST_SUFFIX, ProfileManifest, manifest_path_for,
                         profile_block_counts, trim_overlap_score)


class Observability:
    """One durable observability session: event log + metrics registry."""

    def __init__(self, log: Optional[EventLog] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.log = log if log is not None else EventLog()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def emit(self, etype: str, **fields: Any) -> Event:
        return self.log.emit(etype, **fields)

    def snapshot(self, label: str = "", *,
                 drop_timings: bool = False) -> SeriesPoint:
        """Sync telemetry into the registry, record a time-series point,
        and persist it as a ``metrics_snapshot`` event.

        The sync re-enumerates every telemetry counter each call, so
        counters created lazily after a previous snapshot (cache counters,
        late drop reasons) are always picked up.  ``drop_timings`` omits
        wall-clock duration counters (``*_ns``/``*_us``) from the
        *persisted* event — they vary run to run, and a deterministic
        producer (the fleet simulation) needs its log byte-reproducible.
        """
        self.metrics.sync_telemetry(telemetry.current())
        point = self.metrics.snapshot(self.log.now(), label)
        totals = point.values
        if drop_timings:
            totals = {name: value for name, value in totals.items()
                      if not name.endswith(("_ns", "_us"))}
        self.log.emit("metrics_snapshot", label=label, totals=totals)
        return point

    def export_spans(self) -> int:
        """Persist the active telemetry session's spans as ``span`` events
        (called once at end of run); returns the number exported."""
        session = telemetry.current()
        if session is None:
            return 0
        for record in session.spans:
            self.log.emit("span", name=record.name,
                          category=record.category or "span",
                          duration_us=record.duration_us,
                          start_us=record.start_us, depth=record.depth)
        return len(session.spans)

    def close(self) -> None:
        self.log.close()

    def __repr__(self) -> str:
        return f"<Observability log={self.log!r} metrics={self.metrics!r}>"


#: The active session, or None (observability off — the default).
_active: Optional[Observability] = None


def install(session: Optional[Observability] = None) -> Observability:
    """Install ``session`` (or a fresh in-memory one) process-wide."""
    global _active
    _active = session if session is not None else Observability()
    return _active


def uninstall() -> None:
    global _active
    _active = None


def active() -> Optional[Observability]:
    return _active


def enabled() -> bool:
    return _active is not None


def emit(etype: str, **fields: Any) -> None:
    """Emit one event to the installed session; no-op when none is."""
    session = _active
    if session is not None:
        session.emit(etype, **fields)


def snapshot(label: str = "", *, drop_timings: bool = False) -> None:
    """Record a metrics time-series point; no-op when not installed."""
    session = _active
    if session is not None:
        session.snapshot(label, drop_timings=drop_timings)


__all__ = [
    "EVENT_TYPES", "Event", "EventLog", "HealthReport", "Histogram",
    "MANIFEST_SUFFIX", "MetricsRegistry", "Observability", "ProfileManifest",
    "SLORule", "SeriesPoint", "active", "build_report", "compute_indicators",
    "default_rules", "emit", "enabled", "evaluate_health", "events_to_dicts",
    "install", "manifest_path_for", "parse_rules", "profile_block_counts",
    "read_event_log", "render_html", "render_text", "snapshot",
    "trim_overlap_score", "uninstall",
]
