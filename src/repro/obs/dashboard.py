"""``repro report``: turn an event log into a terminal + HTML dashboard.

The report is computed once (:func:`build_report`) and rendered twice:
:func:`render_text` for the terminal, :func:`render_html` for a
self-contained single-file dashboard (inline CSS, inline SVG sparklines,
no external assets — it must open from a CI artifact tab).

Sections:

* **runs** — every PGO cycle seen, with eval cycles and degradation state;
* **stages** — per-stage wall time aggregated from exported telemetry spans
  (the ``-time-passes`` view, durable);
* **series** — dropped samples / fallback hops / unwound samples across
  the run's metrics snapshots (the rolling time-series);
* **provenance** — one row per generated profile's manifest;
* **SLO scorecard** — verdicts from :mod:`repro.obs.health`.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional

from .events import Event
from .health import FAIL, PASS, SKIP, WARN, SLORule, evaluate_health


def _aggregate_stage_spans(events: List[Event]) -> List[Dict[str, Any]]:
    totals: Dict[tuple, List[float]] = {}
    for event in events:
        if event.type != "span":
            continue
        key = (event.get("category") or "span", event.get("name"))
        entry = totals.setdefault(key, [0.0, 0])
        entry[0] += float(event.get("duration_us", 0.0)) / 1e6
        entry[1] += 1
    rows = [{"category": category, "name": name,
             "total_s": total, "runs": int(runs),
             "mean_us": total * 1e6 / runs if runs else 0.0}
            for (category, name), (total, runs) in totals.items()]
    rows.sort(key=lambda row: -row["total_s"])
    return rows


def _prefix_total(totals: Dict[str, float], prefix: str) -> float:
    return sum(value for name, value in totals.items()
               if name.startswith(prefix))


def _series(events: List[Event]) -> List[Dict[str, Any]]:
    points = []
    for event in events:
        if event.type != "metrics_snapshot":
            continue
        totals = dict(event.get("totals") or {})
        points.append({
            "label": event.get("label", ""),
            "ts": event.ts,
            "dropped": (_prefix_total(totals, "correlate.drop.")
                        + _prefix_total(totals, "annotate.drop.")
                        + _prefix_total(totals, "profile.drop.")),
            "fallbacks": _prefix_total(totals, "pgo.fallback."),
            "samples": totals.get("correlate.samples_unwound", 0.0),
            "cache_hits": _prefix_total(totals, "correlate.cache."),
        })
    return points


def build_report(events: List[Event],
                 rules: Optional[List[SLORule]] = None,
                 malformed: int = 0) -> Dict[str, Any]:
    by_type: Dict[str, int] = {}
    for event in events:
        by_type[event.type] = by_type.get(event.type, 0) + 1
    timestamps = [event.ts for event in events]
    health = evaluate_health(events, rules)
    return {
        "meta": {
            "events": len(events),
            "malformed": malformed,
            "by_type": dict(sorted(by_type.items())),
            "start_ts": min(timestamps) if timestamps else None,
            "end_ts": max(timestamps) if timestamps else None,
        },
        "runs": [event.to_dict() for event in events
                 if event.type == "run_finished"],
        "fallbacks": [event.to_dict() for event in events
                      if event.type == "fallback_taken"],
        "stages": _aggregate_stage_spans(events),
        "series": _series(events),
        "provenance": [event.get("manifest") for event in events
                       if event.type == "profile_generated"
                       and event.get("manifest") is not None],
        "health": health.to_dict(),
    }


# ---------------------------------------------------------------------------
# Terminal rendering
# ---------------------------------------------------------------------------

_VERDICT_MARK = {PASS: "ok  ", WARN: "WARN", FAIL: "FAIL", SKIP: "-   "}


def render_text(report: Dict[str, Any]) -> str:
    lines: List[str] = []
    meta = report["meta"]
    lines.append("=== Profile-pipeline observability report ===")
    lines.append(f"  {meta['events']} events"
                 + (f" ({meta['malformed']} malformed lines skipped)"
                    if meta["malformed"] else ""))
    lines.append("  " + ", ".join(f"{name} x{count}" for name, count
                                  in meta["by_type"].items()))
    lines.append("")

    if report["runs"]:
        lines.append("--- runs ---")
        for run in report["runs"]:
            cycles = run.get("cycles")
            line = f"  {run.get('variant', '?'):12s}"
            if cycles is not None:
                line += f" cycles {cycles:14,.0f}"
            if run.get("degraded_to"):
                line += f"  degraded -> {run['degraded_to']}"
            lines.append(line)
        lines.append("")

    if report["fallbacks"]:
        lines.append("--- fallbacks ---")
        for hop in report["fallbacks"]:
            lines.append(f"  {hop.get('from_variant')} -> "
                         f"{hop.get('to_variant')}  ({hop.get('reason')})")
        lines.append("")

    if report["stages"]:
        lines.append("--- stage timing (from spans) ---")
        lines.append(f"  {'wall (s)':>10s} {'runs':>5s}  stage")
        for row in report["stages"]:
            lines.append(f"  {row['total_s']:10.4f} {row['runs']:5d}  "
                         f"{row['category']}:{row['name']}")
        lines.append("")

    if report["series"]:
        lines.append("--- metric series (cumulative per snapshot) ---")
        lines.append(f"  {'samples':>10s} {'dropped':>8s} {'fallbacks':>9s}"
                     f"  label")
        for point in report["series"]:
            lines.append(f"  {point['samples']:10,.0f} "
                         f"{point['dropped']:8,.0f} "
                         f"{point['fallbacks']:9,.0f}  {point['label']}")
        lines.append("")

    if report["provenance"]:
        lines.append("--- provenance (one manifest per generated profile) ---")
        for manifest in report["provenance"]:
            perf = manifest.get("perf") or {}
            quality = manifest.get("quality") or {}
            line = (f"  {manifest.get('variant', '?'):12s} "
                    f"{manifest.get('kind', '?'):8s} "
                    f"binary={manifest.get('binary_identity') or '-'}")
            if perf.get("samples") is not None:
                line += (f"  samples={perf['samples']:,}"
                         f" (unique {perf.get('unique_samples', 0):,})")
            if quality.get("trim_overlap") is not None:
                line += f"  trim-overlap={quality['trim_overlap']:.4f}"
            if manifest.get("fallbacks"):
                line += f"  fallbacks={len(manifest['fallbacks'])}"
            lines.append(line)
        lines.append("")

    health = report["health"]
    lines.append(f"--- SLO scorecard (worst: {health['worst']}) ---")
    for result in health["rules"]:
        value = result["value"]
        shown = f"{value:.4f}" if value is not None else "no data"
        lines.append(f"  [{_VERDICT_MARK[result['verdict']]}] "
                     f"{result['spec']:44s} value={shown}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# HTML rendering
# ---------------------------------------------------------------------------

#: Status colors (icon + label always accompany them — color never carries
#: the verdict alone) and chart tokens; light/dark via CSS custom properties.
_CSS = """
.obs-root { color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f1f0ee;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
  --grid: #d8d7d3;
  font: 14px/1.5 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  max-width: 1060px; margin: 0 auto; padding: 24px; }
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .obs-root { color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #242423;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --grid: #3a3a38; } }
.obs-root h1 { font-size: 20px; margin: 0 0 4px; }
.obs-root h2 { font-size: 15px; margin: 28px 0 8px; }
.obs-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.obs-root table { border-collapse: collapse; width: 100%; }
.obs-root th { text-align: left; color: var(--text-secondary);
  font-weight: 600; border-bottom: 1px solid var(--grid); padding: 4px 10px; }
.obs-root td { padding: 4px 10px; border-bottom: 1px solid var(--grid); }
.obs-root td.num, .obs-root th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
.obs-root .bar { height: 4px; border-radius: 2px;
  background: var(--series-1); min-width: 2px; }
.obs-root .verdict { font-weight: 600; white-space: nowrap; }
.obs-root .verdict.pass { color: var(--status-good); }
.obs-root .verdict.warn { color: var(--status-warning); }
.obs-root .verdict.fail { color: var(--status-critical); }
.obs-root .verdict.skip { color: var(--text-secondary); }
.obs-root .cards { display: flex; gap: 12px; flex-wrap: wrap; }
.obs-root .card { background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; min-width: 180px; }
.obs-root .card .v { font-size: 22px; font-weight: 650;
  font-variant-numeric: tabular-nums; }
.obs-root .card .k { color: var(--text-secondary); font-size: 12px; }
.obs-root svg text { fill: var(--text-secondary); font-size: 10px; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _sparkline(values: List[float], width: int = 220, height: int = 44,
               color: str = "var(--series-1)") -> str:
    """Inline SVG line sparkline for one series (no legend needed: the
    surrounding card names it)."""
    if not values:
        return ""
    if len(values) == 1:
        values = values * 2
    top, bottom = max(values), min(values)
    span = (top - bottom) or 1.0
    step = (width - 8) / (len(values) - 1)
    points = " ".join(
        f"{4 + i * step:.1f},{4 + (height - 8) * (1 - (v - bottom) / span):.1f}"
        for i, v in enumerate(values))
    return (f'<svg width="{width}" height="{height}" role="img" '
            f'aria-label="series">'
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round"/></svg>')


_VERDICT_ICON = {PASS: "✓ pass", WARN: "⚠ warn",
                 FAIL: "✗ fail", SKIP: "– skip"}


def render_html(report: Dict[str, Any], title: str = "repro report") -> str:
    out: List[str] = []
    add = out.append
    meta = report["meta"]
    health = report["health"]
    add("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    add(f"<title>{_esc(title)}</title>")
    add(f"<style>{_CSS}</style></head><body class='obs-root'>")
    add(f"<h1>{_esc(title)}</h1>")
    add(f"<p class='sub'>{meta['events']} events &middot; worst SLO verdict: "
        f"<span class='verdict {health['worst']}'>"
        f"{_VERDICT_ICON.get(health['worst'], health['worst'])}</span></p>")

    # Headline cards: totals from the last snapshot-derived series point.
    if report["series"]:
        last = report["series"][-1]
        add("<div class='cards'>")
        for key, label in (("samples", "samples unwound"),
                           ("dropped", "samples dropped"),
                           ("fallbacks", "fallback hops"),
                           ("cache_hits", "cache events")):
            add(f"<div class='card'><div class='v'>{last[key]:,.0f}</div>"
                f"<div class='k'>{_esc(label)}</div></div>")
        add("</div>")

    add(f"<h2>SLO scorecard</h2><table><tr><th>rule</th><th>spec</th>"
        f"<th class='num'>value</th><th>verdict</th></tr>")
    for result in health["rules"]:
        value = result["value"]
        shown = f"{value:.4f}" if value is not None else "no data"
        add(f"<tr><td>{_esc(result['rule'])}</td>"
            f"<td>{_esc(result['spec'])}</td>"
            f"<td class='num'>{_esc(shown)}</td>"
            f"<td><span class='verdict {result['verdict']}'>"
            f"{_VERDICT_ICON[result['verdict']]}</span></td></tr>")
    add("</table>")

    if report["series"]:
        add("<h2>Metric series (cumulative per snapshot)</h2>")
        add("<div class='cards'>")
        for key, label in (("dropped", "dropped samples"),
                           ("fallbacks", "fallback hops"),
                           ("samples", "samples unwound")):
            values = [point[key] for point in report["series"]]
            add(f"<div class='card'><div class='k'>{_esc(label)}</div>"
                f"{_sparkline(values)}"
                f"<div class='v'>{values[-1]:,.0f}</div></div>")
        add("</div>")

    if report["stages"]:
        add("<h2>Stage timing</h2><table><tr><th>stage</th>"
            "<th class='num'>wall (s)</th><th class='num'>runs</th>"
            "<th></th></tr>")
        longest = max(row["total_s"] for row in report["stages"]) or 1.0
        for row in report["stages"]:
            width = max(2, int(160 * row["total_s"] / longest))
            add(f"<tr><td>{_esc(row['category'])}:{_esc(row['name'])}</td>"
                f"<td class='num'>{row['total_s']:.4f}</td>"
                f"<td class='num'>{row['runs']}</td>"
                f"<td><div class='bar' style='width:{width}px'></div></td>"
                f"</tr>")
        add("</table>")

    if report["runs"] or report["fallbacks"]:
        add("<h2>Runs</h2><table><tr><th>variant</th>"
            "<th class='num'>eval cycles</th><th>degradation</th></tr>")
        for run in report["runs"]:
            cycles = run.get("cycles")
            cycles_text = f"{cycles:,.0f}" if cycles is not None else "-"
            add(f"<tr><td>{_esc(run.get('variant', '?'))}</td>"
                f"<td class='num'>{cycles_text}</td>"
                f"<td>{_esc(run.get('degraded_to') or '-')}</td></tr>")
        add("</table>")
        if report["fallbacks"]:
            add("<table><tr><th>fallback</th><th>reason</th></tr>")
            for hop in report["fallbacks"]:
                add(f"<tr><td>{_esc(hop.get('from_variant'))} &rarr; "
                    f"{_esc(hop.get('to_variant'))}</td>"
                    f"<td>{_esc(hop.get('reason'))}</td></tr>")
            add("</table>")

    if report["provenance"]:
        add("<h2>Provenance</h2><table><tr><th>variant</th><th>kind</th>"
            "<th>binary</th><th class='num'>samples</th>"
            "<th class='num'>unique</th><th class='num'>trim overlap</th>"
            "<th class='num'>fallbacks</th></tr>")
        for manifest in report["provenance"]:
            perf = manifest.get("perf") or {}
            quality = manifest.get("quality") or {}
            overlap = quality.get("trim_overlap")
            add(f"<tr><td>{_esc(manifest.get('variant', '?'))}</td>"
                f"<td>{_esc(manifest.get('kind', '?'))}</td>"
                f"<td>{_esc(manifest.get('binary_identity') or '-')}</td>"
                f"<td class='num'>{perf.get('samples', 0):,}</td>"
                f"<td class='num'>{perf.get('unique_samples', 0):,}</td>"
                f"<td class='num'>"
                + (f"{overlap:.4f}" if overlap is not None else "-")
                + f"</td><td class='num'>"
                  f"{len(manifest.get('fallbacks') or [])}</td></tr>")
        add("</table>")

    add("</body></html>")
    return "".join(out)
