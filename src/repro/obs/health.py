"""Declarative SLO rules evaluated over an event log.

Rule grammar (DESIGN.md sec. 11) — one rule per line, ``#`` comments::

    <name>: <indicator> <op> <warn>/<fail>

where ``op`` is ``<=`` (budget: exceeding warns/fails) or ``>=`` (floor:
undershooting warns/fails), ``warn`` is the threshold at which the verdict
becomes ``warn`` and ``fail`` the one at which it becomes ``fail``.
Example: ``drop-rate: drop_rate <= 0.02/0.10`` passes at 1% dropped
samples, warns at 5%, fails at 15%.

Indicators are computed from the event stream by
:func:`compute_indicators`:

``drop_rate``
    dropped samples (``correlate.drop.* + annotate.drop.* +
    profile.drop.*`` totals from the last metrics snapshot) over total
    unwound samples.
``fallback_rate``
    ``fallback_taken`` events per started profile-producing run.
``checksum_match_rate``
    annotated / (annotated + checksum-rejected) over ``profile_applied``
    events.
``min_trim_overlap``
    minimum ``quality.trim_overlap`` over all generated-profile manifests.
``bench_regression``
    worst fractional slowdown recorded by ``bench_point`` events that carry
    a baseline.
``fault_events``
    total corruption events reported by injectors (useful for asserting a
    clean pipeline in CI).
``lint_findings``
    total flow-consistency violations reported by ``repro lint`` runs
    (``lint_summary`` events); a clean lint contributes 0, no lint run at
    all skips the rule.
``profile_freshness``
    mean fraction of fleet services running on a *fresh* context profile
    (binary identity matches, age within the freshness window), averaged
    over every ``fleet_status`` rollup of the run.
``task_retry_rate``
    fleet collection-task retries per completed task, from the final
    ``fleet_status`` totals.
``orphan_loss``
    orphaned fleet tasks that were neither re-queued by crash recovery nor
    explicitly retired as retry-budget-exhausted — any nonzero value means
    a task vanished, the failure mode the supervisor exists to prevent.

An indicator with no data evaluates to ``skip`` — a rule can only pass on
evidence, never on absence of it, and a skipped rule never fails a build.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .events import Event

PASS, WARN, FAIL, SKIP = "pass", "warn", "fail", "skip"

#: Verdict severity order, for aggregation.
_SEVERITY = {SKIP: 0, PASS: 1, WARN: 2, FAIL: 3}


class SLORule:
    """One named budget (``<=``) or floor (``>=``) on an indicator."""

    def __init__(self, name: str, indicator: str, op: str,
                 warn: float, fail: float, description: str = ""):
        if op not in ("<=", ">="):
            raise ValueError(f"SLO op must be '<=' or '>=', got {op!r}")
        if op == "<=" and fail < warn:
            raise ValueError(f"budget rule {name}: fail ({fail}) must be "
                             f">= warn ({warn})")
        if op == ">=" and fail > warn:
            raise ValueError(f"floor rule {name}: fail ({fail}) must be "
                             f"<= warn ({warn})")
        self.name = name
        self.indicator = indicator
        self.op = op
        self.warn = warn
        self.fail = fail
        self.description = description

    @classmethod
    def parse(cls, line: str) -> "SLORule":
        """Parse one ``name: indicator op warn/fail`` rule line."""
        name, sep, rest = line.partition(":")
        if not sep:
            raise ValueError(f"SLO rule needs 'name: ...', got {line!r}")
        parts = rest.split()
        if len(parts) != 3:
            raise ValueError(
                f"SLO rule body must be '<indicator> <op> <warn>/<fail>', "
                f"got {rest.strip()!r}")
        indicator, op, thresholds = parts
        warn_text, sep, fail_text = thresholds.partition("/")
        if not sep:
            raise ValueError(
                f"SLO thresholds must be '<warn>/<fail>', got {thresholds!r}")
        try:
            warn, fail = float(warn_text), float(fail_text)
        except ValueError:
            raise ValueError(
                f"SLO thresholds must be numbers, got {thresholds!r}"
            ) from None
        return cls(name.strip(), indicator, op, warn, fail)

    def evaluate(self, value: Optional[float]) -> str:
        if value is None:
            return SKIP
        if self.op == "<=":
            if value > self.fail:
                return FAIL
            if value > self.warn:
                return WARN
            return PASS
        if value < self.fail:
            return FAIL
        if value < self.warn:
            return WARN
        return PASS

    def spec(self) -> str:
        return f"{self.name}: {self.indicator} {self.op} {self.warn:g}/{self.fail:g}"

    def __repr__(self) -> str:
        return f"<SLORule {self.spec()}>"


def default_rules() -> List[SLORule]:
    """The stock scorecard; override with ``repro report --slo FILE``."""
    return [
        SLORule("drop-rate", "drop_rate", "<=", 0.02, 0.10,
                "samples discarded across correlate/annotate/profile"),
        SLORule("fallback-rate", "fallback_rate", "<=", 0.0, 0.5,
                "degradation hops per profile-producing run"),
        SLORule("checksum-match", "checksum_match_rate", ">=", 0.95, 0.5,
                "profile functions surviving checksum verification"),
        SLORule("trim-overlap", "min_trim_overlap", ">=", 0.95, 0.8,
                "block overlap of trimmed profiles vs their raw form"),
        SLORule("bench-regression", "bench_regression", "<=", 0.25, 1.0,
                "worst slowdown vs checked-in benchmark baseline"),
        SLORule("lint-clean", "lint_findings", "<=", 0.0, 0.0,
                "flow-consistency violations found by the profile linter"),
        # Fleet-service rules (DESIGN.md sec. 15) — skip on non-fleet logs.
        SLORule("profile-freshness", "profile_freshness", ">=", 0.70, 0.40,
                "mean fraction of services on a fresh context profile"),
        SLORule("task-retry-rate", "task_retry_rate", "<=", 0.50, 2.0,
                "collection-task retries per completed task"),
        SLORule("orphan-loss", "orphan_loss", "<=", 0.0, 0.0,
                "orphaned tasks neither re-queued nor retired"),
    ]


def parse_rules(text: str) -> List[SLORule]:
    rules = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rules.append(SLORule.parse(line))
    if not rules:
        raise ValueError("empty SLO rule file")
    return rules


def _last_snapshot_totals(events: Iterable[Event]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for event in events:
        if event.type == "metrics_snapshot":
            totals = dict(event.get("totals") or {})
    return totals


def compute_indicators(events: List[Event]) -> Dict[str, Optional[float]]:
    """Reduce an event stream to the scorecard's indicator values."""
    totals = _last_snapshot_totals(events)

    def total_prefix(prefix: str) -> float:
        return sum(value for name, value in totals.items()
                   if name.startswith(prefix))

    indicators: Dict[str, Optional[float]] = {}

    samples = totals.get("correlate.samples_unwound", 0.0)
    dropped = (total_prefix("correlate.drop.")
               + total_prefix("annotate.drop.")
               + total_prefix("profile.drop."))
    indicators["drop_rate"] = dropped / samples if samples else None

    runs = sum(1 for e in events if e.type == "run_started"
               and e.get("variant") != "none")
    hops = sum(1 for e in events if e.type == "fallback_taken")
    indicators["fallback_rate"] = hops / runs if runs else None

    annotated = rejected = 0.0
    for event in events:
        if event.type == "profile_applied":
            annotated += float(event.get("annotated", 0))
            rejected += float(event.get("rejected_checksum", 0))
    checked = annotated + rejected
    indicators["checksum_match_rate"] = (annotated / checked if checked
                                         else None)

    overlaps = []
    for event in events:
        if event.type == "profile_generated":
            manifest = event.get("manifest") or {}
            score = (manifest.get("quality") or {}).get("trim_overlap")
            if score is not None:
                overlaps.append(float(score))
    indicators["min_trim_overlap"] = min(overlaps) if overlaps else None

    regressions = []
    for event in events:
        if event.type == "bench_point":
            regression = event.get("regression")
            if regression is not None:
                regressions.append(float(regression))
    indicators["bench_regression"] = (max(regressions) if regressions
                                      else None)

    faults = sum(float(e.get("count", 0)) for e in events
                 if e.type == "faults_injected")
    indicators["fault_events"] = faults if any(
        e.type == "faults_injected" for e in events) else None

    lint_runs = [e for e in events if e.type == "lint_summary"]
    indicators["lint_findings"] = (
        sum(float(e.get("findings", 0)) for e in lint_runs)
        if lint_runs else None)

    # Fleet-service indicators, from the periodic fleet_status rollups.
    statuses = [e for e in events if e.type == "fleet_status"]
    freshness = [float(e.get("freshness")) for e in statuses
                 if e.get("freshness") is not None]
    indicators["profile_freshness"] = (
        sum(freshness) / len(freshness) if freshness else None)
    if statuses:
        totals = dict(statuses[-1].get("totals") or {})
        completed = float(totals.get("tasks_completed", 0))
        indicators["task_retry_rate"] = (
            float(totals.get("tasks_retried", 0)) / completed
            if completed else None)
        indicators["orphan_loss"] = (
            float(totals.get("tasks_orphaned", 0))
            - float(totals.get("orphans_requeued", 0))
            - float(totals.get("orphans_exhausted", 0)))
    else:
        indicators["task_retry_rate"] = None
        indicators["orphan_loss"] = None
    return indicators


class RuleResult:
    """One rule's verdict against the computed indicator value."""

    __slots__ = ("rule", "value", "verdict")

    def __init__(self, rule: SLORule, value: Optional[float], verdict: str):
        self.rule = rule
        self.value = value
        self.verdict = verdict

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule.name, "spec": self.rule.spec(),
                "indicator": self.rule.indicator, "value": self.value,
                "verdict": self.verdict,
                "description": self.rule.description}

    def __repr__(self) -> str:
        return f"<RuleResult {self.rule.name}={self.verdict}>"


class HealthReport:
    """The scorecard: every rule's verdict plus the aggregate."""

    def __init__(self, results: List[RuleResult],
                 indicators: Dict[str, Optional[float]]):
        self.results = results
        self.indicators = indicators

    @property
    def worst(self) -> str:
        verdict = SKIP
        for result in self.results:
            if _SEVERITY[result.verdict] > _SEVERITY[verdict]:
                verdict = result.verdict
        return verdict

    @property
    def failed(self) -> List[RuleResult]:
        return [r for r in self.results if r.verdict == FAIL]

    def to_dict(self) -> Dict[str, Any]:
        return {"worst": self.worst,
                "indicators": dict(self.indicators),
                "rules": [result.to_dict() for result in self.results]}

    def __repr__(self) -> str:
        return f"<HealthReport worst={self.worst} rules={len(self.results)}>"


def evaluate_health(events: List[Event],
                    rules: Optional[List[SLORule]] = None) -> HealthReport:
    rules = default_rules() if rules is None else rules
    indicators = compute_indicators(events)
    results = [RuleResult(rule, indicators.get(rule.indicator),
                          rule.evaluate(indicators.get(rule.indicator)))
               for rule in rules]
    return HealthReport(results, indicators)
