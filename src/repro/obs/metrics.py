"""Metrics registry: labelled counters/gauges/histograms with rolling
time-series snapshots, bridged from :mod:`repro.telemetry`.

Naming convention (DESIGN.md sec. 11): dotted lowercase paths,
``<component>.<subject>[.<detail>]`` — e.g. ``correlate.drop.empty_lbr``,
``pgo.fallback.csspgo_to_autofdo``, ``stage.duration_us``.  Telemetry
counters keyed ``(component, name)`` bridge 1:1 to the metric
``f"{component}.{name}"``, so every statistic from the existing pipeline
(drop accounting, cache hits, fallback hops) gets a durable series without
touching its producer.

The bridge **re-enumerates the session's counters on every sync**.  This is
deliberate and load-bearing: many counters are lazily created (the
``correlate.cache.*`` family only exists after the first memoized profgen
run), so any design that fixes the counter set at first export would
silently omit them from later snapshots — the exporter-plumbing bug class
this module is built not to have.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.core import TelemetrySession

#: A metric instance is identified by name + sorted label items.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(key: MetricKey) -> str:
    """Stable flat spelling: ``name{a=1,b=2}`` (no braces when unlabelled)."""
    name, labels = key
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{body}}}"


class Histogram:
    """Streaming distribution summary: count/sum/min/max + log2 buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> count; value v lands in bucket
        #: ``ceil(log2(v))`` clamped at 0 (sub-1 values share bucket 0).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        exponent = 0
        v = value
        while v > 1.0:
            v /= 2.0
            exponent += 1
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items())}}

    def __repr__(self) -> str:
        return f"<Histogram n={self.count} mean={self.mean:.1f}>"


class SeriesPoint:
    """One rolling snapshot: every counter/gauge value at one instant."""

    __slots__ = ("ts", "label", "values")

    def __init__(self, ts: float, label: str,
                 values: Dict[str, float]):
        self.ts = ts
        self.label = label
        self.values = values

    def to_dict(self) -> Dict[str, Any]:
        return {"ts": self.ts, "label": self.label, "values": self.values}

    def __repr__(self) -> str:
        return f"<SeriesPoint {self.label!r} {len(self.values)} values>"


class MetricsRegistry:
    """Process-local metric store; snapshots build the time-series."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        self.series: List[SeriesPoint] = []
        #: Spans already folded into histograms by :meth:`sync_telemetry`
        #: (sync must be idempotent over a growing session).
        self._spans_synced = 0

    # -- write API ----------------------------------------------------------
    def inc(self, name: str, n: float = 1.0, /, **labels: str) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + n

    def set_counter(self, name: str, value: float, /, **labels: str) -> None:
        """Absolute update — how bridged telemetry totals are written."""
        self._counters[_key(name, labels)] = value

    def set_gauge(self, name: str, value: float, /, **labels: str) -> None:
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, /, **labels: str) -> None:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.observe(value)

    # -- read API -----------------------------------------------------------
    def counter(self, name: str, /, **labels: str) -> float:
        return self._counters.get(_key(name, labels), 0.0)

    def gauge(self, name: str, /, **labels: str) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, /, **labels: str) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def totals(self) -> Dict[str, float]:
        """Flat ``{spelled key: value}`` of every counter and gauge —
        re-enumerated at call time, so metrics created after any previous
        export are always included."""
        out = {format_key(key): value
               for key, value in self._counters.items()}
        out.update((format_key(key), value)
                   for key, value in self._gauges.items())
        return out

    # -- telemetry bridge ---------------------------------------------------
    def sync_telemetry(self, session: Optional[TelemetrySession]) -> None:
        """Mirror a telemetry session into the registry (idempotent).

        Counters are written as absolute totals under
        ``f"{component}.{name}"`` — calling sync twice is safe.  Spans feed
        ``span.duration_us`` histograms labelled by category/name,
        incrementally from where the previous sync stopped.
        """
        if session is None:
            return
        for (component, name), value in session.counters.items():
            self.set_counter(f"{component}.{name}", float(value))
        new_spans = session.spans[self._spans_synced:]
        self._spans_synced += len(new_spans)
        for record in new_spans:
            self.observe("span.duration_us", record.duration_us,
                         category=record.category or "span",
                         name=record.name)

    def snapshot(self, ts: float, label: str = "") -> SeriesPoint:
        """Append one rolling time-series point over *all* current metrics."""
        point = SeriesPoint(ts, label, self.totals())
        self.series.append(point)
        return point

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {format_key(k): v
                         for k, v in sorted(self._counters.items())},
            "gauges": {format_key(k): v
                       for k, v in sorted(self._gauges.items())},
            "histograms": {format_key(k): h.to_dict()
                           for k, h in sorted(self._histograms.items())},
            "series": [point.to_dict() for point in self.series],
        }

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)} "
                f"series={len(self.series)}>")
