"""Structured event log: the durable half of the telemetry story.

:mod:`repro.telemetry` answers "what is happening *right now* in this
process" — counters, spans and remarks that vanish at exit.  The event log
answers "what happened, when, and why" across runs: an **append-only JSONL
stream** of typed events that a fleet-side status collector (ROADMAP item 1)
can tail, aggregate and alert on, the way the Score-P/LLVM plug-in work
streams tool-consumable instrumentation records.

Every event is one JSON object per line::

    {"type": "fallback_taken", "seq": 17, "ts": 1699999999.25,
     "from_variant": "csspgo", "to_variant": "autofdo",
     "reason": "ProfileStaleError"}

``type`` must be registered in :data:`EVENT_TYPES`, which also names each
type's required fields — emission validates both, so a malformed event is a
bug at the *producer*, never a surprise at the consumer.  Extra fields
beyond the required set are allowed (schemas grow forward-compatibly).

The module-level :func:`emit` mirrors the telemetry pattern: it writes to
the process-wide installed :class:`EventLog` and is a no-op (one global
check) when none is installed, so instrumented code paths cost nothing in
normal operation.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO


#: Registered event types -> tuple of required field names.  ``seq`` and
#: ``ts`` are stamped by the log itself and are implicit for every type.
EVENT_TYPES: Dict[str, tuple] = {
    # One PGO cycle started / finished for a variant.
    "run_started": ("variant",),
    "run_finished": ("variant",),
    # A profile came out of profgen; carries the provenance manifest.
    "profile_generated": ("variant", "kind", "manifest"),
    # A profile was applied to a build (annotation outcome).
    "profile_applied": ("variant", "annotated", "rejected_checksum"),
    # One hop of the graceful-degradation chain, with the reason why.
    "fallback_taken": ("from_variant", "to_variant", "reason"),
    # Samples discarded at a pipeline boundary, by reason.
    "samples_dropped": ("stage", "reason", "count"),
    # Deterministic fault injection actually corrupted something.
    "faults_injected": ("kind", "count"),
    # One benchmark measurement (bench_profgen/bench_executor --events-out).
    "bench_point": ("bench", "metric", "value"),
    # Rolling totals of the metrics registry (the time-series backbone).
    "metrics_snapshot": ("label", "totals"),
    # One completed telemetry span, exported at end of run.
    "span": ("name", "category", "duration_us"),
    # One SLO rule verdict (written back by ``repro report``).
    "slo_evaluated": ("rule", "verdict"),
    # One module-level profile-inference pass: solver path, memo reuse,
    # sharding configuration (see inference.flow).
    "inference_run": ("functions", "inferred", "solver"),
    # One classified departure from the primary inference solver
    # (rank_deficient / negative_flow / scipy_missing / ...).
    "solver_fallback": ("function", "reason"),
    # One profile-linter finding (``repro lint`` / ``repro validate --lint``).
    "lint_finding": ("rule", "function", "detail"),
    # End-of-lint rollup: total findings and functions checked.
    "lint_summary": ("findings", "functions_checked", "rules"),
    # A cross-build PerfData merge was refused (identity mismatch).
    "merge_rejected": ("site", "ours", "theirs"),
    # One collection-task lifecycle transition in the fleet scheduler
    # (scheduled/dispatched/completed/retried/orphaned/recovered/
    # cancelled/exhausted/failed).
    "fleet_task": ("action", "task", "service", "attempt"),
    # One supervised-worker lifecycle transition (spawned/crashed/hung/
    # cancelled/respawned).
    "fleet_worker": ("worker", "event"),
    # One service released a new binary revision (rolling deploy).
    "fleet_release": ("service", "revision", "binary"),
    # The profile variant a service is currently served with changed
    # (fresh csspgo, degraded autofdo, or none), and why.
    "fleet_assignment": ("service", "variant", "reason"),
    # Periodic fleet rollup: scheduler/worker/generation totals plus the
    # fraction of services on a fresh context profile.
    "fleet_status": ("tick", "totals", "freshness"),
}


class Event:
    """One typed, timestamped record."""

    __slots__ = ("type", "seq", "ts", "fields")

    def __init__(self, etype: str, seq: int, ts: float,
                 fields: Dict[str, Any]):
        self.type = etype
        self.seq = seq
        self.ts = ts
        self.fields = fields

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"type": self.type, "seq": self.seq,
                                  "ts": self.ts}
        record.update(self.fields)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Event":
        etype = record.get("type")
        if not isinstance(etype, str) or etype not in EVENT_TYPES:
            raise ValueError(f"unknown event type {etype!r}")
        missing = [name for name in EVENT_TYPES[etype] if name not in record]
        if missing:
            raise ValueError(
                f"{etype} event missing required fields: {missing}")
        fields = {key: value for key, value in record.items()
                  if key not in ("type", "seq", "ts")}
        return cls(etype, int(record.get("seq", 0)),
                   float(record.get("ts", 0.0)), fields)

    def __repr__(self) -> str:
        return f"<Event {self.type} seq={self.seq}>"


class EventLog:
    """Append-only, optionally file-backed event stream.

    With ``path`` set, every event is appended to the JSONL file as it is
    emitted (line-buffered — a crashed run still leaves a readable log,
    which is the whole point of durable observability).  Events are also
    kept in memory for same-process consumers (``repro report`` on a live
    session, tests).

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, path: Optional[str] = None,
                 clock: Callable[[], float] = time.time):
        self.path = path
        self.events: List[Event] = []
        self._clock = clock
        self._seq = 0
        self._sink: Optional[TextIO] = None
        if path is not None:
            self._sink = open(path, "w", buffering=1)

    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the timestamp source (e.g. a fleet simulation's tick clock,
        so a file-backed log becomes byte-reproducible across runs)."""
        self._clock = clock

    def emit(self, etype: str, **fields: Any) -> Event:
        """Validate, stamp, store and (when file-backed) append one event.

        The file write is crash-safe: the whole record is serialized first
        and lands as a **single** ``write`` of one complete line, followed
        by a flush — a producer killed mid-emit can tear at most the final
        line, never interleave two, and everything before the tear is
        already on disk (:func:`read_event_log` skips-and-counts a torn
        tail instead of raising).
        """
        required = EVENT_TYPES.get(etype)
        if required is None:
            raise ValueError(
                f"unknown event type {etype!r} (registered: "
                f"{', '.join(sorted(EVENT_TYPES))})")
        missing = [name for name in required if name not in fields]
        if missing:
            raise ValueError(
                f"{etype} event missing required fields: {missing}")
        event = Event(etype, self._seq, self._clock(), fields)
        self._seq += 1
        self.events.append(event)
        if self._sink is not None:
            line = json.dumps(event.to_dict(), separators=(",", ":"),
                              sort_keys=True)
            self._sink.write(line + "\n")
            self._sink.flush()
        return event

    def of_type(self, etype: str) -> List[Event]:
        return [event for event in self.events if event.type == etype]

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        return len(self.events)

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"<EventLog {len(self.events)} events path={self.path!r}>"


def read_event_log(path: str, strict: bool = False
                   ) -> "tuple[List[Event], int]":
    """Parse a JSONL event log; returns ``(events, malformed_lines)``.

    Permissive by default — a half-written trailing line from a crashed
    producer, or an event type from a newer schema, is counted and skipped
    rather than poisoning the whole report.  ``strict=True`` raises on the
    first bad line (the round-trip contract tests use this) — except for a
    **torn final line** (the file does not end in a newline): that is the
    expected signature of a killed worker, not a schema violation, so it is
    skipped-and-counted in both modes and ``repro report`` keeps working.
    """
    events: List[Event] = []
    malformed = 0
    with open(path) as handle:
        content = handle.read()
    torn_tail = bool(content) and not content.endswith("\n")
    lines = content.splitlines()
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("event line is not a JSON object")
            events.append(Event.from_dict(record))
        except (ValueError, KeyError, TypeError) as exc:
            if strict and not (torn_tail and lineno == len(lines)):
                raise ValueError(f"line {lineno}: {exc}") from exc
            malformed += 1
    return events, malformed


def events_to_dicts(events: Iterable[Event]) -> List[Dict[str, Any]]:
    return [event.to_dict() for event in events]
