"""Function inlining: the mechanical transform plus the bottom-up heuristic
inliner used by the no-profile and AutoFDO builds.

The transform (:func:`inline_call`) is shared by every PGO variant; what
differs is *who decides*:

* no profile — static size threshold, bottom-up over the call graph (LLVM's
  CGSCC order);
* AutoFDO / probe-only CSSPGO — same bottom-up order, but hot call sites
  (by annotated counts) get a larger threshold; post-inline counts are
  *scaled* context-insensitively (the Fig. 3a inaccuracy);
* full CSSPGO — the pre-inliner's decisions arrive with the profile and are
  replayed top-down by the sample loader in :mod:`repro.annotate`, which
  re-annotates inlined bodies from context-profile slices (Fig. 3b).

Debug locations and pseudo-probes of cloned instructions get the call site
pushed onto their inline stacks, which is what lets the profiler reconstruct
inline contexts from the final binary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from .. import telemetry
from ..ir.debug_info import DebugLoc, InlineSite
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (Assign, Br, Call, Instr, PseudoProbe, Ret)
from .pass_manager import OptConfig

#: Hard cap on a caller's size (real instructions) after profile-guided
#: inlining.
CALLER_SIZE_LIMIT = 600
#: Static (tiny-callee) inlining may still fire in larger functions — e.g.
#: bodies the CSSPGO sample loader already grew — up to this cap.
STATIC_CALLER_SIZE_LIMIT = 2000
#: Callees larger than this are never inlined by the heuristics.
CALLEE_SIZE_LIMIT = 200


class InlineResult:
    """Outcome of one :func:`inline_call`: mapping from callee block labels to
    the labels of their clones in the caller, plus the continuation label."""

    def __init__(self, block_map: Dict[str, str], continuation: str):
        self.block_map = block_map
        self.continuation = continuation


def function_size(fn: Function) -> int:
    """Static size: real (machine-lowering) instructions."""
    return sum(1 for i in fn.instructions() if not isinstance(i, PseudoProbe))


def inline_call(module: Module, caller: Function, block_label: str,
                call_index: int, count_scale: Optional[float] = None) -> InlineResult:
    """Inline the call at ``caller[block_label].instrs[call_index]``.

    ``count_scale`` — when the caller is profile-annotated with a flat
    (context-insensitive) profile, cloned blocks get ``callee_count * scale``;
    pass ``None`` to leave clone counts unset (the context-sensitive sample
    loader re-annotates them from the context slice).
    """
    block = caller.block(block_label)
    call = block.instrs[call_index]
    if not isinstance(call, Call):
        raise ValueError(f"instruction {call_index} of {block_label} is not a call")
    callee = module.function(call.callee)
    if callee is caller:
        raise ValueError("cannot inline a direct recursion")

    serial = _next_inline_serial(caller)
    prefix = f"inl{serial}"
    reg_map: Dict[str, str] = {}

    def map_reg(reg: str) -> str:
        mapped = reg_map.get(reg)
        if mapped is None:
            mapped = f"%{prefix}.{reg[1:]}"
            reg_map[reg] = mapped
        return mapped

    label_map: Dict[str, str] = {
        b.label: f"{prefix}.{b.label}" for b in callee.blocks}

    # Continuation: the caller block is split after the call.
    continuation_label = f"{prefix}.cont"
    continuation = BasicBlock(continuation_label, block.instrs[call_index + 1:])
    continuation.count = block.count
    block.instrs = block.instrs[:call_index]

    # Inline-stack bookkeeping for DWARF and for probes.
    call_line = call.dloc.line if call.dloc is not None else 0
    call_disc = call.dloc.discriminator if call.dloc is not None else 0
    dwarf_prefix = (call.dloc.inline_stack if call.dloc is not None else ()) + (
        InlineSite(callee.name, call_line, call_disc),)
    probe_prefix = call.probe_context()

    # Argument setup replaces the call.
    for param, arg in zip(callee.params, call.args):
        block.instrs.append(Assign(map_reg(param), arg, call.dloc))
    for param in callee.params[len(call.args):]:
        block.instrs.append(Assign(map_reg(param), 0, call.dloc))
    block.instrs.append(Br(label_map[callee.entry.label], call.dloc))

    # Local arrays: cloned under renamed keys.
    array_map: Dict[str, str] = {}
    for array, size in callee.local_arrays.items():
        new_name = f"{prefix}.{array}"
        array_map[array] = new_name
        caller.local_arrays[new_name] = size

    for callee_block in callee.blocks:
        clone = BasicBlock(label_map[callee_block.label])
        if count_scale is not None and callee_block.count is not None:
            clone.count = callee_block.count * count_scale
        for instr in callee_block.instrs:
            if isinstance(instr, Ret):
                # Returns become: assign the call result, branch to the
                # continuation block.
                if call.dst is not None:
                    value = instr.value if instr.value is not None else 0
                    if isinstance(value, str):
                        value = map_reg(value)
                    clone.instrs.append(Assign(call.dst, value, call.dloc))
                clone.instrs.append(Br(continuation_label, call.dloc))
                continue
            clone.instrs.append(_clone_into_caller(
                instr, map_reg, label_map, array_map, dwarf_prefix,
                probe_prefix))
        caller.add_block(clone)
    caller.add_block(continuation)
    return InlineResult(label_map, continuation_label)


def _clone_into_caller(instr: Instr, map_reg, label_map: Dict[str, str],
                       array_map: Dict[str, str],
                       dwarf_prefix: tuple, probe_prefix: tuple) -> Instr:
    from ..ir.instructions import CondBr, Load, Store

    clone = instr.clone()
    # Registers.
    defined = clone.defined()
    mapping = {}
    for reg in clone.uses():
        mapping[reg] = map_reg(reg)
    clone.replace_uses(mapping)
    if defined is not None:
        _set_dst(clone, map_reg(defined))
    # Labels.
    if isinstance(clone, Br):
        clone.target = label_map[clone.target]
    elif isinstance(clone, CondBr):
        clone.true_target = label_map[clone.true_target]
        clone.false_target = label_map[clone.false_target]
    # Local arrays.
    if isinstance(clone, (Load, Store)) and clone.array in array_map:
        clone.array = array_map[clone.array]
    # Debug inline stack.
    if clone.dloc is not None:
        clone.dloc = DebugLoc(clone.dloc.line, clone.dloc.discriminator,
                              dwarf_prefix + clone.dloc.inline_stack)
    # Probe inline stacks.
    if isinstance(clone, PseudoProbe):
        clone.inline_stack = probe_prefix + clone.inline_stack
    elif isinstance(clone, Call):
        clone.inline_probe_stack = probe_prefix + clone.inline_probe_stack
    return clone


def _set_dst(instr: Instr, dst: str) -> None:
    instr.dst = dst


def _next_inline_serial(caller: Function) -> int:
    serial = 0
    for block in caller.blocks:
        if block.label.startswith("inl") and "." in block.label:
            head = block.label.split(".", 1)[0][3:]
            if head.isdigit():
                serial = max(serial, int(head) + 1)
    return serial


# ---------------------------------------------------------------------------
# Bottom-up heuristic inliner (no-profile and flat-profile builds)
# ---------------------------------------------------------------------------


def call_graph(module: Module) -> "nx.DiGraph":
    graph = nx.DiGraph()
    for fn in module.functions.values():
        graph.add_node(fn.name)
        for callee in fn.callees():
            if module.has_function(callee):
                graph.add_edge(fn.name, callee)
    return graph


def bottom_up_order(module: Module) -> List[str]:
    """Callees before callers (LLVM CGSCC order), cycles broken arbitrarily."""
    graph = call_graph(module)
    condensation = nx.condensation(graph)
    order: List[str] = []
    for scc_id in reversed(list(nx.topological_sort(condensation))):
        order.extend(sorted(condensation.nodes[scc_id]["members"]))
    return order


def should_inline_static(callee_size: int, config: OptConfig) -> bool:
    return callee_size <= config.inline_size_threshold


def should_inline_profiled(callee_size: int, callsite_count: float,
                           summary, config: OptConfig) -> bool:
    """Flat-profile heuristic: globally hot call sites get the big
    threshold, cold call sites are never inlined (size discipline), and
    lukewarm ones fall back to the static rule."""
    if callee_size > CALLEE_SIZE_LIMIT:
        return False
    if summary is not None and summary.is_hot(callsite_count):
        return callee_size <= config.inline_hot_threshold
    if summary is not None and summary.is_cold(callsite_count):
        return False  # cold: keep the call, save size
    return callee_size <= config.inline_size_threshold


def run_bottom_up_inliner(module: Module, config: OptConfig,
                          use_profile: bool) -> int:
    """Inline according to static or flat-profile heuristics; returns the
    number of call sites inlined."""
    inlined_total = 0
    size_cap = CALLER_SIZE_LIMIT if use_profile else STATIC_CALLER_SIZE_LIMIT
    for name in bottom_up_order(module):
        caller = module.function(name)
        changed = True
        while changed and function_size(caller) < size_cap:
            changed = False
            for block in list(caller.blocks):
                for idx, instr in enumerate(block.instrs):
                    if not isinstance(instr, Call):
                        continue
                    if not module.has_function(instr.callee):
                        continue
                    callee = module.function(instr.callee)
                    if callee is caller or callee.noinline:
                        continue
                    size = function_size(callee)
                    if use_profile:
                        callsite_count = block.count if block.count is not None else 0.0
                        decide = should_inline_profiled(
                            size, callsite_count, module.profile_summary,
                            config)
                        scale = _flat_scale(callsite_count, callee)
                    else:
                        decide = should_inline_static(size, config)
                        scale = None
                    if not decide:
                        continue
                    telemetry.count("pass.inline", "callsites_inlined")
                    telemetry.remark(
                        "inline", "Inlined", caller.name,
                        f"{instr.callee} inlined into {caller.name} "
                        f"(callee size {size}, "
                        f"{'profile-guided' if use_profile else 'static'})",
                        loc=instr.dloc, callee=instr.callee, callee_size=size,
                        callsite_count=(block.count or 0.0) if use_profile else None)
                    inline_call(module, caller, block.label, idx, count_scale=scale)
                    inlined_total += 1
                    changed = True
                    break
                if changed:
                    break
    return inlined_total


def _flat_scale(callsite_count: float, callee: Function) -> Optional[float]:
    """Context-insensitive scaling ratio (the Fig. 3a approximation)."""
    if callee.entry.count is None or callee.entry.count <= 0:
        return None
    return min(1.0, callsite_count / callee.entry.count)
