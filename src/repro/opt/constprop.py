"""Local constant propagation and branch folding.

After context-guided inlining, dispatcher-style callees receive constant
selectors (``dispatch(3, x)``), so their selection branches become constant:
folding them deletes the untaken side entirely — the strongest form of the
specialization that context-sensitive inlining enables.

Constants flow through ``mov``/``binop``/``cmp``/``select`` chains and across
CFG edges (forward dataflow, intersection meet at joins); constant
conditional branches are rewritten to unconditional ones and the untaken
sides become unreachable.  Disabled by default in :class:`OptConfig`
(``enable_constprop``) so the calibrated pipeline of the headline benches is
unchanged; the specialization ablation bench and tests exercise it
explicitly.

Profile maintenance: folding a branch does not change any surviving block's
execution frequency, so annotated counts are kept as-is; removing the dead
side is handled by the unreachable-block cleanup.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Cmp, CondBr, Instr,
                               PseudoProbe, Select)
from ..ir.semantics import eval_binop, eval_cmp
from .pass_manager import OptConfig
from .simplify_cfg import remove_unreachable_blocks


def _const_of(operand, constants: Dict[str, int]) -> Optional[int]:
    if isinstance(operand, int):
        return operand
    return constants.get(operand)


def constprop_block(block, constants: Optional[Dict[str, int]] = None) -> int:
    """Fold constants within one block (seeded with the incoming state);
    returns the number of rewrites."""
    constants = dict(constants) if constants is not None else {}
    rewrites = 0
    for index, instr in enumerate(block.instrs):
        if isinstance(instr, Assign):
            value = _const_of(instr.src, constants)
            if value is not None:
                constants[instr.dst] = value
                continue
        elif isinstance(instr, BinOp):
            lhs = _const_of(instr.lhs, constants)
            rhs = _const_of(instr.rhs, constants)
            if lhs is not None and rhs is not None:
                folded = eval_binop(instr.op, lhs, rhs)
                block.instrs[index] = Assign(instr.dst, folded, instr.dloc)
                constants[instr.dst] = folded
                rewrites += 1
                continue
        elif isinstance(instr, Cmp):
            lhs = _const_of(instr.lhs, constants)
            rhs = _const_of(instr.rhs, constants)
            if lhs is not None and rhs is not None:
                folded = eval_cmp(instr.pred, lhs, rhs)
                block.instrs[index] = Assign(instr.dst, folded, instr.dloc)
                constants[instr.dst] = folded
                rewrites += 1
                continue
        elif isinstance(instr, Select):
            cond = _const_of(instr.cond, constants)
            if cond is not None:
                chosen = instr.tval if cond else instr.fval
                block.instrs[index] = Assign(instr.dst, chosen, instr.dloc)
                value = _const_of(chosen, constants)
                if value is not None:
                    constants[instr.dst] = value
                rewrites += 1
                continue
        elif isinstance(instr, CondBr):
            cond = _const_of(instr.cond, constants)
            if cond is not None:
                target = instr.true_target if cond else instr.false_target
                block.instrs[index] = Br(target, instr.dloc)
                rewrites += 1
                continue
        # Any other definition invalidates the register's known constant.
        defined = instr.defined()
        if defined is not None:
            constants.pop(defined, None)
    return rewrites


def _transfer(block, constants: Dict[str, int]) -> Dict[str, int]:
    """Abstract execution of ``block``: the constant state at its exit."""
    state = dict(constants)
    for instr in block.instrs:
        if isinstance(instr, Assign):
            value = _const_of(instr.src, state)
        elif isinstance(instr, BinOp):
            lhs = _const_of(instr.lhs, state)
            rhs = _const_of(instr.rhs, state)
            value = (eval_binop(instr.op, lhs, rhs)
                     if lhs is not None and rhs is not None else None)
        elif isinstance(instr, Cmp):
            lhs = _const_of(instr.lhs, state)
            rhs = _const_of(instr.rhs, state)
            value = (eval_cmp(instr.pred, lhs, rhs)
                     if lhs is not None and rhs is not None else None)
        elif isinstance(instr, Select):
            cond = _const_of(instr.cond, state)
            value = (_const_of(instr.tval if cond else instr.fval, state)
                     if cond is not None else None)
        else:
            value = None
        defined = instr.defined()
        if defined is not None:
            if value is not None:
                state[defined] = value
            else:
                state.pop(defined, None)
    return state


def constprop_function(fn: Function) -> int:
    """Forward constant dataflow over the CFG, then per-block rewriting.

    The meet over CFG joins is intersection-with-agreement: a register is
    constant at a block entry only if every predecessor exits with the same
    value for it.  Loops converge because states only shrink at joins.
    """
    from ..ir.cfg import predecessors_map, reverse_post_order

    rpo = reverse_post_order(fn)
    preds = predecessors_map(fn)
    in_states: Dict[str, Optional[Dict[str, int]]] = {
        label: None for label in rpo}  # None = not yet reached
    in_states[fn.entry.label] = {}
    # Terminates: reachability only grows, and a reached state only shrinks
    # (intersection meet), both finite.
    changed = True
    while changed:
        changed = False
        for label in rpo:
            incoming = in_states[label]
            if incoming is None:
                continue
            out_state = _transfer(fn.block(label), incoming)
            for succ in fn.block(label).successors():
                if succ not in in_states:
                    continue
                current = in_states[succ]
                if current is None:
                    in_states[succ] = dict(out_state)
                    changed = True
                else:
                    merged = {reg: val for reg, val in current.items()
                              if out_state.get(reg) == val}
                    if merged != current:
                        in_states[succ] = merged
                        changed = True

    rewrites = 0
    for label in rpo:
        incoming = in_states.get(label)
        rewrites += constprop_block(fn.block(label), incoming or {})
    if rewrites:
        remove_unreachable_blocks(fn)
    return rewrites


def constprop(module: Module, config: Optional[OptConfig] = None) -> None:
    for fn in module.functions.values():
        constprop_function(fn)
