"""Dead code elimination.

Removes side-effect-free instructions whose destination register is never
used anywhere in the function.  The IR is not SSA, so "never used" is the
conservative function-wide criterion; iterating to a fixpoint still removes
chains of dead computations.
"""

from __future__ import annotations

from collections import Counter

from .. import telemetry
from ..ir.function import Function, Module
from .pass_manager import OptConfig


def dce_function(fn: Function) -> int:
    removed_total = 0
    while True:
        uses: Counter = Counter()
        for instr in fn.instructions():
            for reg in instr.uses():
                uses[reg] += 1
        removed = 0
        for block in fn.blocks:
            kept = []
            for instr in block.instrs:
                defined = instr.defined()
                if (defined is not None and not instr.has_side_effects
                        and not instr.is_terminator and uses[defined] == 0):
                    removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total


def dce(module: Module, config: OptConfig = None) -> None:
    for fn in module.functions.values():
        removed = dce_function(fn)
        if removed:
            telemetry.count("pass.dce", "instructions_removed", removed)
