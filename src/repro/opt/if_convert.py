"""If-conversion: turning small diamonds/triangles into straight-line selects.

This is one of the control-flow optimizations the paper singles out
(sec. III.A): blindly treating pseudo-probes as barriers would block it and
cost performance, so CSSPGO "fine-tunes" if-convert to be *unblocked* by
probes — probes from the folded blocks survive as **dangling** probes whose
counts are treated as unknown by profile annotation (inference fills them in).
Traditional instrumentation counters, by contrast, remain strong barriers
here, one of the reasons the instrumented binary is slower.

With profile, the pass converts only poorly-biased branches (where mispredicts
make the branchy form expensive); without profile it converts every small
diamond, matching an optimizer that lacks branch bias information.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..ir.cfg import predecessors_map
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Cmp, CondBr, Instr,
                               InstrProfIncrement, Load, PseudoProbe, Select)
from .pass_manager import OptConfig

_SPECULATABLE = (Assign, BinOp, Cmp, Select, Load)


def _side_instrs(block: BasicBlock) -> Optional[Tuple[List[Instr], List[PseudoProbe], bool]]:
    """Classify a side block: (real speculatable instrs, probes, has_counter).

    Returns None when the block contains anything that cannot be speculated.
    """
    real: List[Instr] = []
    probes: List[PseudoProbe] = []
    has_counter = False
    for instr in block.instrs[:-1]:
        if isinstance(instr, PseudoProbe):
            probes.append(instr)
        elif isinstance(instr, InstrProfIncrement):
            has_counter = True
        elif isinstance(instr, _SPECULATABLE):
            real.append(instr)
        else:
            return None
    return real, probes, has_counter


def _biased(head: BasicBlock, side: Optional[BasicBlock]) -> Optional[bool]:
    """True/False when profile says the branch is strongly/weakly biased;
    None when no profile is annotated."""
    if head.count is None or side is None or side.count is None:
        return None
    if head.count <= 0:
        return True  # cold: leave alone
    prob = side.count / head.count
    return prob < 0.2 or prob > 0.8


def if_convert_function(fn: Function, config: OptConfig) -> int:
    converted = 0
    changed = True
    while changed:
        changed = False
        preds = predecessors_map(fn)
        for head in fn.blocks:
            term = head.instrs[-1]
            if not isinstance(term, CondBr) or term.true_target == term.false_target:
                continue
            true_block = fn.block(term.true_target)
            false_block = fn.block(term.false_target)
            shape = _match_shape(fn, preds, head, true_block, false_block)
            if shape is None:
                continue
            t_side, f_side, join_label = shape
            sides = []
            blocked = False
            for side in (t_side, f_side):
                if side is None:
                    sides.append(([], [], False))
                    continue
                classified = _side_instrs(side)
                if classified is None:
                    blocked = True
                    break
                sides.append(classified)
            if blocked:
                continue
            (t_real, t_probes, t_counter), (f_real, f_probes, f_counter) = sides
            if t_counter or f_counter:
                if config.instr_blocks_if_convert:
                    continue
            if (t_probes or f_probes) and config.probes_block_if_convert:
                continue
            if len(t_real) > config.if_convert_max_instrs:
                continue
            if len(f_real) > config.if_convert_max_instrs:
                continue
            # Profile-guided filter: strongly biased branches predict well,
            # keep them as branches.
            bias = _biased(head, t_side if t_side is not None else f_side)
            if bias is True:
                continue
            telemetry.count("pass.if-convert", "branches_converted")
            if t_probes or f_probes:
                telemetry.count("pass.if-convert", "probes_made_dangling",
                                len(t_probes) + len(f_probes))
            telemetry.remark(
                "if-convert", "IfConverted", fn.name,
                f"folded branch in {head.label} of {fn.name} into selects "
                f"({len(t_probes) + len(f_probes)} probes now dangling)",
                loc=term.dloc, head=head.label)
            _convert(fn, head, term, t_real, f_real, t_probes + f_probes, join_label)
            for side in (t_side, f_side):
                if side is not None and len(preds[side.label]) == 1:
                    fn.remove_block(side.label)
            converted += 1
            changed = True
            break
    return converted


def _match_shape(fn: Function, preds, head: BasicBlock,
                 true_block: BasicBlock, false_block: BasicBlock):
    """Match diamond (head->T->J, head->F->J) or triangle (head->T->J, head->J)."""

    def is_simple_side(block: BasicBlock) -> bool:
        return (block is not head and len(preds[block.label]) == 1
                and len(block.instrs) >= 1
                and isinstance(block.instrs[-1], Br)
                and block.successors() != [block.label])

    t_ok = is_simple_side(true_block)
    f_ok = is_simple_side(false_block)
    if t_ok and f_ok:
        t_join = true_block.instrs[-1].target
        f_join = false_block.instrs[-1].target
        if t_join == f_join and t_join not in (true_block.label, false_block.label):
            return true_block, false_block, t_join
    if t_ok and not f_ok:
        if true_block.instrs[-1].target == false_block.label:
            return true_block, None, false_block.label
    if f_ok and not t_ok:
        if false_block.instrs[-1].target == true_block.label:
            return None, false_block, true_block.label
    return None


def _convert(fn: Function, head: BasicBlock, term: CondBr,
             t_real: List[Instr], f_real: List[Instr],
             probes: List[PseudoProbe], join_label: str) -> None:
    cond = term.cond
    insert_at = len(head.instrs) - 1  # before the terminator
    new_instrs: List[Instr] = []
    base = fn.fresh_reg("ic_")
    counter = [0]

    def fresh_name() -> str:
        counter[0] += 1
        return f"{base}.{counter[0]}"

    def speculate(instrs: List[Instr]) -> Dict[str, str]:
        mapping: Dict[str, str] = {}
        for instr in instrs:
            clone = instr.clone()
            clone.replace_uses(mapping)
            dst = clone.defined()
            fresh = fresh_name()
            _set_dst(clone, fresh)
            mapping[dst] = fresh
            new_instrs.append(clone)
        return mapping

    t_map = speculate(t_real)
    f_map = speculate(f_real)
    # Dangling probes: kept for structure, counts become unknown (paper III.A).
    for probe in probes:
        probe.dangling = True
        new_instrs.append(probe)
    for reg in dict.fromkeys(list(t_map) + list(f_map)):
        tval = t_map.get(reg, reg)
        fval = f_map.get(reg, reg)
        # The select inherits the true side's location (one side "wins" —
        # a realistic debug-info degradation).
        dloc = next((i.dloc for i in t_real if i.defined() == reg), None)
        if dloc is None:
            dloc = next((i.dloc for i in f_real if i.defined() == reg), None)
        new_instrs.append(Select(reg, cond, tval, fval, dloc))
    head.instrs[insert_at:insert_at] = new_instrs
    head.instrs[-1] = Br(join_label, term.dloc)


def _set_dst(instr: Instr, dst: str) -> None:
    instr.dst = dst


def if_convert(module: Module, config: OptConfig) -> None:
    if not config.enable_if_convert:
        return
    for fn in module.functions.values():
        if_convert_function(fn, config)
