"""Optimization passes and pipeline (see DESIGN.md sec. 2)."""

from .constprop import constprop, constprop_function
from .dce import dce, dce_function
from .dfe import dead_function_elimination, reachable_functions
from .if_convert import if_convert, if_convert_function
from .inliner import (CALLEE_SIZE_LIMIT, CALLER_SIZE_LIMIT, InlineResult,
                      bottom_up_order, call_graph, function_size, inline_call,
                      run_bottom_up_inliner, should_inline_profiled,
                      should_inline_static)
from .layout import (block_layout, edge_weights, ext_tsp_layout_function,
                     ext_tsp_score, split_hot_cold_function)
from .licm import licm, licm_function
from .liveness import LivenessInfo, compute_liveness, registers_of
from .loop_unroll import loop_unroll, unroll_function
from .pass_manager import OptConfig, PassManager
from .pipeline import build_pass_manager, optimize_module
from .simplify_cfg import (fold_forwarding_blocks, merge_straightline_blocks,
                           remove_unreachable_blocks, simplify_cfg,
                           simplify_cfg_function)
from .tail_merge import tail_merge, tail_merge_function

__all__ = [
    "CALLEE_SIZE_LIMIT", "CALLER_SIZE_LIMIT", "InlineResult", "LivenessInfo",
    "OptConfig", "PassManager", "block_layout", "bottom_up_order",
    "build_pass_manager",
    "call_graph", "compute_liveness", "constprop", "constprop_function",
    "dce", "dce_function",
    "dead_function_elimination", "edge_weights",
    "ext_tsp_layout_function", "ext_tsp_score", "fold_forwarding_blocks",
    "function_size", "if_convert", "if_convert_function", "inline_call",
    "licm", "licm_function", "loop_unroll", "merge_straightline_blocks",
    "optimize_module", "registers_of", "remove_unreachable_blocks",
    "reachable_functions", "run_bottom_up_inliner", "should_inline_profiled", "should_inline_static",
    "simplify_cfg", "simplify_cfg_function", "split_hot_cold_function",
    "tail_merge", "tail_merge_function", "unroll_function",
]
