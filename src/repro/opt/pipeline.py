"""Standard optimization pipeline.

One pipeline serves every PGO variant (the paper aligns pipelines for fair
comparison, sec. IV.A); variants differ only in the :class:`OptConfig` knobs
that encode what their correlation anchors permit, and in whether block counts
were annotated before the pipeline runs.

The pipeline is expressed as a :class:`PassManager` schedule so every pass
runs under the pass-instrumentation hooks (per-pass wall time + IR deltas in
telemetry, failures attributed to the offending pass by name).
"""

from __future__ import annotations

from ..ir.function import Module
from .constprop import constprop
from .dce import dce
from .dfe import dead_function_elimination
from .if_convert import if_convert
from .inliner import run_bottom_up_inliner
from .layout import block_layout
from .licm import licm
from .loop_unroll import loop_unroll
from .pass_manager import OptConfig, PassManager
from .simplify_cfg import simplify_cfg
from .tail_merge import tail_merge


def build_pass_manager(config: OptConfig, profile_annotated: bool = False,
                       verify_each: bool = False) -> PassManager:
    """Schedule the full mid-end + layout pipeline in its fixed order."""
    pm = PassManager(verify_each=verify_each)
    if config.enable_simplify:
        pm.add(lambda m: simplify_cfg(m, config), "simplify-cfg")
    if config.enable_inline:
        use_profile = profile_annotated and config.profile_inlining
        pm.add(lambda m: run_bottom_up_inliner(m, config,
                                               use_profile=use_profile),
               "inline")
    if config.enable_licm:
        pm.add(lambda m: licm(m, config), "licm")
    if config.enable_if_convert:
        pm.add(lambda m: if_convert(m, config), "if-convert")
    if config.enable_constprop:
        pm.add(lambda m: constprop(m, config), "constprop")
    if config.enable_unroll and profile_annotated:
        pm.add(lambda m: loop_unroll(m, config), "loop-unroll")
    if config.enable_tail_merge:
        pm.add(lambda m: tail_merge(m, config), "tail-merge")
    if config.enable_dce:
        pm.add(lambda m: dce(m, config), "dce")
        pm.add(lambda m: dead_function_elimination(m, config), "dfe")
    if config.enable_simplify:
        pm.add(lambda m: simplify_cfg(m, config), "simplify-cfg")
    if config.enable_layout:
        pm.add(lambda m: block_layout(m, config), "layout")
    return pm


def optimize_module(module: Module, config: OptConfig,
                    profile_annotated: bool = False,
                    verify_each: bool = False) -> None:
    """Run the full mid-end + layout pipeline in a fixed order.

    ``profile_annotated`` — True when block counts were annotated (by the
    sample loader or instrumentation profile reader) before optimization; it
    switches the inliner and unroller to their profile-guided heuristics.
    ``verify_each`` — run the IR verifier after every pass (CLI
    ``--verify-each``), trading compile time for early miscompile reports.
    """
    build_pass_manager(config, profile_annotated, verify_each).run(module)
