"""Standard optimization pipeline.

One pipeline serves every PGO variant (the paper aligns pipelines for fair
comparison, sec. IV.A); variants differ only in the :class:`OptConfig` knobs
that encode what their correlation anchors permit, and in whether block counts
were annotated before the pipeline runs.
"""

from __future__ import annotations

from ..ir.function import Module
from .constprop import constprop
from .dce import dce
from .dfe import dead_function_elimination
from .if_convert import if_convert
from .inliner import run_bottom_up_inliner
from .layout import block_layout
from .licm import licm
from .loop_unroll import loop_unroll
from .pass_manager import OptConfig
from .simplify_cfg import simplify_cfg
from .tail_merge import tail_merge


def optimize_module(module: Module, config: OptConfig,
                    profile_annotated: bool = False) -> None:
    """Run the full mid-end + layout pipeline in a fixed order.

    ``profile_annotated`` — True when block counts were annotated (by the
    sample loader or instrumentation profile reader) before optimization; it
    switches the inliner and unroller to their profile-guided heuristics.
    """
    if config.enable_simplify:
        simplify_cfg(module, config)
    if config.enable_inline:
        run_bottom_up_inliner(module, config,
                              use_profile=(profile_annotated
                                           and config.profile_inlining))
    if config.enable_licm:
        licm(module, config)
    if config.enable_if_convert:
        if_convert(module, config)
    if config.enable_constprop:
        constprop(module, config)
    if config.enable_unroll and profile_annotated:
        loop_unroll(module, config)
    if config.enable_tail_merge:
        tail_merge(module, config)
    if config.enable_dce:
        dce(module, config)
        dead_function_elimination(module, config)
    if config.enable_simplify:
        simplify_cfg(module, config)
    if config.enable_layout:
        block_layout(module, config)
