"""Block-level liveness analysis for virtual registers.

Used by dead-code elimination, loop-invariant code motion safety checks, and
the register allocator's spill-cost computation in codegen.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.cfg import predecessors_map, successors_map
from ..ir.function import Function


class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    def __init__(self) -> None:
        self.live_in: Dict[str, Set[str]] = {}
        self.live_out: Dict[str, Set[str]] = {}
        self.use: Dict[str, Set[str]] = {}
        self.defs: Dict[str, Set[str]] = {}


def compute_liveness(fn: Function) -> LivenessInfo:
    """Classic backward dataflow: live_out(B) = union(live_in(succ))."""
    info = LivenessInfo()
    succs = successors_map(fn)
    for block in fn.blocks:
        use: Set[str] = set()
        defs: Set[str] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in defs:
                    use.add(reg)
            defined = instr.defined()
            if defined is not None:
                defs.add(defined)
        info.use[block.label] = use
        info.defs[block.label] = defs
        info.live_in[block.label] = set()
        info.live_out[block.label] = set()

    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            label = block.label
            out: Set[str] = set()
            for succ in succs[label]:
                out |= info.live_in[succ]
            new_in = info.use[label] | (out - info.defs[label])
            if out != info.live_out[label] or new_in != info.live_in[label]:
                info.live_out[label] = out
                info.live_in[label] = new_in
                changed = True
    return info


def registers_of(fn: Function) -> Set[str]:
    """All virtual registers referenced in the function (params included)."""
    regs: Set[str] = set(fn.params)
    for instr in fn.instructions():
        regs.update(instr.uses())
        defined = instr.defined()
        if defined is not None:
            regs.add(defined)
    return regs
