"""Dead function elimination.

After inlining, standalone copies of fully-inlined callees often have no
remaining call sites; a linker with ``--gc-sections`` (standard for the
paper's production builds) drops them.  This pass removes functions
unreachable from the module entry through direct calls.

This is where the pre-inliner's selectivity turns into the *code size
reductions* of Fig. 7: the more completely a callee's hot contexts are
inlined (and its cold contexts left out-of-line), the more copies disappear.
"""

from __future__ import annotations

from typing import Set

from .. import telemetry
from ..ir.function import Module
from .pass_manager import OptConfig


def reachable_functions(module: Module) -> Set[str]:
    reachable: Set[str] = set()
    worklist = [module.entry_function]
    while worklist:
        name = worklist.pop()
        if name in reachable or name not in module.functions:
            continue
        reachable.add(name)
        worklist.extend(module.functions[name].callees())
    return reachable


def dead_function_elimination(module: Module, config: OptConfig = None) -> int:
    """Drop unreachable functions; returns how many were removed."""
    keep = reachable_functions(module)
    removed = 0
    for name in list(module.functions):
        if name not in keep:
            del module.functions[name]
            removed += 1
    if removed:
        telemetry.count("pass.dfe", "functions_removed", removed)
    return removed
