"""Profile-guided basic-block layout (Ext-TSP style) and hot/cold splitting.

The paper enables "function splitting, Ext-TSP block layout for all variants
of PGO" (sec. IV.A), so both are implemented here and run whenever a profile
is annotated.  The layout algorithm is the greedy chain-merging formulation of
Ext-TSP [Newell & Pupyrev, 2020]: blocks start as singleton chains, the
hottest edges merge chains end-to-start so hot branches become fall-throughs,
and surviving chains are emitted hottest-first.

:func:`ext_tsp_score` implements the published scoring function and is used by
tests/benchmarks to check that layout improved locality rather than trusting
the transform blindly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..ir.cfg import predecessors_map
from ..ir.function import Function, Module
from .pass_manager import OptConfig


def edge_weights(fn: Function) -> Dict[Tuple[str, str], float]:
    """Approximate CFG edge counts from flow-consistent block counts.

    For a two-successor block the outgoing flow splits proportionally to the
    successors' own counts (after inference the counts are flow-consistent,
    making this a good estimate; without inference it degrades gracefully).
    """
    weights: Dict[Tuple[str, str], float] = {}
    preds = predecessors_map(fn)
    for block in fn.blocks:
        succs = block.successors()
        if not succs:
            continue
        count = block.count or 0.0
        if len(succs) == 1:
            weights[(block.label, succs[0])] = count
            continue
        succ_counts = []
        for succ in succs:
            succ_block = fn.block(succ)
            share = succ_block.count or 0.0
            # Successors with several predecessors contribute only a share.
            num_preds = max(1, len(preds[succ]))
            succ_counts.append(share / num_preds)
        total = sum(succ_counts)
        for succ, est in zip(succs, succ_counts):
            if total > 0:
                weights[(block.label, succ)] = count * (est / total)
            else:
                weights[(block.label, succ)] = count / len(succs)
    return weights


def ext_tsp_score(order: List[str], fn: Function,
                  weights: Optional[Dict[Tuple[str, str], float]] = None,
                  block_sizes: Optional[Dict[str, int]] = None) -> float:
    """Ext-TSP objective: weighted sum over edges of a locality bonus.

    Fall-through edges score 1.0, short forward jumps 0.1, short backward
    jumps 0.1 (both within a 1024-"byte" window), and far jumps 0.  Block size
    defaults to the real instruction count.
    """
    if weights is None:
        weights = edge_weights(fn)
    if block_sizes is None:
        from ..ir.instructions import PseudoProbe
        block_sizes = {
            b.label: sum(1 for i in b.instrs if not isinstance(i, PseudoProbe)) * 4
            for b in fn.blocks}
    position: Dict[str, int] = {}
    offset = 0
    for label in order:
        position[label] = offset
        offset += block_sizes.get(label, 4)
    score = 0.0
    for (src, dst), weight in weights.items():
        if src not in position or dst not in position:
            continue
        src_end = position[src] + block_sizes.get(src, 4)
        dst_begin = position[dst]
        distance = dst_begin - src_end
        if distance == 0:
            score += weight
        elif 0 < distance <= 1024:
            score += 0.1 * weight * (1 - distance / 1024)
        elif -1024 <= distance < 0:
            score += 0.1 * weight * (1 + distance / 1024)
    return score


def ext_tsp_layout_function(fn: Function) -> None:
    """Reorder ``fn.blocks`` by greedy chain merging on hot edges."""
    if all(b.count is None for b in fn.blocks):
        return  # no profile: keep source order
    weights = edge_weights(fn)
    chains: Dict[str, List[str]] = {b.label: [b.label] for b in fn.blocks}
    chain_of: Dict[str, str] = {b.label: b.label for b in fn.blocks}
    for (src, dst), _w in sorted(weights.items(), key=lambda kv: -kv[1]):
        src_chain = chain_of[src]
        dst_chain = chain_of[dst]
        if src_chain == dst_chain:
            continue
        # Merge only when src ends its chain and dst begins its chain, so the
        # edge becomes a fall-through.
        if chains[src_chain][-1] != src or chains[dst_chain][0] != dst:
            continue
        # Never bury the entry block mid-chain.
        if dst == fn.entry.label:
            continue
        merged = chains[src_chain] + chains[dst_chain]
        del chains[dst_chain]
        chains[src_chain] = merged
        for label in merged:
            chain_of[label] = src_chain

    def chain_heat(labels: List[str]) -> float:
        return max((fn.block(l).count or 0.0) for l in labels)

    entry_chain = chain_of[fn.entry.label]
    ordered_chains = [chains[entry_chain]]
    rest = [c for cid, c in chains.items() if cid != entry_chain]
    rest.sort(key=chain_heat, reverse=True)
    ordered_chains.extend(rest)
    new_order = [label for chain in ordered_chains for label in chain]
    fn.blocks = [fn.block(label) for label in new_order]
    fn.reindex()


def split_hot_cold_function(fn: Function, config: OptConfig,
                            summary=None) -> int:
    """Mark cold blocks; codegen moves them into the far ``.cold`` section.

    A block is cold when the profile summary says so (globally cold count),
    falling back to a per-function fraction of the hottest block when no
    summary exists.
    """
    counts = [b.count for b in fn.blocks if b.count is not None]
    if not counts:
        return 0
    hottest = max(counts)
    if hottest <= 0:
        return 0
    cold = 0
    for block in fn.blocks:
        if block is fn.entry:
            continue
        count = block.count or 0.0
        if summary is not None:
            is_cold = summary.is_cold(count) or count <= 0
        else:
            is_cold = count <= config.cold_count_fraction * hottest
        if is_cold:
            block.is_cold = True
            cold += 1
    # Keep layout order but sink cold blocks to the end of the function.
    hot_blocks = [b for b in fn.blocks if not b.is_cold]
    cold_blocks = [b for b in fn.blocks if b.is_cold]
    fn.blocks = hot_blocks + cold_blocks
    fn.reindex()
    return cold


def block_layout(module: Module, config: OptConfig) -> None:
    if not config.enable_layout:
        return
    observing = telemetry.enabled()
    for fn in module.functions.values():
        before = [b.label for b in fn.blocks] if observing else None
        ext_tsp_layout_function(fn)
        if observing and [b.label for b in fn.blocks] != before:
            telemetry.count("pass.layout", "functions_reordered")
            telemetry.remark("layout", "BlockLayout", fn.name,
                             f"Ext-TSP reordered blocks of {fn.name}")
        if config.enable_hot_cold_split:
            cold = split_hot_cold_function(fn, config, module.profile_summary)
            if cold:
                telemetry.count("pass.layout", "blocks_split_cold", cold)
                telemetry.remark(
                    "layout", "HotColdSplit", fn.name,
                    f"sank {cold} cold blocks of {fn.name} to the far "
                    f"section", cold_blocks=cold)
