"""Code-merge optimization: identical-block merging ("tail merge").

This is the paper's canonical *code merge* profile hazard (sec. III.A(a)):
once two blocks from different source locations are merged, "there is no
reasonable way to distribute merged profile counts back to the original
program locations".  The merge signature deliberately ignores debug locations
— that is precisely why DWARF-based correlation is damaged — but it *does*
include pseudo-probes and instrumentation counters, so blocks carrying
distinct probe/counter ids never merge.  This reproduces both the hazard
(for AutoFDO) and its mitigation (for CSSPGO and Instr PGO).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import telemetry
from ..ir.function import Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Call, Cmp, CondBr, Instr,
                               InstrProfIncrement, Load, PseudoProbe, Ret,
                               Select, Store)
from .pass_manager import OptConfig


def _instr_signature(instr: Instr) -> tuple:
    """Structural signature of an instruction, excluding debug locations."""
    if isinstance(instr, Assign):
        return ("mov", instr.dst, instr.src)
    if isinstance(instr, BinOp):
        return ("binop", instr.op, instr.dst, instr.lhs, instr.rhs)
    if isinstance(instr, Cmp):
        return ("cmp", instr.pred, instr.dst, instr.lhs, instr.rhs)
    if isinstance(instr, Select):
        return ("select", instr.dst, instr.cond, instr.tval, instr.fval)
    if isinstance(instr, Load):
        return ("load", instr.dst, instr.array, instr.index)
    if isinstance(instr, Store):
        return ("store", instr.array, instr.index, instr.value)
    if isinstance(instr, Call):
        return ("call", instr.dst, instr.callee, tuple(instr.args))
    if isinstance(instr, Br):
        return ("br", instr.target)
    if isinstance(instr, CondBr):
        return ("condbr", instr.cond, instr.true_target, instr.false_target)
    if isinstance(instr, Ret):
        return ("ret", instr.value)
    if isinstance(instr, PseudoProbe):
        # Distinct probe ids make distinct signatures: probes block merging.
        return ("probe", instr.guid, instr.probe_id, instr.inline_stack)
    if isinstance(instr, InstrProfIncrement):
        return ("counter", instr.func_name, instr.counter_id)
    raise TypeError(f"unhandled instruction {instr!r}")


def _block_signature(block) -> tuple:
    return tuple(_instr_signature(i) for i in block.instrs)


def tail_merge_function(fn: Function) -> int:
    """Merge identical blocks; returns the number of blocks removed."""
    merged_total = 0
    changed = True
    while changed:
        changed = False
        groups: Dict[tuple, List] = {}
        for block in fn.blocks:
            if block is fn.entry:
                continue
            groups.setdefault(_block_signature(block), []).append(block)
        for signature, blocks in groups.items():
            if len(blocks) < 2:
                continue
            keeper, *victims = blocks
            for victim in victims:
                _retarget_all(fn, victim.label, keeper.label)
                if victim.count is not None:
                    keeper.count = (keeper.count or 0) + victim.count
                fn.remove_block(victim.label)
                merged_total += 1
            changed = True
            break
    return merged_total


def _retarget_all(fn: Function, old: str, new: str) -> None:
    for block in fn.blocks:
        term = block.instrs[-1]
        if isinstance(term, Br) and term.target == old:
            term.target = new
        elif isinstance(term, CondBr):
            if term.true_target == old:
                term.true_target = new
            if term.false_target == old:
                term.false_target = new


def tail_merge(module: Module, config: OptConfig = None) -> None:
    for fn in module.functions.values():
        merged = tail_merge_function(fn)
        if merged:
            telemetry.count("pass.tail-merge", "blocks_merged", merged)
            telemetry.remark(
                "tail-merge", "BlocksMerged", fn.name,
                f"merged {merged} identical blocks in {fn.name} "
                f"(code-merge hazard for DWARF correlation)",
                blocks_merged=merged)
