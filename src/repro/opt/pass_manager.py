"""Pass manager and pipeline configuration.

:class:`OptConfig` collects every knob the experiments vary: which passes run,
how correlation anchors (pseudo-probes / instrumentation counters) constrain
them, inliner thresholds, and unroll factors.  The PGO variants in
:mod:`repro.pgo` are expressed as different configs over the same pipeline,
mirroring the paper's "align the optimization pipeline to the extent possible
for fair comparison" methodology (sec. IV.A).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .. import telemetry
from ..ir.function import Module


class OptConfig:
    """Tunable optimization pipeline configuration."""

    def __init__(
        self,
        *,
        enable_simplify: bool = True,
        enable_inline: bool = True,
        enable_licm: bool = True,
        enable_if_convert: bool = True,
        enable_unroll: bool = True,
        enable_tail_merge: bool = True,
        enable_dce: bool = True,
        # Off by default: the headline evaluation pipeline is calibrated
        # without it; the specialization ablation turns it on.
        enable_constprop: bool = False,
        enable_layout: bool = True,
        enable_hot_cold_split: bool = True,
        # --- correlation-anchor semantics -------------------------------
        # Pseudo-probes always block code merge (their ids differ per block)
        # but the paper fine-tunes if-convert & friends to be unblocked.
        probes_block_if_convert: bool = False,
        # Traditional instrumentation counters are strong barriers.
        instr_blocks_merge: bool = True,
        instr_blocks_if_convert: bool = True,
        instr_blocks_unroll: bool = True,
        instr_blocks_licm: bool = True,
        # --- thresholds ---------------------------------------------------
        # When False, the pipeline inliner ignores the profile (static
        # threshold only) — used by full CSSPGO, where the pre-inliner owns
        # all profile-guided inline decisions (paper sec. III.B(b)).
        profile_inlining: bool = True,
        inline_size_threshold: int = 18,
        inline_hot_threshold: int = 110,
        inline_hot_callsite_fraction: float = 0.30,
        unroll_factor: int = 4,
        unroll_max_body_instrs: int = 24,
        unroll_hot_fraction: float = 1.5,
        cold_count_fraction: float = 0.01,
        if_convert_max_instrs: int = 3,
    ):
        self.enable_simplify = enable_simplify
        self.enable_inline = enable_inline
        self.enable_licm = enable_licm
        self.enable_if_convert = enable_if_convert
        self.enable_unroll = enable_unroll
        self.enable_tail_merge = enable_tail_merge
        self.enable_dce = enable_dce
        self.enable_constprop = enable_constprop
        self.enable_layout = enable_layout
        self.enable_hot_cold_split = enable_hot_cold_split
        self.probes_block_if_convert = probes_block_if_convert
        self.instr_blocks_merge = instr_blocks_merge
        self.instr_blocks_if_convert = instr_blocks_if_convert
        self.instr_blocks_unroll = instr_blocks_unroll
        self.instr_blocks_licm = instr_blocks_licm
        self.profile_inlining = profile_inlining
        self.inline_size_threshold = inline_size_threshold
        self.inline_hot_threshold = inline_hot_threshold
        self.inline_hot_callsite_fraction = inline_hot_callsite_fraction
        self.unroll_factor = unroll_factor
        self.unroll_max_body_instrs = unroll_max_body_instrs
        self.unroll_hot_fraction = unroll_hot_fraction
        self.cold_count_fraction = cold_count_fraction
        self.if_convert_max_instrs = if_convert_max_instrs


def _module_shape(module: Module) -> Tuple[int, int, int, int]:
    """(functions, blocks, instructions, probes) — the IR-delta observables
    the per-pass telemetry records (computed only while telemetry is on)."""
    from ..ir.instructions import PseudoProbe
    functions = len(module.functions)
    blocks = 0
    instrs = 0
    probes = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            blocks += 1
            instrs += len(block.instrs)
            for instr in block.instrs:
                if isinstance(instr, PseudoProbe):
                    probes += 1
    return functions, blocks, instrs, probes


class PassManager:
    """Runs a sequence of module passes, optionally verifying between them.

    This is also the pipeline's ``PassInstrumentation`` point: while
    telemetry is enabled, every pass gets a wall-clock span (category
    ``"pass"``) annotated with the IR deltas it caused — functions, blocks,
    instructions, and probes added or removed — independent of
    ``verify_each``.  Failures in a pass or in the verifier always name the
    offending pass.
    """

    def __init__(self, verify_each: bool = False):
        self.passes: List[Callable[[Module], None]] = []
        self.verify_each = verify_each
        self.pass_names: List[str] = []

    def add(self, pass_fn: Callable[[Module], None], name: Optional[str] = None) -> "PassManager":
        self.passes.append(pass_fn)
        self.pass_names.append(name or getattr(pass_fn, "__name__", "pass"))
        return self

    def run(self, module: Module) -> None:
        from ..ir.verifier import verify_module
        session = telemetry.current()
        for pass_fn, name in zip(self.passes, self.pass_names):
            if session is None:
                try:
                    pass_fn(module)
                except Exception as exc:
                    raise RuntimeError(f"pass {name} failed: {exc}") from exc
            else:
                before = _module_shape(module)
                with session.span(name, "pass") as span:
                    try:
                        pass_fn(module)
                    except Exception as exc:
                        raise RuntimeError(f"pass {name} failed: {exc}") from exc
                after = _module_shape(module)
                span.set(functions=after[0], blocks=after[1],
                         instrs=after[2], probes=after[3],
                         functions_delta=after[0] - before[0],
                         blocks_delta=after[1] - before[1],
                         instrs_delta=after[2] - before[2],
                         probes_delta=after[3] - before[3])
                session.count("pass." + name, "runs")
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:  # pragma: no cover - diagnostics path
                    raise RuntimeError(f"verification failed after pass {name}: {exc}") from exc
