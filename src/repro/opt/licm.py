"""Loop-invariant code motion.

The paper's canonical *code duplication / code motion* hazard (sec. III.A(b)):
LICM moves instructions into colder regions while their debug line stays the
same, which is why DWARF correlation uses a max-over-instructions heuristic.
The pass itself is profile-independent and runs in every build.

Safety rules for the non-SSA register machine (all must hold to hoist an
instruction ``I`` defining ``r`` out of loop ``L``):

* ``I`` is pure (mov/binop/cmp) or a load from an array not stored to inside
  ``L`` while ``L`` contains no calls (calls may write global arrays);
* all register operands of ``I`` are loop-invariant (no definition in ``L``);
* ``r`` has exactly one definition inside ``L`` (``I`` itself);
* every use of ``r`` inside ``L`` is dominated by ``I``;
* ``r`` is dead after the loop, or ``I``'s block dominates every loop exit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..ir.cfg import Loop, dominators, loop_exits, natural_loops, predecessors_map
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import (Assign, BinOp, Br, Call, Cmp, Instr, Load,
                               Store)
from .liveness import compute_liveness
from .pass_manager import OptConfig


def _ensure_preheader(fn: Function, loop: Loop) -> Optional[BasicBlock]:
    """Find or create the unique out-of-loop predecessor block of the header."""
    preds = predecessors_map(fn)
    outside = [p for p in preds[loop.header] if p not in loop.body]
    if not outside:
        return None  # unreachable loop or header == entry with no preds
    if len(outside) == 1:
        pred = fn.block(outside[0])
        if len(pred.successors()) == 1:
            return pred
    # Create a dedicated preheader and retarget all outside predecessors.
    label = fn.fresh_label("preheader")
    preheader = BasicBlock(label, [Br(loop.header)])
    fn.add_block(preheader)
    from ..ir.instructions import CondBr
    for pred_label in outside:
        term = fn.block(pred_label).instrs[-1]
        if isinstance(term, Br) and term.target == loop.header:
            term.target = label
        elif isinstance(term, CondBr):
            if term.true_target == loop.header:
                term.true_target = label
            if term.false_target == loop.header:
                term.false_target = label
    return preheader


def _loop_defs(fn: Function, loop: Loop) -> Dict[str, int]:
    defs: Dict[str, int] = {}
    for label in loop.body:
        for instr in fn.block(label).instrs:
            defined = instr.defined()
            if defined is not None:
                defs[defined] = defs.get(defined, 0) + 1
    return defs


def _stores_and_calls(fn: Function, loop: Loop) -> Tuple[Set[str], bool]:
    stored: Set[str] = set()
    has_call = False
    for label in loop.body:
        for instr in fn.block(label).instrs:
            if isinstance(instr, Store):
                stored.add(instr.array)
            elif isinstance(instr, Call):
                has_call = True
    return stored, has_call


def licm_function(fn: Function) -> int:
    hoisted_total = 0
    for loop in natural_loops(fn):
        hoisted_total += _licm_loop(fn, loop)
    return hoisted_total


def _licm_loop(fn: Function, loop: Loop) -> int:
    preheader = _ensure_preheader(fn, loop)
    if preheader is None:
        return 0
    hoisted_total = 0
    changed = True
    while changed:
        changed = False
        dom = dominators(fn)
        liveness = compute_liveness(fn)
        defs = _loop_defs(fn, loop)
        stored_arrays, has_call = _stores_and_calls(fn, loop)
        exits = loop_exits(fn, loop)
        exit_targets = {t for _, t in exits}
        for label in sorted(loop.body):
            block = fn.block(label)
            for idx, instr in enumerate(block.instrs):
                if not _hoistable_kind(instr, stored_arrays, has_call):
                    continue
                if any(defs.get(reg, 0) > 0 for reg in instr.uses()):
                    continue
                dst = instr.defined()
                if dst is None or defs.get(dst, 0) != 1:
                    continue
                if not _uses_dominated(fn, loop, dom, label, idx, dst):
                    continue
                live_after = any(dst in liveness.live_in[t] for t in exit_targets
                                 if t in liveness.live_in)
                if live_after and not all(label in dom[t] for t in exit_targets
                                          if t in dom):
                    continue
                # Hoist: insert before the preheader terminator.
                block.instrs.pop(idx)
                preheader.instrs.insert(len(preheader.instrs) - 1, instr)
                hoisted_total += 1
                changed = True
                break
            if changed:
                break
    return hoisted_total


def _hoistable_kind(instr: Instr, stored_arrays: Set[str], has_call: bool) -> bool:
    if isinstance(instr, (Assign, BinOp, Cmp)):
        return True
    if isinstance(instr, Load):
        return instr.array not in stored_arrays and not has_call
    return False


def _uses_dominated(fn: Function, loop: Loop, dom, def_label: str,
                    def_idx: int, reg: str) -> bool:
    for label in loop.body:
        block = fn.block(label)
        for idx, instr in enumerate(block.instrs):
            if reg in instr.uses():
                if label == def_label:
                    if idx < def_idx:
                        return False
                elif def_label not in dom.get(label, set()):
                    return False
    return True


def licm(module: Module, config: OptConfig = None) -> None:
    if config is not None and not config.enable_licm:
        return
    for fn in module.functions.values():
        hoisted = licm_function(fn)
        if hoisted:
            telemetry.count("pass.licm", "instructions_hoisted", hoisted)
