"""Profile-guided loop unrolling.

Unrolls hot self-loop ("do-while") blocks by chaining ``factor`` copies of the
body, each re-testing the loop condition, so semantics are preserved for any
trip count.  The win in the cost model comes from converting taken back-edges
into fall-through between copies.

This is the paper's *code duplication* hazard (sec. III.A(b)): every copy
carries the same debug lines, so DWARF correlation — which takes the max over
same-line instructions — undercounts by roughly the unroll factor, while
pseudo-probes are duplicated with their ids intact and correlation *sums*
duplicate probe counts back to an accurate total.

Profile maintenance: annotated counts are divided by the unroll factor across
the copies (the mechanical update described in sec. II.B).
"""

from __future__ import annotations

from typing import List, Optional

from .. import telemetry
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import Br, CondBr, InstrProfIncrement, PseudoProbe
from .pass_manager import OptConfig


def _is_self_loop(block: BasicBlock) -> Optional[str]:
    """If the block is a do-while self loop, return the exit label."""
    term = block.instrs[-1]
    if not isinstance(term, CondBr):
        return None
    if term.true_target == block.label and term.false_target != block.label:
        return term.false_target
    if term.false_target == block.label and term.true_target != block.label:
        return term.true_target
    return None


def _real_size(block: BasicBlock) -> int:
    return sum(1 for i in block.instrs if not isinstance(i, PseudoProbe))


def unroll_function(fn: Function, config: OptConfig, summary=None) -> int:
    unrolled = 0
    for block in list(fn.blocks):
        exit_label = _is_self_loop(block)
        if exit_label is None:
            continue
        if _real_size(block) > config.unroll_max_body_instrs:
            continue
        if config.instr_blocks_unroll and any(
                isinstance(i, InstrProfIncrement) for i in block.instrs):
            continue
        # Only profile-identified globally-hot loops are unrolled: a cold or
        # unknown loop is left rolled (size discipline).
        if block.count is None:
            continue
        if summary is None or not summary.is_hot(block.count):
            continue
        telemetry.count("pass.loop-unroll", "loops_unrolled")
        telemetry.remark(
            "loop-unroll", "Unrolled", fn.name,
            f"unrolled hot self-loop {block.label} by factor "
            f"{config.unroll_factor} (count {block.count:.0f})",
            loc=block.instrs[-1].dloc, factor=config.unroll_factor,
            block=block.label)
        _unroll_self_loop(fn, block, exit_label, config.unroll_factor)
        unrolled += 1
    return unrolled


def _unroll_self_loop(fn: Function, block: BasicBlock, exit_label: str,
                      factor: int) -> None:
    copies: List[BasicBlock] = []
    for i in range(factor - 1):
        label = fn.fresh_label(f"{block.label}.unroll")
        copy = BasicBlock(label, [instr.clone() for instr in block.instrs])
        fn.add_block(copy, after=copies[-1].label if copies else block.label)
        copies.append(copy)
    # Chain: block -> copies[0] -> ... -> copies[-1] -> block
    chain = [block] + copies
    for i, current in enumerate(chain):
        term = current.instrs[-1]
        assert isinstance(term, CondBr)
        next_label = chain[(i + 1) % len(chain)].label
        if term.true_target == block.label or (i > 0 and term.true_target == current.label):
            term.true_target = next_label
            term.false_target = exit_label
        else:
            term.false_target = next_label
            term.true_target = exit_label
    # Copies were cloned from block verbatim: their self-targets still point at
    # the original label, fixed above by matching against block.label.
    if block.count is not None:
        original_count = block.count
        for current in chain:
            current.count = original_count / factor


def loop_unroll(module: Module, config: OptConfig) -> None:
    if not config.enable_unroll:
        return
    for fn in module.functions.values():
        unroll_function(fn, config, module.profile_summary)
