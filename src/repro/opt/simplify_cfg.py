"""CFG simplification: unreachable-block removal, jump forwarding, and
straight-line block merging.

Frequency-preservation rules (what makes this pass safe for *all* PGO
variants): a block is only folded away when its execution frequency provably
equals that of the block absorbing it.  Merging a single-successor block with
its single-predecessor block satisfies this, so probes and counters simply
move along.  Empty forwarding blocks are only removed when they carry no
correlation anchors (a probe's frequency is the *edge* frequency, which no
surviving block represents).
"""

from __future__ import annotations

from typing import Dict

from .. import telemetry
from ..ir.cfg import predecessors_map, reachable_blocks
from ..ir.function import Function, Module
from ..ir.instructions import Br, CondBr, Instr, PseudoProbe
from .pass_manager import OptConfig


def remove_unreachable_blocks(fn: Function) -> int:
    reachable = reachable_blocks(fn)
    removed = 0
    for block in list(fn.blocks):
        if block.label not in reachable:
            fn.remove_block(block.label)
            removed += 1
    return removed


def _retarget(fn: Function, old: str, new: str) -> None:
    for block in fn.blocks:
        term = block.instrs[-1]
        if isinstance(term, Br) and term.target == old:
            term.target = new
        elif isinstance(term, CondBr):
            if term.true_target == old:
                term.true_target = new
            if term.false_target == old:
                term.false_target = new


def fold_forwarding_blocks(fn: Function) -> int:
    """Remove blocks that consist solely of an unconditional branch.

    Blocks containing probes or counters are kept: their frequency is an edge
    frequency that would be lost (see module docstring).
    """
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry:
                continue
            if len(block.instrs) == 1 and isinstance(block.instrs[0], Br):
                target = block.instrs[0].target
                if target == block.label:
                    continue  # self loop: infinite loop block, keep
                _retarget(fn, block.label, target)
                fn.remove_block(block.label)
                folded += 1
                changed = True
                break
    return folded


def canonicalize_condbr(fn: Function) -> int:
    """Rewrite ``condbr c, X, X`` into ``br X``."""
    rewritten = 0
    for block in fn.blocks:
        term = block.instrs[-1]
        if isinstance(term, CondBr) and term.true_target == term.false_target:
            block.instrs[-1] = Br(term.true_target, term.dloc)
            rewritten += 1
    return rewritten


def merge_straightline_blocks(fn: Function) -> int:
    """Merge ``P -> B`` when P's only successor is B and B's only pred is P."""
    merged = 0
    changed = True
    while changed:
        changed = False
        preds = predecessors_map(fn)
        for pred_block in fn.blocks:
            succs = pred_block.successors()
            if len(succs) != 1:
                continue
            succ_label = succs[0]
            if succ_label == pred_block.label:
                continue
            if len(preds.get(succ_label, ())) != 1:
                continue
            succ_block = fn.block(succ_label)
            if succ_block is fn.entry:
                continue
            # Absorb: drop P's terminator, append B's instructions.
            pred_block.instrs.pop()
            pred_block.instrs.extend(succ_block.instrs)
            if pred_block.count is None:
                pred_block.count = succ_block.count
            fn.remove_block(succ_label)
            merged += 1
            changed = True
            break
    return merged


def simplify_cfg_function(fn: Function) -> int:
    removed = remove_unreachable_blocks(fn)
    canonicalized = canonicalize_condbr(fn)
    folded = fold_forwarding_blocks(fn)
    merged = merge_straightline_blocks(fn)
    if removed:
        telemetry.count("pass.simplify-cfg", "unreachable_blocks_removed",
                        removed)
    if canonicalized:
        telemetry.count("pass.simplify-cfg", "condbr_canonicalized",
                        canonicalized)
    if folded:
        telemetry.count("pass.simplify-cfg", "forwarding_blocks_folded",
                        folded)
    if merged:
        telemetry.count("pass.simplify-cfg", "straightline_blocks_merged",
                        merged)
    return removed + canonicalized + folded + merged


def simplify_cfg(module: Module, config: OptConfig = None) -> None:
    for fn in module.functions.values():
        simplify_cfg_function(fn)
