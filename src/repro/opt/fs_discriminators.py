"""FS-AutoFDO discriminator assignment (paper sec. IV.A and [21]).

FS-AutoFDO multiplexes a single sampled profile into *late-stage* profiles by
giving duplicated instructions distinct DWARF discriminators: after the
optimizer has cloned code (unrolling, jump threading, inlining-created
copies), every instruction that shares a source line with instructions in
other blocks receives a discriminator identifying its block.  Sampled counts
keyed by (line, discriminator) can then be re-annotated *onto the optimized
CFG*, fixing the max-heuristic undercount that plain AutoFDO suffers on
duplicated code.

The catch — and the reason the paper's production deployment rejected
FS-AutoFDO — is *stability*: the assignment depends on the optimized CFG
shape, so "profile and code generation [must be] very stable between
iterations".  If the profiling build and the optimizing build diverge (a
source edit, a different optimization decision), the same (line,
discriminator) key names *different* code in the two builds and annotation
degrades below plain AutoFDO.  The FS_AUTOFDO variant and its ablation bench
reproduce both sides of that trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.function import Function, Module
from ..ir.instructions import PseudoProbe


def assign_fs_discriminators(module: Module) -> int:
    """Assign block-identifying discriminators to duplicated-line code.

    Deterministic given the function's block order (which is itself a
    function of the optimization decisions — the stability hazard).
    Returns the number of instructions that received a nonzero discriminator.
    """
    assigned = 0
    for fn in module.functions.values():
        # line-key -> ordered list of block labels containing it.
        blocks_for_line: Dict[tuple, List[str]] = {}
        for block in fn.blocks:
            for instr in block.instrs:
                if instr.dloc is None or isinstance(instr, PseudoProbe):
                    continue
                key = (instr.dloc.line, instr.dloc.inline_stack)
                blocks = blocks_for_line.setdefault(key, [])
                if block.label not in blocks:
                    blocks.append(block.label)
        for block_index, block in enumerate(fn.blocks):
            for instr in block.instrs:
                if instr.dloc is None or isinstance(instr, PseudoProbe):
                    continue
                key = (instr.dloc.line, instr.dloc.inline_stack)
                blocks = blocks_for_line[key]
                if len(blocks) > 1:
                    disc = blocks.index(block.label) + 1
                    instr.dloc = instr.dloc.with_discriminator(disc)
                    assigned += 1
    return assigned
