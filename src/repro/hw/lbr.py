"""Last Branch Record: the PMU's taken-branch ring buffer.

Models Intel's LBR facility (paper sec. III.B): a fixed-depth ring of
(source, target) address pairs for retired taken branches — conditional
branches that were taken, unconditional jumps, calls, and returns.
Not-taken conditional branches do not enter the ring.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple


class LBRStack:
    """Fixed-depth ring buffer of taken-branch records."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._ring: Deque[Tuple[int, int]] = deque(maxlen=depth)
        #: Branches recorded over the session (telemetry; cheap local int).
        self.recorded = 0
        #: Entries evicted because the ring was full — how much history each
        #: sample is missing beyond the window.
        self.wraps = 0

    def record(self, source: int, target: int) -> None:
        self.recorded += 1
        if len(self._ring) == self.depth:
            self.wraps += 1
        self._ring.append((source, target))

    def snapshot(self) -> List[Tuple[int, int]]:
        """Current contents, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)
