"""PMU sampling: period counting, LBR snapshots, synchronized stack samples,
and the skid behaviour PEBS fixes.

The paper (sec. III.B) reconstructs calling contexts from *synchronized* LBR
and stack samples and notes that without PEBS "stack sample can sometimes lag
behind LBR sample by one frame".  We model that skid directly: in non-PEBS
mode the stack snapshot delivered with a sample is the stack as it was
*before* the most recent control transfer retired, so whenever the last LBR
entry is a call or return the stack is off by one frame.  With ``pebs=True``
the snapshot is taken at the sampled instruction exactly.

Overhead discipline (the paper's always-on pitch, sec. IV): sampling work is
proportional to *samples*, not to retired branches.

* With ``pebs=True`` (the default) :meth:`PMU.on_branch` only records the LBR
  entry — the lagged snapshot would never be consumed, so it is never taken.
* With ``pebs=False`` the pre-transfer stack must still be observable at
  sample time, but executors can register an O(1) ``lagged_capture`` hook
  (e.g. a cons-list reference into an incrementally maintained return stack)
  plus a ``lagged_materialize`` hook; the expensive materialization then runs
  at most once per sampling window instead of once per taken branch.
  Executors without such hooks fall back to the eager full walk.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from .. import telemetry
from .lbr import LBRStack
from .perf_data import PerfData, PerfSample


class PMUConfig:
    """Sampling configuration (defaults mirror the paper's setup)."""

    def __init__(self, period: int = 97, lbr_depth: int = 16,
                 pebs: bool = True, jitter_seed: int = 12345):
        # A prime period avoids phase-locking with loop bodies, like the
        # randomization production profilers apply.
        self.period = period
        self.lbr_depth = lbr_depth
        self.pebs = pebs
        self.jitter_seed = jitter_seed


class PMU:
    """Performance monitoring unit attached to the executor.

    The executor calls :meth:`on_branch` for every retired taken branch and
    :meth:`on_retire` for every retired instruction; the PMU fires a sample
    every ``period`` instructions (with a little seeded jitter).
    """

    def __init__(self, config: PMUConfig,
                 stack_walker: Callable[[], List[int]],
                 lagged_capture: Optional[Callable[[], object]] = None,
                 lagged_materialize: Optional[
                     Callable[[object], List[int]]] = None):
        self.config = config
        self.lbr = LBRStack(config.lbr_depth)
        self.data = PerfData(config.period, config.lbr_depth, config.pebs)
        self._stack_walker = stack_walker
        self._lagged_capture = lagged_capture
        self._lagged_materialize = lagged_materialize
        self._rng = random.Random(config.jitter_seed)
        self._until_sample = self._next_period()
        #: Opaque pre-transfer stack token from the most recent control
        #: transfer — what a skidding (non-PEBS) sample would deliver.  With
        #: no capture hook this is the materialized list itself.
        self._lagged_token: Optional[object] = None
        #: Samples delivered with the lagged (skid-prone) snapshot.
        self._skid_samples = 0
        if config.pebs:
            # PEBS snapshots are taken at the sampled instruction, so the
            # lagged token is never consumed: specialize the per-branch hook
            # to skip capture entirely (the hot-loop overhead fix).
            self.on_branch = self._on_branch_pebs

    def _next_period(self) -> int:
        jitter = self._rng.randint(0, max(1, self.config.period // 8))
        return self.config.period + jitter

    def bind_executor(self, stack_walker: Callable[[], List[int]],
                      lagged_capture: Optional[Callable[[], object]] = None,
                      lagged_materialize: Optional[
                          Callable[[object], List[int]]] = None) -> None:
        """Late-bind the executor's stack access hooks (see ``make_pmu``)."""
        self._stack_walker = stack_walker
        self._lagged_capture = lagged_capture
        self._lagged_materialize = lagged_materialize

    def _on_branch_pebs(self, source: int, target: int) -> None:
        self.lbr.record(source, target)

    def on_branch(self, source: int, target: int) -> None:
        # Capture the pre-transfer stack for skid modeling (O(1) when the
        # executor registered a capture hook), then record.
        capture = self._lagged_capture
        self._lagged_token = (capture() if capture is not None
                              else self._stack_walker())
        self.lbr.record(source, target)

    def on_retire(self, ip: int) -> None:
        self._until_sample -= 1
        if self._until_sample > 0:
            return
        self._until_sample = self._next_period()
        if self.config.pebs:
            stack = self._stack_walker()
        else:
            token = self._lagged_token
            if token:
                materialize = self._lagged_materialize
                stack = (materialize(token) if materialize is not None
                         else token)
                self._skid_samples += 1
            else:
                stack = self._stack_walker()
        self.data.add(PerfSample(self.lbr.snapshot(), stack, ip))

    def finish(self, instructions_retired: int) -> PerfData:
        self.data.instructions_retired = instructions_retired
        if telemetry.enabled():
            telemetry.count("hw.pmu", "samples_taken", len(self.data.samples))
            telemetry.count("hw.pmu", "branches_recorded", self.lbr.recorded)
            telemetry.count("hw.pmu", "lbr_ring_wraps", self.lbr.wraps)
            telemetry.count("hw.pmu", "skid_stack_samples", self._skid_samples)
        return self.data
