"""Machine-code executor: interprets a linked :class:`~repro.codegen.Binary`.

This stands in for the CPU.  It executes the lowered program faithfully
(differential-tested against the IR interpreter), maintains the physical call
stack — including frame replacement on tail calls, which is what makes caller
frames vanish from stack samples — and feeds attached observers:

* a :class:`~repro.hw.pmu.PMU` for LBR + stack sampling;
* a cost model (:mod:`repro.perfmodel`) for cycle accounting.

Observers are optional and the hot loop only touches the ones attached, so
pure-functional runs stay fast.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..ir.semantics import eval_binop, eval_cmp, wrap_index
from ..codegen.binary import Binary
from ..codegen.mir import MInstr
from .pmu import PMU


class MachineExecutionLimit(Exception):
    """Raised when execution exceeds the configured instruction budget."""


class Frame:
    """One activation record."""

    __slots__ = ("func", "regs", "slots", "locals", "ret_index", "ret_dst")

    def __init__(self, func: str, ret_index: Optional[int],
                 ret_dst: Optional[str]):
        self.func = func
        self.regs: Dict[str, int] = {}
        self.slots: Dict[str, int] = {}
        self.locals: Dict[str, List[int]] = {}
        self.ret_index = ret_index
        self.ret_dst = ret_dst


class MachineExecutionResult:
    """Outcome of one machine-level run."""

    def __init__(self) -> None:
        self.return_value: Optional[int] = None
        self.instructions_retired = 0
        #: Instrumentation counters: (func, counter_id) -> count.
        self.instr_counters: Counter = Counter()
        self.taken_branches = 0


class MachineExecutor:
    """Interprets machine code with optional PMU and cost-model observers."""

    def __init__(self, binary: Binary, max_instructions: int = 50_000_000,
                 pmu: Optional[PMU] = None, cost_model=None):
        self.binary = binary
        self.max_instructions = max_instructions
        self.pmu = pmu
        self.cost_model = cost_model
        self.globals: Dict[str, List[int]] = {
            name: [0] * size for name, size in binary.global_arrays.items()}
        self.frames: List[Frame] = []
        self._cur_ip = 0

    # -- stack sampling support -------------------------------------------
    def walk_stack(self) -> List[int]:
        """Frame-pointer walk: sampled IP, then return addresses, leaf first."""
        stack = [self._cur_ip]
        for frame in reversed(self.frames):
            if frame.ret_index is not None:
                stack.append(self.binary.instrs[frame.ret_index].addr)
        return stack

    # -- execution -----------------------------------------------------------
    def run(self, args: Sequence[int] = ()) -> MachineExecutionResult:
        binary = self.binary
        instrs = binary.instrs
        addr_index = binary._addr_to_index
        result = MachineExecutionResult()
        pmu = self.pmu
        cost = self.cost_model

        entry = binary.symbols[binary.entry_function]
        frame = Frame(entry.name, None, None)
        self._init_frame(frame, entry, list(args))
        self.frames.append(frame)
        idx = addr_index[entry.entry_addr]

        retired = 0
        max_instructions = self.max_instructions
        frames = self.frames
        globals_mem = self.globals

        while True:
            instr = instrs[idx]
            kind = instr.kind
            self._cur_ip = instr.addr
            regs = frame.regs
            next_idx = idx + 1
            taken_target: Optional[int] = None

            if kind == "binop":
                a = regs[instr.a] if type(instr.a) is str else instr.a
                b = regs[instr.b] if type(instr.b) is str else instr.b
                regs[instr.dst] = eval_binop(instr.op, a, b)
            elif kind == "cmp":
                a = regs[instr.a] if type(instr.a) is str else instr.a
                b = regs[instr.b] if type(instr.b) is str else instr.b
                regs[instr.dst] = eval_cmp(instr.op, a, b)
            elif kind == "mov":
                a = regs[instr.a] if type(instr.a) is str else instr.a
                regs[instr.dst] = a
            elif kind == "br":
                cond = regs[instr.a] if type(instr.a) is str else instr.a
                jump = (not cond) if instr.negated else bool(cond)
                if jump:
                    taken_target = instr.target_addr
                    next_idx = addr_index[taken_target]
                if cost is not None:
                    cost.on_branch(instr.addr, bool(jump))
            elif kind == "jmp":
                taken_target = instr.target_addr
                next_idx = addr_index[taken_target]
            elif kind == "select":
                cond = regs[instr.a] if type(instr.a) is str else instr.a
                tval = regs[instr.b] if type(instr.b) is str else instr.b
                fval = regs[instr.c] if type(instr.c) is str else instr.c
                regs[instr.dst] = tval if cond else fval
            elif kind == "load":
                index = regs[instr.b] if type(instr.b) is str else instr.b
                array = frame.locals.get(instr.a)
                if array is None:
                    array = globals_mem[instr.a]
                regs[instr.dst] = array[wrap_index(index, len(array))]
            elif kind == "store":
                index = regs[instr.b] if type(instr.b) is str else instr.b
                value = regs[instr.c] if type(instr.c) is str else instr.c
                array = frame.locals.get(instr.a)
                if array is None:
                    array = globals_mem[instr.a]
                array[wrap_index(index, len(array))] = value
            elif kind == "spill_ld":
                regs[instr.dst] = frame.slots.get(instr.a, regs.get(instr.dst, 0))
            elif kind == "spill_st":
                src = regs[instr.b] if type(instr.b) is str else instr.b
                frame.slots[instr.a] = src
            elif kind == "call":
                if pmu is not None:
                    pmu.on_branch(instr.addr, instr.target_addr)
                values = [regs[a] if type(a) is str else a for a in instr.args]
                callee = binary.symbols[instr.a]
                new_frame = Frame(callee.name, next_idx, instr.dst)
                self._init_frame(new_frame, callee, values)
                frames.append(new_frame)
                frame = new_frame
                taken_target = instr.target_addr
                next_idx = addr_index[taken_target]
            elif kind == "tailcall":
                if pmu is not None:
                    pmu.on_branch(instr.addr, instr.target_addr)
                values = [regs[a] if type(a) is str else a for a in instr.args]
                callee = binary.symbols[instr.a]
                # Frame replacement: the current frame disappears; the callee
                # returns directly to our caller.
                new_frame = Frame(callee.name, frame.ret_index, frame.ret_dst)
                self._init_frame(new_frame, callee, values)
                frames[-1] = new_frame
                frame = new_frame
                taken_target = instr.target_addr
                next_idx = addr_index[taken_target]
            elif kind == "ret":
                value = regs[instr.a] if type(instr.a) is str else instr.a
                if value is None:
                    value = 0
                ret_index = frame.ret_index
                ret_dst = frame.ret_dst
                if pmu is not None and ret_index is not None:
                    # Record pre-pop so a skidding stack still shows the
                    # callee frame (the lag PEBS eliminates).
                    pmu.on_branch(instr.addr, instrs[ret_index].addr)
                frames.pop()
                if not frames:
                    retired += 1
                    result.taken_branches += 1
                    if cost is not None:
                        cost.on_retire(instr, None)
                    result.return_value = value
                    result.instructions_retired = retired
                    # Aggregate counters only at run end — the hot loop stays
                    # untouched whether telemetry is on or off.
                    if telemetry.enabled():
                        telemetry.count("hw.exec", "runs")
                        telemetry.count("hw.exec", "instructions_retired",
                                        retired)
                        telemetry.count("hw.exec", "taken_branches",
                                        result.taken_branches)
                    return result
                frame = frames[-1]
                if ret_dst is not None:
                    frame.regs[ret_dst] = value
                # Fall through to the shared epilogue so the instruction
                # budget is enforced on rets exactly like every other kind
                # (a ret-heavy — e.g. deeply recursive — program must still
                # hit MachineExecutionLimit).  taken_target doubles as the
                # resumption address for the cost model, and next_idx makes
                # the epilogue's post-transfer IP the resumption point; the
                # epilogue's on_branch only fires for br/jmp, so the return
                # recorded above is not double-counted in the LBR.
                taken_target = instrs[ret_index].addr
                next_idx = ret_index
            elif kind == "count":
                result.instr_counters[(instr.a, instr.b)] += 1
            elif kind == "nop":
                pass
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown machine instruction {kind}")

            retired += 1
            if retired > max_instructions:
                raise MachineExecutionLimit(
                    f"retired > {max_instructions} instructions")
            if taken_target is not None:
                result.taken_branches += 1
                if pmu is not None and kind in ("br", "jmp"):
                    pmu.on_branch(instr.addr, taken_target)
            if pmu is not None:
                # Sample at the post-transfer state so PEBS stacks align with
                # the last LBR entry's target frame (paper sec. III.B).
                self._cur_ip = instrs[next_idx].addr
                pmu.on_retire(instr.addr)
            if cost is not None:
                cost.on_retire(instr, taken_target)
            idx = next_idx

    def _init_frame(self, frame: Frame, symbol, values: List[int]) -> None:
        for param, value in zip(symbol.params, values):
            frame.regs[param] = value
        for param in symbol.params[len(values):]:
            frame.regs[param] = 0
        if symbol.local_arrays:
            frame.locals = {name: [0] * size
                            for name, size in symbol.local_arrays.items()}


#: Engine used by :func:`execute` when none is requested explicitly.
#: ``"decoded"`` is the pre-decoded threaded-code interpreter (the default
#: production path); ``"legacy"`` is the :class:`MachineExecutor` dispatch
#: loop, kept as the differential-testing reference.
DEFAULT_ENGINE = "decoded"


def execute(binary: Binary, args: Sequence[int] = (),
            pmu: Optional[PMU] = None, cost_model=None,
            max_instructions: int = 50_000_000,
            engine: Optional[str] = None) -> MachineExecutionResult:
    """Convenience wrapper: run ``binary`` from its entry function."""
    engine = engine or DEFAULT_ENGINE
    if pmu is not None and pmu.data.binary_id is None:
        # Stamp sample provenance so downstream merges can detect attempts
        # to combine sessions from different builds (BinaryMismatchError).
        pmu.data.binary_id = binary.identity()
    if engine == "decoded":
        from .decoded import run_decoded
        return run_decoded(binary, args, pmu=pmu, cost_model=cost_model,
                           max_instructions=max_instructions)
    if engine != "legacy":
        raise ValueError(f"unknown engine {engine!r} "
                         "(choose 'decoded' or 'legacy')")
    executor = MachineExecutor(binary, max_instructions, pmu, cost_model)
    if pmu is not None and pmu._stack_walker is _PLACEHOLDER_WALKER:
        pmu.bind_executor(executor.walk_stack)
    return executor.run(args)


def _PLACEHOLDER_WALKER() -> List[int]:  # pragma: no cover - sentinel
    return []


def make_pmu(config) -> PMU:
    """Create a PMU not yet bound to an executor; :func:`execute` binds it."""
    return PMU(config, _PLACEHOLDER_WALKER)
