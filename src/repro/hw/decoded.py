"""Pre-decoded threaded-code executor: the production-path interpreter.

The legacy :class:`~repro.hw.executor.MachineExecutor` re-dispatches on the
``kind`` string and re-checks register-vs-immediate operand types for every
retired instruction.  This module instead runs a one-time *decode* pass over
``Binary.instrs`` that partitions the program into basic blocks and compiles
each block into one specialized Python function (a single ``compile``/``exec``
per binary and observer variant):

* operand register-vs-immediate resolution happens at decode time — operands
  are emitted as dict subscripts or integer literals;
* branch/call/return targets are pre-resolved to instruction *indices*
  (no address->index dict lookups in the hot loop) and block functions return
  the index of the next block's leader;
* the i64 arithmetic is inlined into the generated source (mask/sign-adjust
  with literal constants) — no per-instruction dispatch into
  :mod:`repro.ir.semantics` except for ``sdiv``/``srem``;
* observer variants are specialized per (PMU mode, cost model) combination,
  so the pure-functional fast path contains **zero** observer code and the
  observed paths inline the per-instruction accounting:

  - the PMU period countdown is batched per straight-line block prefix
    (samples only read the LBR, the frame stack and instruction addresses,
    none of which straight-line code mutates, so prefix samples commute with
    prefix semantics and the streams stay bit-exact);
  - cost-model base cycles and icache line-change checks are emitted inline
    in exact legacy per-instruction order (float addition order is
    preserved), with line changes resolved statically inside a block.

Decoded programs are cached on the :class:`~repro.codegen.binary.Binary`
(keyed by observer variant), so repeated runs of the same artifact —
continuous-profiling iterations, evaluation runs, benchmark sweeps — skip
decoding entirely.  The cache is dropped on pickling (code objects and
closures don't serialize) and rebuilt on first use in the receiving process.

Skid stacks are lazy here: the executor maintains the return-address chain as
an immutable cons list, the PMU's ``lagged_capture`` hook is an O(1) pair
``(ip, cons-node)``, and the O(depth) materialization runs at most once per
sampling window instead of once per taken branch.

The instruction budget is enforced at block granularity: every block bumps
``st.retired`` by its length before executing and the dispatch loop checks
the limit between blocks, so ``MachineExecutionLimit`` still fires on every
instruction kind (including ``ret``) — a block may just overshoot by its own
length before the check trips.  The decoded engine is differentially tested
against the legacy loop (identical results, identical PMU sample streams,
identical cost-model cycles).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..codegen.binary import Binary
from ..ir.semantics import eval_binop
from ..perfmodel.cost_model import (BASE_COSTS, ICACHE_LINE_BITS,
                                    ICACHE_MISS_PENALTY, MISPREDICT_PENALTY,
                                    TAKEN_BRANCH_PENALTY)
from .executor import (MachineExecutionLimit, MachineExecutionResult,
                       MachineExecutor)
from .perf_data import PerfSample
from .pmu import PMU


class _Halt(Exception):
    """Internal: raised by the entry function's ``ret`` to stop the loop."""


class DFrame:
    """Activation record of the decoded engine.

    ``ret_addr`` caches the resumption address (``instrs[ret_idx].addr``) so
    stack walks and return LBR records need no instruction-table lookups.
    """

    __slots__ = ("regs", "slots", "locals", "ret_idx", "ret_dst", "ret_addr")


class _State:
    """Mutable run state threaded through every generated block function."""

    __slots__ = ("regs", "frame", "frames", "globals", "counters", "taken",
                 "return_value", "cur_ip", "ret_node", "retired", "until",
                 "pmu_branch", "pmu_prefix", "pmu_fire", "cost")


class DecodedProgram:
    """One observer-specialized compilation of a binary."""

    __slots__ = ("ops", "entry_idx", "key", "decode_ns", "n_instrs",
                 "n_blocks", "source")

    def __init__(self, ops: List[Optional[Callable]], entry_idx: int,
                 key: Tuple[Optional[str], bool], decode_ns: int,
                 n_blocks: int, source: str):
        self.ops = ops
        self.entry_idx = entry_idx
        self.key = key
        self.decode_ns = decode_ns
        self.n_instrs = len(ops)
        self.n_blocks = n_blocks
        #: Generated source, kept for debugging and the differential tests.
        self.source = source


def _materialize_lagged(token) -> List[int]:
    """Expand an O(1) skid token ``(ip, cons-node)`` into a stack list."""
    ip, node = token
    stack = [ip]
    while node is not None:
        stack.append(node[0])
        node = node[1]
    return stack


# ---------------------------------------------------------------------------
# Source emission.  Every helper returns a list of unindented source lines;
# the block assembler indents them into one ``def _b<leader>(st):`` per block.
# ---------------------------------------------------------------------------

_MASK_LIT = "18446744073709551615"       # (1 << 64) - 1
_SIGN_LIT = "9223372036854775808"        # 1 << 63
_TWO64_LIT = "18446744073709551616"      # 1 << 64

_WRAP_OPS = {"add": "+", "sub": "-", "mul": "*",
             "and": "&", "or": "|", "xor": "^"}
_CMP_OPS = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
            "sgt": ">", "sge": ">="}


def _v(x) -> str:
    """Operand expression: register subscript or integer literal."""
    return f"regs[{x!r}]" if type(x) is str else repr(x)


def _indent(lines: List[str], pad: str = "    ") -> List[str]:
    return [pad + ln for ln in lines]


def _sem_lines(ins, is_local: bool) -> List[str]:
    """Semantics of one non-control instruction (no observer code)."""
    k = ins.kind
    if k == "binop":
        d = f"regs[{ins.dst!r}]"
        a, b = _v(ins.a), _v(ins.b)
        op = ins.op
        if op in _WRAP_OPS:
            expr = f"({a} {_WRAP_OPS[op]} {b})"
        elif op == "shl":
            expr = f"({a} << ({b} % 64))"
        elif op == "ashr":
            expr = f"({a} >> ({b} % 64))"
        else:  # sdiv/srem need C-style truncation; keep the shared helper
            return [f"{d} = _eval_binop({op!r}, {a}, {b})"]
        return [f"v = {expr} & {_MASK_LIT}",
                f"{d} = v - {_TWO64_LIT} if v & {_SIGN_LIT} else v"]
    if k == "cmp":
        return [f"regs[{ins.dst!r}] = "
                f"1 if {_v(ins.a)} {_CMP_OPS[ins.op]} {_v(ins.b)} else 0"]
    if k == "mov":
        return [f"regs[{ins.dst!r}] = {_v(ins.a)}"]
    if k == "select":
        return [f"regs[{ins.dst!r}] = "
                f"{_v(ins.b)} if {_v(ins.a)} else {_v(ins.c)}"]
    if k == "load":
        mem = "st.frame.locals" if is_local else "st.globals"
        return [f"a_ = {mem}[{ins.a!r}]",
                f"regs[{ins.dst!r}] = a_[{_v(ins.b)} % len(a_)]"]
    if k == "store":
        mem = "st.frame.locals" if is_local else "st.globals"
        return [f"a_ = {mem}[{ins.a!r}]",
                f"a_[{_v(ins.b)} % len(a_)] = {_v(ins.c)}"]
    if k == "spill_ld":
        d = ins.dst
        return [f"regs[{d!r}] = st.frame.slots.get({ins.a!r}, "
                f"regs.get({d!r}, 0))"]
    if k == "spill_st":
        return [f"st.frame.slots[{ins.a!r}] = {_v(ins.b)}"]
    if k == "count":
        return [f"st.counters[({ins.a!r}, {ins.b!r})] += 1"]
    if k == "nop":
        return []
    raise RuntimeError(f"unknown machine instruction {k}")  # pragma: no cover


def _icache_lines(line: int, addr: int, prev_line: Optional[int]) -> List[str]:
    """Fetch-line accounting for a literal address.

    ``prev_line`` is the statically known ``_last_line`` before this
    instruction (None at block entry, where the incoming line is dynamic).
    """
    miss = [f"    cost.icache_cycles += {ICACHE_MISS_PENALTY!r}",
            f"    c += {ICACHE_MISS_PENALTY!r}"]
    if prev_line is None:
        return ([f"if cost._last_line != {line}:",
                 f"    cost._last_line = {line}",
                 f"    if not ica({addr}):"]
                + _indent(miss))
    if line != prev_line:
        return ([f"cost._last_line = {line}",
                 f"if not ica({addr}):"]
                + miss)
    return []


def _cost_retire_lines(base: float, addr: int, prev_line: Optional[int],
                       target) -> List[str]:
    """Inline ``CostModel.retire`` in exact legacy order.

    ``target`` is None (not a taken branch), a literal address, or the name
    of a local holding the dynamic return address (``"ra"``).
    """
    my_line = addr >> ICACHE_LINE_BITS
    ls = [f"c += {base!r}", f"b += {base!r}"]
    if target is not None:
        ls += [f"cost.branch_cycles += {TAKEN_BRANCH_PENALTY!r}",
               f"c += {TAKEN_BRANCH_PENALTY!r}"]
    ls += _icache_lines(my_line, addr, prev_line)
    # After the fetch part ``_last_line`` is statically ``my_line``.
    if target is None:
        pass
    elif isinstance(target, str):
        ls += [f"tl = {target} >> {ICACHE_LINE_BITS}",
               f"if tl != {my_line}:",
               "    cost._last_line = tl",
               f"    if not ica({target}):",
               f"        cost.icache_cycles += {ICACHE_MISS_PENALTY!r}",
               f"        c += {ICACHE_MISS_PENALTY!r}"]
    else:
        t_line = target >> ICACHE_LINE_BITS
        if t_line != my_line:
            ls += [f"cost._last_line = {t_line}",
                   f"if not ica({target}):",
                   f"    cost.icache_cycles += {ICACHE_MISS_PENALTY!r}",
                   f"    c += {ICACHE_MISS_PENALTY!r}"]
    return ls


_COST_WB = ["cost.cycles = c", "cost.base_cycles = b"]


def _pmu_rec_lines(my_addr: int, target: str, skid: bool) -> List[str]:
    """LBR record (plus, in skid mode, the O(1) lagged-stack capture that
    ``PMU.on_branch`` performs through the registered hook — it reads
    ``st.cur_ip``, which must be the branch's own address)."""
    ls = []
    if skid:
        ls.append(f"st.cur_ip = {my_addr}")
    ls.append(f"st.pmu_branch({my_addr}, {target})")
    return ls


def _pmu_tick_lines(my_addr: int, target: str) -> List[str]:
    """Period countdown for the control instruction itself.  On firing, the
    sample is taken at the post-transfer state (legacy ``_cur_ip`` is the
    next instruction's address when ``on_retire`` runs)."""
    return ["u2 = st.until - 1",
            "if u2 > 0:",
            "    st.until = u2",
            "else:",
            f"    st.cur_ip = {target}",
            f"    st.pmu_fire({my_addr})"]


def _predictor_lines(my_addr: int) -> List[str]:
    """Inline ``CostModel.on_branch`` (2-bit predictor + mispredict cycles).
    Runs before the branch's own retire, like the legacy loop."""
    return ["pred = cost.predictor",
            f"state = pred._table.get({my_addr}, 1)",
            "pred.predictions += 1",
            "if (state >= 2) != jump:",
            "    pred.mispredicts += 1",
            f"    cost.branch_cycles += {MISPREDICT_PENALTY!r}",
            f"    c += {MISPREDICT_PENALTY!r}",
            "if jump:",
            f"    pred._table[{my_addr}] = 3 if state >= 2 else state + 1",
            "else:",
            f"    pred._table[{my_addr}] = state - 1 if state else 0"]


def _frame_ctor_lines(callee, args_spec, nr_name: str = "nr") -> List[str]:
    """Evaluate call arguments and build the callee frame dict literal
    (zip-truncation and zero-padding match ``MachineExecutor._init_frame``)."""
    params = callee.params
    pairs = [f"{p!r}: {_v(a)}" for p, a in zip(params, args_spec)]
    pairs += [f"{p!r}: 0" for p in params[len(args_spec):]]
    body = ", ".join(pairs)
    ls = [f"{nr_name} = {{{body}}}"]
    return ls


def _locals_literal(callee) -> str:
    if not callee.local_arrays:
        return "None"
    body = ", ".join(f"{n!r}: [0] * {s}"
                     for n, s in callee.local_arrays.items())
    return f"{{{body}}}"


class _Ctx:
    """Decode-time context shared by the block emitters."""

    __slots__ = ("binary", "instrs", "n", "addr_index", "symbols",
                 "P", "SKID", "C", "blocks", "consts")


#: Instruction pool each generated function may spend on inlining successor
#: blocks (pure variant only).  The pool is shared across all inline sites of
#: one function, so generated code size stays linear in the pool regardless
#: of branching.
_INLINE_POOL = 12


def _transition(ctx: _Ctx, X: int, pool: List[int]) -> List[str]:
    """Continue execution at leader ``X``.

    In the pure variant, successor blocks are inlined while the function's
    instruction pool lasts — fallthrough and jump chains collapse and hot
    loop bodies unroll into one generated function, amortizing dispatch
    overhead over longer straight-line runs.  Observer variants always
    dispatch (their per-block prologues are comparatively expensive, and the
    observed hot path is dominated by accounting, not dispatch).
    """
    if pool[0] > 0 and not ctx.P and not ctx.C:
        blk = ctx.blocks.get(X)
        if blk is not None:
            e, ctrl, stop = blk
            size = (e - X) + (1 if ctrl is not None else 0)
            if size <= pool[0]:
                pool[0] -= size
                return _emit_segment(ctx, X, pool)
    return [f"return {X}"]


def _emit_segment(ctx: _Ctx, L: int, pool: List[int]) -> List[str]:
    """Emit the body of the block at leader ``L`` (``instrs[L:stop]``).

    Used both for a block's own ``def _b<L>`` and, in the pure variant, for
    inlined continuation segments.
    """
    e, ctrl, stop = ctx.blocks[L]
    instrs = ctx.instrs
    binary = ctx.binary
    symbols = ctx.symbols
    P, C = ctx.P, ctx.C
    prefix = instrs[L:e]
    K = (e - L) + (1 if ctrl is not None else 0)

    body: List[str] = [f"st.retired += {K}", "regs = st.regs"]

    if P and prefix:
        # Batched countdown over the straight-line prefix: address j fires
        # at post-transfer ip addrs[j + 1] (see pmu_prefix in run_decoded).
        after = ctrl.addr if ctrl is not None else (
            instrs[stop].addr if stop < ctx.n else -1)
        cname = f"_A{L}"
        ctx.consts[cname] = tuple(i.addr for i in prefix) + (after,)
        body += [f"u = st.until - {len(prefix)}",
                 "if u > 0:",
                 "    st.until = u",
                 "else:",
                 f"    st.pmu_prefix({cname}, u)"]
    if C:
        body += ["cost = st.cost",
                 "ica = cost.icache.access",
                 f"cost.instructions += {K}",
                 "c = cost.cycles",
                 "b = cost.base_cycles"]

    prev_line: Optional[int] = None
    for ins in prefix:
        if ins.kind in ("load", "store"):
            func = binary.function_at(ins.addr)
            is_local = (func is not None
                        and ins.a in symbols[func].local_arrays)
        else:
            is_local = False
        body += _sem_lines(ins, is_local)
        if C:
            body += _cost_retire_lines(BASE_COSTS[ins.kind], ins.addr,
                                       prev_line, None)
        prev_line = ins.addr >> ICACHE_LINE_BITS

    if ctrl is None:
        if C:
            body += _COST_WB
        body += _transition(ctx, stop, pool)
    else:
        body += _gen_ctrl(ctx, ctrl, e, prev_line, pool)
    return body


def _gen_ctrl(ctx: _Ctx, ins, e: int, prev_line: Optional[int],
              pool: List[int]) -> List[str]:
    """Emit the control-instruction arm that ends a block."""
    instrs = ctx.instrs
    addr_index = ctx.addr_index
    P, SKID, C = ctx.P, ctx.SKID, ctx.C
    k = ins.kind
    MY = ins.addr
    base = BASE_COSTS[k]
    ls: List[str] = []

    if k == "jmp":
        T = ins.target_addr
        if P:
            ls += _pmu_rec_lines(MY, str(T), SKID)
        ls.append("st.taken += 1")
        if P:
            ls += _pmu_tick_lines(MY, str(T))
        if C:
            ls += _cost_retire_lines(base, MY, prev_line, T) + _COST_WB
        ls += _transition(ctx, addr_index[T], pool)
        return ls

    if k == "br":
        T = ins.target_addr
        t_idx = addr_index[T]
        nxt = e + 1
        nxt_addr = instrs[nxt].addr if nxt < ctx.n else -1
        cond = ins.a
        if not P and not C:
            if type(cond) is str:
                test = (f"if not regs[{cond!r}]:" if ins.negated
                        else f"if regs[{cond!r}]:")
                taken = ["st.taken += 1"] + _transition(ctx, t_idx, pool)
                return ([test] + _indent(taken)
                        + _transition(ctx, nxt, pool))
            jump = (not cond) if ins.negated else bool(cond)
            if jump:
                return ["st.taken += 1"] + _transition(ctx, t_idx, pool)
            return _transition(ctx, nxt, pool)
        if type(cond) is str:
            jexpr = f"regs[{cond!r}] {'==' if ins.negated else '!='} 0"
        else:
            jexpr = repr((not cond) if ins.negated else bool(cond))
        ls.append(f"jump = {jexpr}")
        if C:
            ls += _predictor_lines(MY)
        taken: List[str] = []
        if P:
            taken += _pmu_rec_lines(MY, str(T), SKID)
        taken.append("st.taken += 1")
        if P:
            taken += _pmu_tick_lines(MY, str(T))
        if C:
            taken += _cost_retire_lines(base, MY, prev_line, T) + _COST_WB
        taken.append(f"return {t_idx}")
        ls += ["if jump:"] + _indent(taken)
        if P:
            ls += _pmu_tick_lines(MY, str(nxt_addr))
        if C:
            ls += _cost_retire_lines(base, MY, prev_line, None) + _COST_WB
        ls.append(f"return {nxt}")
        return ls

    if k in ("call", "tailcall"):
        callee = ctx.symbols[ins.a]
        T = ins.target_addr
        entry_idx = addr_index[T]
        if P:
            ls += _pmu_rec_lines(MY, str(T), SKID)
        ls += _frame_ctor_lines(callee, ins.args or ())
        if k == "call":
            ret_idx = e + 1
            ret_addr = instrs[ret_idx].addr if ret_idx < ctx.n else None
            if SKID:
                # Maintain the cons-list return chain the lazy skid capture
                # points into (pushed *after* the pre-transfer capture above).
                ls.append(f"st.ret_node = ({ret_addr}, st.ret_node)")
            ls += ["f = _DFrame()",
                   "f.regs = nr",
                   "f.slots = {}",
                   f"f.locals = {_locals_literal(callee)}",
                   f"f.ret_idx = {ret_idx}",
                   f"f.ret_dst = {ins.dst!r}",
                   f"f.ret_addr = {ret_addr}",
                   "st.frames.append(f)"]
        else:
            # Frame replacement: the callee returns directly to our caller
            # (what makes caller frames vanish from stack samples); the
            # return chain is untouched.
            ls += ["old = st.frames[-1]",
                   "f = _DFrame()",
                   "f.regs = nr",
                   "f.slots = {}",
                   f"f.locals = {_locals_literal(callee)}",
                   "f.ret_idx = old.ret_idx",
                   "f.ret_dst = old.ret_dst",
                   "f.ret_addr = old.ret_addr",
                   "st.frames[-1] = f"]
        ls += ["st.frame = f", "st.regs = nr", "st.taken += 1"]
        if P:
            ls += _pmu_tick_lines(MY, str(T))
        if C:
            ls += _cost_retire_lines(base, MY, prev_line, T) + _COST_WB
        ls += _transition(ctx, entry_idx, pool)
        return ls

    if k == "ret":
        a = ins.a
        val = f"regs[{a!r}]" if type(a) is str else repr(0 if a is None else a)
        ls += [f"value = {val}",
               "frames = st.frames",
               "frame = frames[-1]",
               "ra = frame.ret_addr"]
        if P:
            # Record pre-pop so a skidding stack still shows the callee frame
            # (the lag PEBS eliminates); the entry frame (ra None) records
            # nothing, exactly like the legacy loop.
            ls += ["if ra is not None:"] + _indent(
                _pmu_rec_lines(MY, "ra", SKID))
        ls += ["del frames[-1]", "st.taken += 1"]
        final: List[str] = []
        if C:
            final += _cost_retire_lines(base, MY, prev_line, None) + _COST_WB
        final += ["st.return_value = value", "raise _Halt"]
        ls += ["if not frames:"] + _indent(final)
        if SKID:
            ls.append("st.ret_node = st.ret_node[1]")
        ls += ["parent = frames[-1]",
               "st.frame = parent",
               "st.regs = parent.regs",
               "rd = frame.ret_dst",
               "if rd is not None:",
               "    parent.regs[rd] = value"]
        if P:
            ls += _pmu_tick_lines(MY, "ra")
        if C:
            ls += _cost_retire_lines(base, MY, prev_line, "ra") + _COST_WB
        ls.append("return frame.ret_idx")
        return ls

    raise RuntimeError(f"unknown control instruction {k}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Decode pass
# ---------------------------------------------------------------------------

def decode_program(binary: Binary, pmu_mode: Optional[str],
                   use_cost: bool) -> DecodedProgram:
    """Compile ``binary`` into an observer-specialized block-function table.

    ``pmu_mode`` is ``None`` (no PMU), ``"pebs"`` or ``"skid"``; ``use_cost``
    selects the cost-model variant.  Called through the binary's decode cache
    by :func:`run_decoded` — call directly only in tests/benchmarks.
    """
    t0 = time.perf_counter_ns()
    P = pmu_mode is not None
    SKID = pmu_mode == "skid"
    C = use_cost
    instrs = binary.instrs
    n = len(instrs)
    addr_index = binary._addr_to_index
    symbols = binary.symbols

    # Leaders: function entries, branch/call targets, and every control
    # instruction's successor (so ``ret_idx`` always lands on a block head).
    leaders = set()
    for sym in symbols.values():
        i = addr_index.get(sym.entry_addr)
        if i is not None:
            leaders.add(i)
    for i, ins in enumerate(instrs):
        if ins.is_control() and i + 1 < n:
            leaders.add(i + 1)
        ta = ins.target_addr
        if ta is not None:
            t = addr_index.get(ta)
            if t is not None:
                leaders.add(t)
    if n:
        leaders.add(0)
    order = sorted(leaders)

    blocks: Dict[int, Tuple[int, object, int]] = {}
    for bi, L in enumerate(order):
        stop = order[bi + 1] if bi + 1 < len(order) else n
        e = L
        ctrl = None
        while e < stop:
            if instrs[e].is_control():
                ctrl = instrs[e]
                break
            e += 1
        blocks[L] = (e, ctrl, stop)

    ctx = _Ctx()
    ctx.binary = binary
    ctx.instrs = instrs
    ctx.n = n
    ctx.addr_index = addr_index
    ctx.symbols = symbols
    ctx.P = P
    ctx.SKID = SKID
    ctx.C = C
    ctx.blocks = blocks
    ctx.consts = {"_DFrame": DFrame, "_Halt": _Halt,
                  "_eval_binop": eval_binop}
    consts = ctx.consts

    src: List[str] = []
    for L in order:
        body = _emit_segment(ctx, L, [_INLINE_POOL])
        src.append(f"def _b{L}(st):")
        src.extend(_indent(body))
        src.append("")

    source = "\n".join(src)
    code = compile(source, f"<decoded:{binary.name}:{pmu_mode}:{use_cost}>",
                   "exec")
    exec(code, consts)

    ops: List[Optional[Callable]] = [None] * n
    for L in order:
        ops[L] = consts[f"_b{L}"]
    entry_idx = addr_index[symbols[binary.entry_function].entry_addr]
    return DecodedProgram(ops, entry_idx, (pmu_mode, use_cost),
                          time.perf_counter_ns() - t0, len(order), source)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def run_decoded(binary: Binary, args: Sequence[int] = (),
                pmu: Optional[PMU] = None, cost_model=None,
                max_instructions: int = 50_000_000
                ) -> MachineExecutionResult:
    """Execute ``binary`` with the pre-decoded threaded-code engine.

    Produces results identical to ``MachineExecutor.run`` — including the
    PMU sample stream and cost-model cycle accounting — differential tests
    enforce this.
    """
    if cost_model is not None and (
            cost_model.icache.line_bits != ICACHE_LINE_BITS):
        # Generated code bakes the fetch-line geometry in as literals; a
        # custom icache falls back to the reference interpreter.
        executor = MachineExecutor(binary, max_instructions, pmu, cost_model)
        if pmu is not None:
            pmu.bind_executor(executor.walk_stack)
        return executor.run(args)

    if pmu is None:
        pmu_mode = None
    elif pmu.config.pebs:
        pmu_mode = "pebs"
    else:
        pmu_mode = "skid"
    key = (pmu_mode, cost_model is not None)
    t_enabled = telemetry.enabled()
    hits_before = binary.decode_stats["cache_hits"]
    program = binary.cached_decoded(key, lambda b: decode_program(b, *key))
    if t_enabled:
        telemetry.count("hw.decode", "requests")
        if binary.decode_stats["cache_hits"] > hits_before:
            telemetry.count("hw.decode", "cache_hits")
        else:
            telemetry.count("hw.decode", "decodes")
            telemetry.count("hw.decode", "decode_ns", program.decode_ns)
            telemetry.count("hw.decode", "instrs_decoded", program.n_instrs)

    entry = binary.symbols[binary.entry_function]
    frame = DFrame()
    regs: Dict[str, int] = {}
    values = list(args)
    for param, value in zip(entry.params, values):
        regs[param] = value
    for param in entry.params[len(values):]:
        regs[param] = 0
    frame.regs = regs
    frame.slots = {}
    frame.locals = ({name: [0] * size
                     for name, size in entry.local_arrays.items()}
                    if entry.local_arrays else None)
    frame.ret_idx = None
    frame.ret_dst = None
    frame.ret_addr = None

    st = _State()
    st.regs = regs
    st.frame = frame
    st.frames = [frame]
    st.globals = {name: [0] * size
                  for name, size in binary.global_arrays.items()}
    st.counters = Counter()
    st.taken = 0
    st.return_value = None
    st.cur_ip = 0
    st.ret_node = None
    st.retired = 0
    st.until = 0
    st.pmu_branch = st.pmu_prefix = st.pmu_fire = None
    st.cost = cost_model

    if pmu is not None:
        def walker() -> List[int]:
            stack = [st.cur_ip]
            for f in reversed(st.frames):
                ra = f.ret_addr
                if ra is not None:
                    stack.append(ra)
            return stack

        next_period = pmu._next_period
        data_add = pmu.data.add
        lbr_snapshot = pmu.lbr.snapshot
        st.until = pmu._until_sample

        if pmu_mode == "pebs":
            pmu.bind_executor(walker)
            st.pmu_branch = pmu.lbr.record

            def pmu_fire(ip: int) -> None:
                st.until = next_period()
                data_add(PerfSample(lbr_snapshot(), walker(), ip))

            def pmu_prefix(addrs, u: int) -> None:
                # ``u = until - len(prefix) <= 0``: at least one sample fires
                # inside the straight-line prefix.  Firing index j has
                # post-transfer ip addrs[j + 1]; frames and LBR are constant
                # across the prefix, so sample payloads match the legacy
                # per-instruction countdown exactly.
                count = len(addrs) - 1
                j = u + count - 1
                while j < count:
                    period = next_period()
                    st.cur_ip = addrs[j + 1]
                    data_add(PerfSample(lbr_snapshot(), walker(), addrs[j]))
                    j += period
                st.until = j - count + 1
        else:
            pmu.bind_executor(walker,
                              lambda: (st.cur_ip, st.ret_node),
                              _materialize_lagged)
            st.pmu_branch = pmu.on_branch

            def pmu_fire(ip: int) -> None:
                st.until = next_period()
                token = pmu._lagged_token
                if token:
                    stack = _materialize_lagged(token)
                    pmu._skid_samples += 1
                else:
                    stack = walker()
                data_add(PerfSample(lbr_snapshot(), stack, ip))

            def pmu_prefix(addrs, u: int) -> None:
                count = len(addrs) - 1
                j = u + count - 1
                token = pmu._lagged_token
                while j < count:
                    period = next_period()
                    if token:
                        stack = _materialize_lagged(token)
                        pmu._skid_samples += 1
                    else:
                        st.cur_ip = addrs[j + 1]
                        stack = walker()
                    data_add(PerfSample(lbr_snapshot(), stack, addrs[j]))
                    j += period
                st.until = j - count + 1

        st.pmu_fire = pmu_fire
        st.pmu_prefix = pmu_prefix

    ops = program.ops
    idx = program.entry_idx
    limit = max_instructions
    t0 = time.perf_counter_ns() if t_enabled else 0
    try:
        while True:
            idx = ops[idx](st)
            if st.retired > limit:
                raise MachineExecutionLimit(
                    f"retired > {max_instructions} instructions")
    except _Halt:
        # The final ret never trips the budget in the legacy loop; anything
        # retired before it in the same block does.
        if st.retired - 1 > limit:
            raise MachineExecutionLimit(
                f"retired > {max_instructions} instructions") from None
    finally:
        if pmu is not None:
            pmu._until_sample = st.until

    result = MachineExecutionResult()
    result.return_value = st.return_value
    result.instructions_retired = st.retired
    result.instr_counters = st.counters
    result.taken_branches = st.taken
    if t_enabled:
        run_ns = time.perf_counter_ns() - t0
        telemetry.count("hw.exec", "runs")
        telemetry.count("hw.exec", "instructions_retired", st.retired)
        telemetry.count("hw.exec", "taken_branches", st.taken)
        # Per-run wall time: ns/instr = run_ns / instructions_retired.
        telemetry.count("hw.exec", "run_ns", run_ns)
    return result
