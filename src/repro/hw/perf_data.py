"""Sample containers: what ``perf record`` would have produced.

A :class:`PerfSample` is one PMU interrupt's payload: the LBR snapshot (16 or
32 source/target pairs of the most recent taken branches, oldest first) plus
the synchronized call-stack sample (leaf first), exactly the pairing the
paper's profiler consumes (Fig. 5, ``perf record -g --call-graph fp -e
br_inst_retired.near_taken:upp``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class PerfSample:
    """One synchronized LBR + call-stack sample."""

    __slots__ = ("lbr", "stack", "ip")

    def __init__(self, lbr: Sequence[Tuple[int, int]], stack: Sequence[int],
                 ip: int):
        #: Taken-branch (source, target) pairs, oldest first.
        self.lbr: Tuple[Tuple[int, int], ...] = tuple(lbr)
        #: Call-stack addresses, leaf first (stack[0] is the sampled IP's
        #: frame; deeper entries are return addresses in callers).
        self.stack: Tuple[int, ...] = tuple(stack)
        #: The sampled instruction pointer.
        self.ip = ip


class PerfData:
    """A full profiling session: all samples plus collection metadata."""

    def __init__(self, period: int, lbr_depth: int, pebs: bool):
        self.period = period
        self.lbr_depth = lbr_depth
        self.pebs = pebs
        self.samples: List[PerfSample] = []
        self.instructions_retired = 0

    def add(self, sample: PerfSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (f"<PerfData {len(self.samples)} samples, period={self.period}, "
                f"pebs={self.pebs}>")
