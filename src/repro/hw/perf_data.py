"""Sample containers: what ``perf record`` would have produced.

A :class:`PerfSample` is one PMU interrupt's payload: the LBR snapshot (16 or
32 source/target pairs of the most recent taken branches, oldest first) plus
the synchronized call-stack sample (leaf first), exactly the pairing the
paper's profiler consumes (Fig. 5, ``perf record -g --call-graph fp -e
br_inst_retired.near_taken:upp``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..profile.errors import BinaryMismatchError


class PerfSample:
    """One synchronized LBR + call-stack sample."""

    __slots__ = ("lbr", "stack", "ip")

    def __init__(self, lbr: Sequence[Tuple[int, int]], stack: Sequence[int],
                 ip: int):
        #: Taken-branch (source, target) pairs, oldest first.
        self.lbr: Tuple[Tuple[int, int], ...] = tuple(lbr)
        #: Call-stack addresses, leaf first (stack[0] is the sampled IP's
        #: frame; deeper entries are return addresses in callers).
        self.stack: Tuple[int, ...] = tuple(stack)
        #: The sampled instruction pointer.
        self.ip = ip


class AggregatedSample:
    """One unique ``(lbr, stack)`` payload and how many times it was seen.

    ``sample`` is the first :class:`PerfSample` that carried the payload;
    unwinding only reads ``lbr``/``stack``, so any representative works.
    """

    __slots__ = ("sample", "count")

    def __init__(self, sample: PerfSample):
        self.sample = sample
        self.count = 0

    def __repr__(self) -> str:
        return f"<AggregatedSample x{self.count}>"


#: FNV-1a 64-bit constants for the stable payload hash.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def payload_shard(lbr: Tuple[Tuple[int, int], ...], stack: Tuple[int, ...],
                  shards: int) -> int:
    """Deterministic shard index of one ``(lbr, stack)`` payload.

    FNV-1a over the raw addresses — independent of ``PYTHONHASHSEED``,
    process, and platform, so every worker (and every rerun) agrees on the
    partition.  Hashing the full payload keeps each shard's unwind caches
    hot: identical payloads are one aggregated entry already, and the
    per-branch memos a payload warms are reused by every other payload the
    same worker owns.
    """
    h = _FNV_OFFSET
    for source, target in lbr:
        h = ((h ^ source) * _FNV_PRIME) & _MASK64
        h = ((h ^ target) * _FNV_PRIME) & _MASK64
    # Length-prefix-free separator so (lbr, stack) boundaries are unambiguous.
    h = ((h ^ 0x9E3779B97F4A7C15) * _FNV_PRIME) & _MASK64
    for addr in stack:
        h = ((h ^ addr) * _FNV_PRIME) & _MASK64
    return h % shards


class PerfData:
    """A full profiling session: all samples plus collection metadata."""

    def __init__(self, period: int, lbr_depth: int, pebs: bool):
        self.period = period
        self.lbr_depth = lbr_depth
        self.pebs = pebs
        self.samples: List[PerfSample] = []
        self.instructions_retired = 0
        #: Identity of the binary the samples were collected on (see
        #: :meth:`repro.codegen.binary.Binary.identity`); ``None`` when the
        #: session was never bound to a binary (hand-built test data).
        self.binary_id: Optional[str] = None
        self._aggregated: Optional[List[AggregatedSample]] = None

    def add(self, sample: PerfSample) -> None:
        self.samples.append(sample)
        self._aggregated = None

    def extend(self, other: "PerfData", site: str = "unspecified") -> None:
        """Append another session's samples (multi-iteration merge).

        Merging is only meaningful between sessions collected on the *same*
        binary: addresses are build-specific, so mixing runs of different
        builds silently produces garbage profiles.  When both sessions carry
        a binary identity and they differ, the merge is refused with
        :class:`~repro.profile.errors.BinaryMismatchError` naming both
        identities and ``site`` (the caller's merge point), the
        ``pgo.merge.rejected`` counter is bumped, and a ``merge_rejected``
        event is emitted — rejections show up in dashboards and SLO logs,
        not just in whoever happens to catch the exception.
        """
        if (self.binary_id is not None and other.binary_id is not None
                and self.binary_id != other.binary_id):
            # Imported lazily: hw is a leaf layer and must not pull the
            # obs/telemetry stack in at module-import time.
            from .. import obs, telemetry
            telemetry.count("pgo.merge", "rejected")
            obs.emit("merge_rejected", site=site, ours=self.binary_id,
                     theirs=other.binary_id)
            raise BinaryMismatchError(
                f"cannot merge perf data from binary {other.binary_id} "
                f"into session from binary {self.binary_id} "
                f"(merge site: {site})")
        if self.binary_id is None:
            self.binary_id = other.binary_id
        self.samples.extend(other.samples)
        self._aggregated = None

    def aggregated(self) -> List["AggregatedSample"]:
        """Samples deduplicated by ``(lbr, stack)`` payload.

        Loopy workloads are highly repetitive: a steady-state loop produces
        the same LBR window and stack over and over, so profile generation
        can unwind each unique payload once and multiply by its count
        (llvm-profgen's pre-aggregated perf input).  Entries keep the
        first-occurrence order of their payloads, which makes the
        aggregated pass order-equivalent to the per-sample one.  The view
        is cached and invalidated by :meth:`add`.
        """
        if self._aggregated is None:
            index: dict = {}
            out: List[AggregatedSample] = []
            for sample in self.samples:
                key = (sample.lbr, sample.stack)
                entry = index.get(key)
                if entry is None:
                    entry = AggregatedSample(sample)
                    index[key] = entry
                    out.append(entry)
                entry.count += 1
            self._aggregated = out
        return self._aggregated

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (f"<PerfData {len(self.samples)} samples, period={self.period}, "
                f"pebs={self.pebs}>")
