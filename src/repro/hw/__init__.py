"""Hardware simulation: machine executor, LBR, PMU sampling."""

from .executor import (Frame, MachineExecutionLimit, MachineExecutionResult,
                       MachineExecutor, execute, make_pmu)
from .lbr import LBRStack
from .perf_data import PerfData, PerfSample
from .pmu import PMU, PMUConfig

__all__ = [
    "Frame", "LBRStack", "MachineExecutionLimit", "MachineExecutionResult",
    "MachineExecutor", "PMU", "PMUConfig", "PerfData", "PerfSample",
    "execute", "make_pmu",
]
