"""Hardware simulation: machine executor, LBR, PMU sampling.

Two interchangeable engines execute a linked binary:

* :func:`run_decoded` — the pre-decoded threaded-code interpreter (default
  production path; decoded programs are cached on the binary);
* :class:`MachineExecutor` — the legacy dispatch loop, kept as the
  differential-testing reference.

:func:`execute` selects via its ``engine`` argument (``DEFAULT_ENGINE``
otherwise).
"""

from .decoded import DecodedProgram, decode_program, run_decoded
from .executor import (DEFAULT_ENGINE, Frame, MachineExecutionLimit,
                       MachineExecutionResult, MachineExecutor, execute,
                       make_pmu)
from .lbr import LBRStack
from .perf_data import AggregatedSample, PerfData, PerfSample
from .pmu import PMU, PMUConfig

__all__ = [
    "DEFAULT_ENGINE", "DecodedProgram", "Frame", "LBRStack",
    "MachineExecutionLimit", "MachineExecutionResult", "MachineExecutor",
    "AggregatedSample", "PMU", "PMUConfig", "PerfData", "PerfSample",
    "decode_program",
    "execute", "make_pmu", "run_decoded",
]
