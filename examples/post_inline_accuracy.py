#!/usr/bin/env python
"""Fig. 3 walkthrough: post-inline profile accuracy with and without
context-sensitive profiles.

Uses the paper's vector add/sub program: ``scalarAdd`` is only reachable via
``addVectorHead -> scalarOp`` and ``scalarSub`` via ``subVectorHead ->
scalarOp``.  A flat profile conflates the two behaviours of ``scalarOp``, so
context-insensitive scaling after inlining splits counts 50/50 (Fig. 3a);
the context profile recovers the exact one-sided counts (Fig. 3b).

Run:  python examples/post_inline_accuracy.py
"""

from repro import PGOVariant, build
from repro.correlate import generate_context_profile, generate_probe_profile
from repro.hw import PMUConfig, execute, make_pmu
from repro.profile import format_context
from repro.workloads import build_vectorops


def main() -> None:
    module = build_vectorops(vector_len=64)
    artifacts = build(module, PGOVariant.CSSPGO_FULL)
    pmu = make_pmu(PMUConfig(period=17))
    run = execute(artifacts.binary, [60], pmu=pmu)
    data = pmu.finish(run.instructions_retired)

    flat = generate_probe_profile(artifacts.binary, data, artifacts.probe_meta)
    ctx_profile, _ = generate_context_profile(artifacts.binary, data,
                                              artifacts.probe_meta)

    print("Flat (context-insensitive) profile of scalarOp:")
    scalar_op = flat.get("scalarOp")
    print(f"  total={scalar_op.total:,.0f}")
    for probe_id, count in sorted(scalar_op.body.items()):
        print(f"  probe {probe_id}: {count:,.0f}")
    print("  -> both the add and the sub side look ~50% hot (Fig. 3a):")
    print(f"     do_add (probe 2): {scalar_op.body.get(2, 0):,.0f}")
    print(f"     do_sub (probe 3): {scalar_op.body.get(3, 0):,.0f}\n")

    print("Context-sensitive profile of scalarOp (Fig. 3b):")
    for context in sorted(ctx_profile.contexts_of("scalarOp"),
                          key=format_context):
        samples = ctx_profile.contexts[context]
        if samples.total <= 0:
            continue
        add_count = samples.body.get(2, 0)
        sub_count = samples.body.get(3, 0)
        print(f"  {format_context(context)}")
        print(f"     do_add: {add_count:10,.0f}   do_sub: {sub_count:10,.0f}")
    print("\n  -> under addVectorHead the sub side is dead, and vice versa:")
    print("     an inliner consuming the context slice annotates exact")
    print("     post-inline counts instead of scaled guesses.")


if __name__ == "__main__":
    main()
