#!/usr/bin/env python
"""Quickstart: run the full CSSPGO cycle on the paper's Fig. 4 program.

Builds the vector add/sub example, takes it through profiling (synchronized
LBR + stack sampling), context-sensitive profile generation, the pre-inliner,
and the optimizing rebuild — then compares cycles against a no-PGO build and
AutoFDO.

Run:  python examples/quickstart.py
"""

from repro import PGODriverConfig, PGOVariant, run_pgo, speedup_over
from repro.hw import PMUConfig
from repro.profile import format_context
from repro.workloads import build_vectorops


def main() -> None:
    module = build_vectorops(vector_len=64)
    config = PGODriverConfig(pmu=PMUConfig(period=29))
    train, evaluate = [60], [60]

    print("Building & evaluating PGO variants on the Fig. 4 program...\n")
    results = {}
    for variant in (PGOVariant.NONE, PGOVariant.AUTOFDO,
                    PGOVariant.CSSPGO_FULL):
        results[variant] = run_pgo(module, variant, train, evaluate, config)
        print(f"  {variant.value:10s} {results[variant].eval.cycles:12,.0f} cycles"
              f"   text={results[variant].final.sizes.text} bytes")

    baseline = results[PGOVariant.NONE]
    autofdo = results[PGOVariant.AUTOFDO]
    csspgo = results[PGOVariant.CSSPGO_FULL]
    print(f"\n  AutoFDO vs none:  {speedup_over(baseline, autofdo)*100:+.2f}%")
    print(f"  CSSPGO  vs none:  {speedup_over(baseline, csspgo)*100:+.2f}%")
    print(f"  CSSPGO  vs AutoFDO: {speedup_over(autofdo, csspgo)*100:+.2f}%")

    print("\nHottest contexts in the CSSPGO profile (note how scalarOp's")
    print("behaviour splits by caller — the paper's Fig. 3b):")
    profile = csspgo.profile
    top = sorted(profile.contexts, key=lambda c: -profile.contexts[c].total)
    for context in top[:8]:
        samples = profile.contexts[context]
        print(f"  {format_context(context):60s} {samples.total:10,.0f}")


if __name__ == "__main__":
    main()
