#!/usr/bin/env python
"""Fleet evaluation: the paper's five server workloads under every variant.

Regenerates the headline comparison (Fig. 6/7 in miniature): performance and
code size of AutoFDO, probe-only CSSPGO, full CSSPGO, and Instr PGO, all
relative to AutoFDO.

Run:  python examples/server_fleet.py          (full fleet, ~5 minutes)
      python examples/server_fleet.py hhvm     (one workload)
"""

import sys

from repro import PGODriverConfig, PGOVariant, run_pgo, speedup_over
from repro.hw import PMUConfig
from repro.workloads import SERVER_WORKLOADS, build_server_workload

VARIANTS = [PGOVariant.NONE, PGOVariant.AUTOFDO,
            PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL,
            PGOVariant.INSTR]


def main() -> None:
    names = sys.argv[1:] or list(SERVER_WORKLOADS)
    config = PGODriverConfig(pmu=PMUConfig(period=59))
    print(f"{'workload':13s} {'autofdo':>10s} {'probe-only':>11s} "
          f"{'csspgo':>9s} {'instr':>8s}   (% vs AutoFDO; text % in parens)")
    for name in names:
        module = build_server_workload(name)
        requests = [SERVER_WORKLOADS[name].requests]
        results = {v: run_pgo(module, v, requests, requests, config)
                   for v in VARIANTS}
        autofdo = results[PGOVariant.AUTOFDO]
        cells = [f"{speedup_over(results[PGOVariant.NONE], autofdo)*100:+9.2f}%"]
        for variant in (PGOVariant.CSSPGO_PROBE_ONLY, PGOVariant.CSSPGO_FULL,
                        PGOVariant.INSTR):
            perf = speedup_over(autofdo, results[variant]) * 100
            text = (results[variant].final.sizes.text
                    / autofdo.final.sizes.text - 1) * 100
            cells.append(f"{perf:+6.2f}% ({text:+5.1f}%)")
        print(f"{name:13s} {cells[0]} {' '.join(cells[1:])}")
    print("\n(the autofdo column is vs the no-PGO build; the paper reports "
          "1-5% for csspgo vs AutoFDO)")


if __name__ == "__main__":
    main()
