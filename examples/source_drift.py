#!/usr/bin/env python
"""Source drift demo (paper sec. III.A).

Collects a profile on pristine source, then rebuilds two edited versions:

* a *comment-level* edit (line numbers shift, CFG unchanged) — AutoFDO's
  line-keyed profile silently misattributes; CSSPGO's probes don't care;
* a *CFG-level* edit — CSSPGO's checksum detects the drift and rejects the
  stale profile instead of consuming garbage, AutoFDO cannot tell.

Run:  python examples/source_drift.py
"""

from repro import PGODriverConfig, PGOVariant, build, measure_run, run_pgo
from repro.annotate import apply_cfg_drift, apply_comment_drift
from repro.hw import PMUConfig
from repro.workloads import SERVER_WORKLOADS, build_server_workload

WORKLOAD = "adfinder"


def main() -> None:
    pristine = build_server_workload(WORKLOAD)
    requests = [SERVER_WORKLOADS[WORKLOAD].requests]
    config = PGODriverConfig(pmu=PMUConfig(period=59))

    for variant in (PGOVariant.AUTOFDO, PGOVariant.CSSPGO_FULL):
        print(f"=== {variant.value} ===")
        baseline = run_pgo(pristine, variant, requests, requests, config)
        print(f"  pristine rebuild: {baseline.eval.cycles:12,.0f} cycles")

        for kind, mutate in (("comment edit", apply_comment_drift),
                             ("CFG edit", apply_cfg_drift)):
            drifted = pristine.clone()
            for name in list(drifted.functions):
                if kind == "comment edit":
                    mutate(drifted, name, 2)
                else:
                    mutate(drifted, name)
            artifacts = build(drifted, variant, profile=baseline.profile)
            cycles = measure_run(artifacts, requests).cycles
            delta = (cycles / baseline.eval.cycles - 1) * 100
            rejected = len(artifacts.annotation.rejected_checksum)
            note = (f", {rejected} stale profiles rejected by checksum"
                    if rejected else "")
            print(f"  {kind:13s}: {cycles:12,.0f} cycles ({delta:+.2f}%){note}")
        print()
    print("paper: minor drift cost a server workload 8% under AutoFDO;")
    print("CSSPGO tolerates comment drift and *detects* CFG drift.")


if __name__ == "__main__":
    main()
