"""Unit tests for the IR instruction classes."""

import pytest

from repro.ir import (Assign, BinOp, Br, Call, Cmp, CondBr, DebugLoc,
                      InlineSite, InstrProfIncrement, Load, PseudoProbe, Ret,
                      Select, Store, is_real, is_reg)


class TestOperandHelpers:
    def test_register_operands_are_strings(self):
        assert is_reg("%x")
        assert not is_reg(42)

    def test_probe_is_not_real(self):
        assert not is_real(PseudoProbe(1, 1))
        assert is_real(BinOp("add", "%d", 1, 2))


class TestUsesAndDefs:
    def test_binop_uses_registers_only(self):
        instr = BinOp("add", "%d", "%a", 7)
        assert instr.uses() == ["%a"]
        assert instr.defined() == "%d"

    def test_cmp_rejects_unknown_predicate(self):
        with pytest.raises(ValueError):
            Cmp("ltu", "%d", "%a", "%b")

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("fma", "%d", "%a", "%b")

    def test_select_uses_all_three(self):
        instr = Select("%d", "%c", "%t", "%f")
        assert set(instr.uses()) == {"%c", "%t", "%f"}

    def test_store_has_no_def(self):
        instr = Store("@g", "%i", "%v")
        assert instr.defined() is None
        assert set(instr.uses()) == {"%i", "%v"}

    def test_call_uses_register_args(self):
        instr = Call("%r", "callee", ["%a", 3, "%b"])
        assert instr.uses() == ["%a", "%b"]
        assert instr.defined() == "%r"

    def test_ret_of_constant_has_no_uses(self):
        assert Ret(7).uses() == []
        assert Ret("%v").uses() == ["%v"]


class TestReplaceUses:
    def test_binop_replace(self):
        instr = BinOp("add", "%d", "%a", "%b")
        instr.replace_uses({"%a": "%x"})
        assert instr.lhs == "%x" and instr.rhs == "%b"

    def test_replace_does_not_touch_def(self):
        instr = BinOp("add", "%d", "%d", 1)
        instr.replace_uses({"%d": "%x"})
        assert instr.dst == "%d" and instr.lhs == "%x"

    def test_condbr_replace(self):
        instr = CondBr("%c", "a", "b")
        instr.replace_uses({"%c": "%k"})
        assert instr.cond == "%k"


class TestClone:
    def test_clone_is_deep_for_args(self):
        call = Call("%r", "f", ["%a"], probe_id=4, lexical_guid=9)
        clone = call.clone()
        clone.args.append("%b")
        assert call.args == ["%a"]
        assert clone.probe_id == 4 and clone.lexical_guid == 9

    def test_probe_clone_keeps_stack(self):
        probe = PseudoProbe(11, 2, inline_stack=((9, 4),), dangling=True)
        clone = probe.clone()
        assert clone.probe_key() == probe.probe_key()
        assert clone.dangling


class TestProbeContext:
    def test_call_probe_context_appends_own_site(self):
        call = Call(None, "f", [], probe_id=6, lexical_guid=77,
                    inline_probe_stack=((5, 2),))
        assert call.probe_context() == ((5, 2), (77, 6))

    def test_uninstrumented_call_has_empty_context(self):
        assert Call(None, "f", []).probe_context() == ()


class TestTerminators:
    def test_terminator_flags(self):
        assert Br("x").is_terminator
        assert CondBr("%c", "a", "b").is_terminator
        assert Ret().is_terminator
        assert not Assign("%a", 1).is_terminator


class TestDebugLoc:
    def test_pushed_into_prepends_site(self):
        loc = DebugLoc(4, 1, (InlineSite("g", 9),))
        pushed = loc.pushed_into(InlineSite("f", 2))
        assert [s.callee for s in pushed.inline_stack] == ["f", "g"]
        assert pushed.line == 4 and pushed.discriminator == 1

    def test_leaf_function(self):
        assert DebugLoc(1).leaf_function("root") == "root"
        loc = DebugLoc(1, 0, (InlineSite("inner", 3),))
        assert loc.leaf_function("root") == "inner"

    def test_equality_and_hash(self):
        a = DebugLoc(3, 1, (InlineSite("f", 2),))
        b = DebugLoc(3, 1, (InlineSite("f", 2),))
        assert a == b and hash(a) == hash(b)
        assert a != DebugLoc(3, 2, (InlineSite("f", 2),))
