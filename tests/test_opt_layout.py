"""Ext-TSP layout and hot/cold splitting."""

from repro.ir import ModuleBuilder, verify_module
from repro.opt import (OptConfig, edge_weights, ext_tsp_layout_function,
                       ext_tsp_score, split_hot_cold_function)
from repro.profile.summary import ProfileSummary
from tests.conftest import run_ir


def _branchy_module():
    """entry branches to hot (90%) or cold (10%); both rejoin."""
    mb = ModuleBuilder("m")
    f = mb.function("main", ["%x"])
    f.block("entry").cmp("slt", "%c", "%x", 90).condbr("%c", "cold", "hot")
    f.block("cold").add("%r", "%x", 1).br("join")
    f.block("hot").add("%r", "%x", 2).br("join")
    f.block("join").ret("%r")
    module = mb.build()
    fn = module.function("main")
    fn.entry.count = 1000.0
    fn.block("hot").count = 900.0
    fn.block("cold").count = 100.0
    fn.block("join").count = 1000.0
    fn.entry_count = 1000.0
    verify_module(module)
    return module


class TestEdgeWeights:
    def test_split_proportional_to_successor_counts(self):
        fn = _branchy_module().function("main")
        weights = edge_weights(fn)
        assert weights[("entry", "hot")] > weights[("entry", "cold")]
        assert abs(weights[("entry", "hot")] - 900.0) < 1.0

    def test_single_successor_carries_full_count(self):
        fn = _branchy_module().function("main")
        weights = edge_weights(fn)
        assert weights[("hot", "join")] == 900.0


class TestExtTsp:
    def test_layout_improves_score(self):
        fn = _branchy_module().function("main")
        weights = edge_weights(fn)
        before = ext_tsp_score([b.label for b in fn.blocks], fn, weights)
        ext_tsp_layout_function(fn)
        after = ext_tsp_score([b.label for b in fn.blocks], fn, weights)
        assert after >= before

    def test_hot_successor_becomes_fallthrough(self):
        fn = _branchy_module().function("main")
        ext_tsp_layout_function(fn)
        order = [b.label for b in fn.blocks]
        assert order.index("hot") == order.index("entry") + 1

    def test_entry_stays_first(self):
        fn = _branchy_module().function("main")
        ext_tsp_layout_function(fn)
        assert fn.blocks[0].label == "entry"

    def test_no_profile_keeps_order(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", ["%x"])
        f.block("entry").br("b")
        f.block("b").ret("%x")
        fn = mb.build().function("main")
        before = [b.label for b in fn.blocks]
        ext_tsp_layout_function(fn)
        assert [b.label for b in fn.blocks] == before

    def test_score_prefers_fallthrough_over_far_jump(self):
        fn = _branchy_module().function("main")
        weights = edge_weights(fn)
        good = ext_tsp_score(["entry", "hot", "join", "cold"], fn, weights)
        bad = ext_tsp_score(["entry", "cold", "join", "hot"], fn, weights)
        assert good > bad


class TestHotColdSplit:
    def test_cold_blocks_marked_and_sunk(self):
        module = _branchy_module()
        fn = module.function("main")
        summary = ProfileSummary(hot_count=500.0, cold_count=150.0,
                                 total=2000.0, num_counts=4)
        cold = split_hot_cold_function(fn, OptConfig(), summary)
        assert cold == 1
        assert fn.blocks[-1].label == "cold"
        assert fn.blocks[-1].is_cold
        verify_module(module)
        assert run_ir(module, [5]).return_value == 6

    def test_entry_never_cold(self):
        fn = _branchy_module().function("main")
        fn.entry.count = 0.0
        summary = ProfileSummary(hot_count=500.0, cold_count=150.0,
                                 total=2000.0, num_counts=4)
        split_hot_cold_function(fn, OptConfig(), summary)
        assert not fn.entry.is_cold

    def test_unprofiled_function_untouched(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", ["%x"])
        f.block("entry").ret("%x")
        fn = mb.build().function("main")
        assert split_hot_cold_function(fn, OptConfig(), None) == 0
