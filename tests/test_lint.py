"""Flow-consistency profile linter: rule catalog, tolerances, CLI, obs.

Pinned in both directions: every count-corrupting injector is flagged
with the right rule ids, and clean PMU-sampled profiles produce zero
findings at default tolerances (across seeds and sampling periods).
"""

import json
import os

import pytest

from repro.analysis import (RULES, LintConfig, LintFinding, lint_profile)
from repro.cli import main
from repro.codegen import build_probe_metadata, link
from repro.correlate import generate_context_profile, generate_probe_profile
from repro.faults import apply_profile_faults, parse_fault_spec
from repro.hw import PMUConfig, execute, make_pmu
from repro.ir.instructions import PseudoProbe
from repro.obs import read_event_log
from repro.opt import OptConfig, optimize_module
from repro.probes import insert_pseudo_probes
from repro.profile import FlatProfile, dump_context_profile
from repro.workloads import WorkloadSpec, build_workload

SEEDS = [int(s) for s in
         os.environ.get("REPRO_FAULT_SEEDS", "11,23,47").split(",")]


@pytest.fixture(scope="module")
def probed():
    """The probe-instrumented IR the ``faults`` workload's profiles map to."""
    module = build_workload(WorkloadSpec("faults", seed=5))
    clone = module.clone()
    insert_pseudo_probes(clone)
    return clone


@pytest.fixture(scope="module")
def collected(probed):
    built = probed.clone()
    optimize_module(built, OptConfig(), profile_annotated=False)
    binary = link(built)
    meta = build_probe_metadata(binary, built)
    pmu = make_pmu(PMUConfig(period=67))
    run = execute(binary, [40], pmu=pmu)
    return binary, meta, pmu.finish(run.instructions_retired)


@pytest.fixture(scope="module")
def flat_profile(collected):
    binary, meta, data = collected
    return generate_probe_profile(binary, data, meta)


def _block_probes(fn):
    probes = {}
    for block in fn.blocks:
        for instr in block.instrs:
            if isinstance(instr, PseudoProbe) and not instr.inline_stack:
                probes[block.label] = instr.probe_id
    return probes


class TestCleanProfiles:
    """Zero false positives on honest sampled profiles."""

    def test_flat_profile_clean(self, probed, flat_profile):
        report = lint_profile(flat_profile, probed)
        assert report.clean
        assert report.functions_checked > 0

    def test_context_profile_clean_via_flatten(self, probed, collected):
        binary, meta, data = collected
        profile, _ = generate_context_profile(binary, data, meta)
        report = lint_profile(profile, probed)
        assert report.clean

    @pytest.mark.parametrize("period", [31, 199])
    def test_clean_across_periods(self, probed, period):
        built = probed.clone()
        optimize_module(built, OptConfig(), profile_annotated=False)
        binary = link(built)
        meta = build_probe_metadata(binary, built)
        pmu = make_pmu(PMUConfig(period=period))
        run = execute(binary, [40], pmu=pmu)
        profile = generate_probe_profile(
            binary, pmu.finish(run.instructions_retired), meta)
        assert lint_profile(profile, probed).clean


class TestInjectorDetection:
    """Each count-corrupting injector trips the rules that own its damage."""

    EXPECTED = {
        # injector -> rule ids it must fire (subset; nothing else may fire
        # beyond the companion rules listed second).
        "missing_probes": ({"flow-conservation"},
                           {"flow-conservation", "entry-inversion",
                            "loop-monotonicity", "unreachable-block"}),
        "extra_probes": ({"unknown-probe"}, {"unknown-probe"}),
        "counter_overflow": ({"counter-overflow"},
                             {"counter-overflow", "flow-conservation",
                              "entry-inversion", "loop-monotonicity"}),
    }

    @pytest.mark.parametrize("injector", sorted(EXPECTED))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_injector_flagged_with_right_rules(self, probed, flat_profile,
                                               injector, seed):
        spec = parse_fault_spec(f"{injector}:0.5@seed={seed}")
        corrupted, injection = apply_profile_faults(flat_profile, spec)
        assert injection.total() > 0
        report = lint_profile(corrupted, probed)
        must_fire, may_fire = self.EXPECTED[injector]
        fired = report.rules_fired()
        assert must_fire <= fired
        assert fired <= may_fire

    def test_three_distinct_violation_classes(self, probed, flat_profile):
        """The acceptance criterion: >= 3 distinct rule ids across the
        count-corrupting injector family."""
        fired = set()
        for injector in sorted(self.EXPECTED):
            spec = parse_fault_spec(f"{injector}:0.6@seed=11")
            corrupted, _ = apply_profile_faults(flat_profile, spec)
            fired |= lint_profile(corrupted, probed).rules_fired()
        assert len(fired) >= 3

    def test_corruption_never_mutates_input(self, probed, flat_profile):
        spec = parse_fault_spec("counter_overflow:0.5@seed=11")
        apply_profile_faults(flat_profile, spec)
        assert lint_profile(flat_profile, probed).clean


class TestRuleUnits:
    """Hand-built profiles hit each rule deterministically."""

    def _profile_for(self, probed, name, counts, head=100.0):
        fn = probed.functions[name]
        probes = _block_probes(fn)
        profile = FlatProfile(FlatProfile.KIND_PROBE)
        samples = profile.get_or_create(name)
        samples.head = head
        samples.checksum = fn.probe_checksum
        for label, count in counts.items():
            samples.add_body(probes[label], count)
        profile.finalize()
        return profile

    @pytest.fixture(scope="class")
    def exact(self, probed):
        """Exact per-block counts for one warm loop function."""
        for name, fn in probed.functions.items():
            labels = [b.label for b in fn.blocks]
            from repro.analysis import LoopInfo
            li = LoopInfo(fn)
            if li.loops and li.reducible and len(labels) >= 4:
                return name
        pytest.skip("no loop function in workload")

    def test_exact_counts_are_clean(self, probed):
        # Entry 100, loop spins 50x: flow-consistent by construction.
        name = "main"
        fn = probed.functions[name]
        probes = _block_probes(fn)
        counts = {label: 100.0 for label in probes}
        profile = self._profile_for(probed, name, counts)
        report = lint_profile(profile, probed)
        assert not report.rules_fired() - {"flow-conservation"}

    def test_unknown_probe(self, probed):
        name = next(iter(probed.functions))
        profile = self._profile_for(probed, name, {})
        profile.functions[name].add_body(9999, 5.0)
        report = lint_profile(profile, probed)
        assert "unknown-probe" in report.rules_fired()

    def test_counter_overflow_body_and_head(self, probed):
        name = next(iter(probed.functions))
        fn = probed.functions[name]
        label = fn.entry.label
        profile = self._profile_for(probed, name, {label: float(2 ** 63)})
        assert "counter-overflow" in \
            lint_profile(profile, probed).rules_fired()
        profile = self._profile_for(probed, name, {}, head=float(2 ** 63))
        assert "counter-overflow" in \
            lint_profile(profile, probed).rules_fired()

    def test_flow_conservation_inflow_violation(self, probed):
        # A non-entry block massively outrunning all its predecessors.
        for name, fn in probed.functions.items():
            probes = _block_probes(fn)
            non_entry = [b.label for b in fn.blocks
                         if b.label != fn.entry.label and b.label in probes]
            if not non_entry:
                continue
            counts = {label: 10.0 for label in probes}
            counts[non_entry[-1]] = 100000.0
            profile = self._profile_for(probed, name, counts)
            assert "flow-conservation" in \
                lint_profile(profile, probed).rules_fired()
            return
        pytest.skip("no multi-block function")

    def test_tolerance_band_absorbs_noise(self, probed):
        # 30% inflow overshoot sits inside the default 50% band.
        config = LintConfig()
        assert not config.exceeds(130.0, 100.0)
        assert config.exceeds(200.0, 100.0)
        # The entry-inversion band is wider (sampling bias), 5x + slack.
        assert not config.exceeds_inversion(400.0, 100.0)
        assert config.exceeds_inversion(600.0, 100.0)

    def test_rules_catalog_is_closed(self):
        with pytest.raises(AssertionError):
            LintFinding("not-a-rule", "f", "detail")
        assert set(RULES) == {
            "flow-conservation", "unknown-probe", "unreachable-block",
            "entry-inversion", "loop-monotonicity", "counter-overflow"}

    def test_dwarf_profiles_skipped(self, probed):
        profile = FlatProfile(FlatProfile.KIND_DWARF)
        samples = profile.get_or_create("main")
        samples.add_body(("file.c", 12), 50.0)
        report = lint_profile(profile, probed)
        assert report.functions_skipped == 1
        assert report.functions_checked == 0
        assert report.clean


class TestLintCli:
    def _write_profile(self, tmp_path, corrupt=None):
        out_file = tmp_path / "ctx.prof"
        assert main(["--period", "67", "--seed", "5",
                     "profile", "faults", "-o", str(out_file)]) == 0
        if corrupt:
            from repro.profile import load_context_profile
            profile = load_context_profile(out_file.read_text())
            profile, _ = apply_profile_faults(
                profile, parse_fault_spec(corrupt))
            out_file.write_text(dump_context_profile(profile))
        return out_file

    def test_clean_profile_exits_zero(self, tmp_path, capsys):
        out_file = self._write_profile(tmp_path)
        assert main(["--seed", "5", "lint", str(out_file), "faults"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_corrupted_profile_exits_one(self, tmp_path, capsys):
        out_file = self._write_profile(
            tmp_path, corrupt="counter_overflow:0.5@seed=11")
        assert main(["--seed", "5", "lint", str(out_file), "faults"]) == 1
        out = capsys.readouterr().out
        assert "counter-overflow" in out
        assert "finding(s)" in out

    def test_lint_events_emitted(self, tmp_path):
        out_file = self._write_profile(
            tmp_path, corrupt="extra_probes:0.5@seed=11")
        events_file = tmp_path / "events.jsonl"
        main(["--seed", "5", "--events-out", str(events_file),
              "lint", str(out_file), "faults"])
        events, malformed = read_event_log(str(events_file))
        assert malformed == 0
        findings = [e for e in events if e.type == "lint_finding"]
        summaries = [e for e in events if e.type == "lint_summary"]
        assert findings and len(summaries) == 1
        assert all(e.get("rule") == "unknown-probe" for e in findings)
        assert summaries[0].get("findings") == len(findings)
        assert summaries[0].get("rules") == ["unknown-probe"]

    def test_validate_lint_flag(self, tmp_path, capsys):
        out_file = self._write_profile(tmp_path)
        assert main(["--seed", "5", "validate", str(out_file), "faults",
                     "--lint"]) == 0
        assert "lint findings       0" in capsys.readouterr().out

    def test_malformed_profile_exits_two_in_strict_mode(self, tmp_path):
        bad = tmp_path / "bad.prof"
        bad.write_text("# kind: context\nthis is not a profile\n")
        assert main(["--seed", "5", "--strict-profile",
                     "lint", str(bad), "faults"]) == 2


class TestLintSlo:
    def test_lint_findings_indicator_and_rule(self, tmp_path):
        from repro.obs import default_rules, evaluate_health
        out_file = tmp_path / "ctx.prof"
        main(["--period", "67", "--seed", "5",
              "profile", "faults", "-o", str(out_file)])
        from repro.profile import load_context_profile
        profile = load_context_profile(out_file.read_text())
        profile, _ = apply_profile_faults(
            profile, parse_fault_spec("extra_probes:0.5@seed=11"))
        out_file.write_text(dump_context_profile(profile))
        events_file = tmp_path / "events.jsonl"
        main(["--seed", "5", "--events-out", str(events_file),
              "lint", str(out_file), "faults"])
        events, _ = read_event_log(str(events_file))
        report = evaluate_health(events)
        result = {r.rule.name: r for r in report.results}["lint-clean"]
        assert result.verdict == "fail"
        assert result.value and result.value > 0

    def test_no_lint_run_skips_rule(self):
        from repro.obs import evaluate_health
        report = evaluate_health([])
        result = {r.rule.name: r for r in report.results}["lint-clean"]
        assert result.verdict == "skip"
