"""Integration: the paper's core correlation-accuracy claims, measured.

These tests build small programs where a specific optimization damages DWARF
correlation, then check that probe correlation survives — the mechanism
behind Table I's quality gap.
"""

import pytest

from repro.annotate import annotate_function_dwarf, annotate_function_probe
from repro.codegen import build_probe_metadata, link
from repro.hw import PMUConfig, execute, make_pmu
from repro.correlate import generate_dwarf_profile, generate_probe_profile
from repro.ir import IRInterpreter, ModuleBuilder, verify_module
from repro.opt import OptConfig, tail_merge_function, unroll_function
from repro.probes import insert_pseudo_probes
from repro.profile.summary import ProfileSummary
from repro.quality import block_overlap_function


def _profile(module, args, period=7):
    binary = link(module)
    meta = build_probe_metadata(binary, module)
    pmu = make_pmu(PMUConfig(period=period))
    run = execute(binary, args, pmu=pmu)
    return binary, meta, pmu.finish(run.instructions_retired)


def _dowhile_module():
    mb = ModuleBuilder("m")
    f = mb.function("main", ["%n"])
    f.block("entry").mov("%i", 0).mov("%sum", 0).br("dw")
    (f.block("dw").add("%sum", "%sum", "%i").add("%i", "%i", 1)
        .cmp("slt", "%c", "%i", "%n").condbr("%c", "dw", "out"))
    f.block("out").ret("%sum")
    return mb.build()


class TestUnrollDuplication:
    """Paper III.A(b): duplication breaks max-heuristics, probes sum."""

    def _unrolled(self, probes: bool):
        module = _dowhile_module()
        if probes:
            insert_pseudo_probes(module)
        fn = module.function("main")
        fn.entry.count = 1.0
        fn.block("dw").count = 1000.0
        summary = ProfileSummary(10.0, 0.0, 1e6, 4)
        assert unroll_function(fn, OptConfig(unroll_factor=4), summary) == 1
        for block in fn.blocks:
            block.count = None
        verify_module(module)
        return module

    def test_probe_sum_vs_dwarf_max_ratio(self):
        """From the *same* binary and the *same* samples: the probe count of
        the 4x-duplicated loop body sums across copies, while the DWARF count
        of the body's source line is a max over copies — so the probe count
        must be roughly 4x the line count (the paper's sum-vs-max point)."""
        module = self._unrolled(probes=True)
        binary, meta, data = _profile(module, [400])
        probe_profile = generate_probe_profile(binary, data, meta)
        dwarf_profile = generate_dwarf_profile(binary, data)
        # probe 2 = dw block probe; source line 4 = the dw body's first stmt.
        probe_count = probe_profile.get("main").body[2]
        line_count = dwarf_profile.get("main").body[(4, 0)]
        ratio = probe_count / line_count
        assert 2.5 <= ratio <= 5.5, f"sum/max ratio {ratio:.2f}, expected ~4"

    def test_probe_annotation_recovers_full_loop_count(self):
        """Annotating a fresh (re-compiled) module: the probe-matched body
        count is the full iteration count, the dwarf-matched count is the
        per-copy undercount — a ~4x accuracy gap per unrolled loop."""
        module = self._unrolled(probes=True)
        binary, meta, data = _profile(module, [400])
        probe_profile = generate_probe_profile(binary, data, meta)
        dwarf_profile = generate_dwarf_profile(binary, data)

        probe_target = _dowhile_module()
        insert_pseudo_probes(probe_target)
        annotate_function_probe(probe_target.function("main"),
                                probe_profile.get("main"),
                                strict_checksum=False)
        dwarf_target = _dowhile_module()
        annotate_function_dwarf(dwarf_target.function("main"),
                                dwarf_profile.get("main"))
        probe_count = probe_target.function("main").block("dw").count
        dwarf_count = dwarf_target.function("main").block("dw").count
        assert probe_count == pytest.approx(4 * dwarf_count, rel=0.3)


class TestTailMergeConflation:
    """Paper III.A(a): merged blocks conflate counts; probes block it."""

    def _branchy(self, probes: bool):
        mb = ModuleBuilder("m")
        f = mb.function("main", ["%n"])
        f.block("entry").mov("%i", 0).mov("%a", 0).mov("%b", 0).br("loop")
        f.block("loop").cmp("slt", "%c", "%i", "%n").condbr("%c", "body", "out")
        (f.block("body").binop("srem", "%m", "%i", 10)
            .cmp("slt", "%cc", "%m", 9).condbr("%cc", "hotside", "coldside"))
        f.block("hotside").add("%a", "%a", 1).br("cont")     # 90% of iters
        f.block("coldside").add("%a", "%a", 1).br("cont")    # 10%, identical
        f.block("cont").add("%i", "%i", 1).br("loop")
        f.block("out").add("%r", "%a", "%b").ret("%r")
        module = mb.build()
        if probes:
            insert_pseudo_probes(module)
        return module

    def test_merge_conflates_dwarf_counts(self):
        module = self._branchy(probes=False)
        merged = tail_merge_function(module.function("main"))
        assert merged == 1
        binary, _meta, data = _profile(module, [1000])
        profile = generate_dwarf_profile(binary, data)
        annotate_module = self._branchy(probes=False)
        annotate_function_dwarf(annotate_module.function("main"),
                                profile.get("main"))
        fn = annotate_module.function("main")
        hot = fn.block("hotside").count
        cold = fn.block("coldside").count
        # Both pre-merge blocks see the *same* merged count: the 9:1 split
        # is unrecoverable (both lines map to the one surviving block).
        assert hot == 0 or cold == 0 or abs(hot - cold) < 0.2 * max(hot, cold)

    def test_probes_preserve_the_split(self):
        module = self._branchy(probes=True)
        assert tail_merge_function(module.function("main")) == 0  # blocked
        binary, meta, data = _profile(module, [1000])
        profile = generate_probe_profile(binary, data, meta)
        annotate_module = self._branchy(probes=True)
        annotate_function_probe(annotate_module.function("main"),
                                profile.get("main"))
        fn = annotate_module.function("main")
        hot = fn.block("hotside").count
        cold = fn.block("coldside").count
        assert hot > 5 * cold  # the 9:1 bias survives


class TestEndToEndOverlap:
    def test_probe_overlap_beats_dwarf_overlap(self, small_workload):
        """On a realistic module, probe-annotated counts overlap ground
        truth at least as well as dwarf-annotated counts."""
        from repro.pgo.quality_eval import evaluate_profile_quality
        from repro.pgo import PGODriverConfig
        report = evaluate_profile_quality(
            small_workload, [60],
            PGODriverConfig(pmu=PMUConfig(period=23)))
        assert report.block_overlap["csspgo"] >= report.block_overlap["autofdo"]
