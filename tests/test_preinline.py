"""Pre-inliner (Algorithm 2) and binary size extraction (Algorithm 3)."""

from repro.codegen import link
from repro.opt import inline_call
from repro.preinline import (PreInlinerConfig, SizeTable,
                             extract_function_sizes, profiled_call_graph,
                             run_preinliner, should_inline, top_down_order)
from repro.probes import insert_pseudo_probes
from repro.profile import (ATTR_SHOULD_INLINE, ContextProfile, base_context,
                           make_context)
from tests.conftest import build_call_module


class TestSizeExtractor:
    def test_standalone_sizes(self):
        module = build_call_module()
        insert_pseudo_probes(module)
        binary = link(module)
        table = extract_function_sizes(binary)
        main_size = table.size_for(base_context("main"))
        helper_size = table.size_for(base_context("helper"))
        assert main_size is not None and helper_size is not None
        assert main_size + helper_size == binary.text_size

    def test_inlined_copy_gets_context_size(self):
        module = build_call_module()
        insert_pseudo_probes(module)
        main = module.function("main")
        call = main.block("entry").calls()[0]
        idx = main.block("entry").instrs.index(call)
        probe_id = call.probe_id
        inline_call(module, main, "entry", idx)
        binary = link(module)
        table = extract_function_sizes(binary)
        ctx = make_context(("main", probe_id), ("helper", None))
        specialized = table.size_for(ctx)
        assert specialized is not None and specialized > 0
        # Exclusive accounting: main's own bytes exclude the inlined copy.
        assert (table.size_for(base_context("main")) + specialized
                + table.size_for(base_context("helper"))
                == binary.text_size)

    def test_fallback_to_standalone(self):
        module = build_call_module()
        insert_pseudo_probes(module)
        table = extract_function_sizes(link(module))
        unseen = make_context(("main", 99), ("helper", None))
        assert table.size_for(unseen) == table.size_for(base_context("helper"))

    def test_unknown_function_is_none(self):
        table = SizeTable()
        table.finalize()
        assert table.size_for(base_context("ghost")) is None


class TestCallGraph:
    def test_top_down_order(self):
        profile = ContextProfile()
        ctx = make_context(("main", 1), ("svc", None))
        profile.get_or_create(ctx).add_body(1, 10.0)
        deep = make_context(("main", 1), ("svc", 2), ("leaf", None))
        profile.get_or_create(deep).add_body(1, 10.0)
        profile.finalize()
        graph = profiled_call_graph(profile)
        order = top_down_order(graph)
        assert order.index("main") < order.index("svc") < order.index("leaf")


class TestShouldInline:
    def test_hot_gets_big_threshold(self):
        config = PreInlinerConfig(hot_callsite_fraction=0.01,
                                  size_threshold_hot=400,
                                  size_threshold_normal=50)
        assert should_inline(300, hotness=1000.0, total_samples=10_000.0,
                             config=config)
        assert not should_inline(300, hotness=10.0, total_samples=10_000.0,
                                 config=config)
        assert should_inline(40, hotness=10.0, total_samples=10_000.0,
                             config=config)

    def test_zero_hotness_never_inlines(self):
        config = PreInlinerConfig()
        assert not should_inline(1, hotness=0.0, total_samples=100.0,
                                 config=config)


class TestPreInliner:
    def _profile(self, hot_head=5000.0, cold_head=1.0):
        profile = ContextProfile()
        base_main = profile.get_or_create(base_context("main"))
        base_main.body = {1: 100.0}
        hot = profile.get_or_create(make_context(("main", 2), ("hotfn", None)))
        hot.head = hot_head
        hot.body = {1: hot_head, 2: hot_head * 10}
        cold = profile.get_or_create(make_context(("main", 3), ("coldfn", None)))
        cold.head = cold_head
        cold.body = {1: cold_head}
        profile.finalize()
        return profile

    def _sizes(self):
        table = SizeTable()
        table.size_for_context[base_context("main")] = 100
        table.size_for_context[base_context("hotfn")] = 80
        table.size_for_context[base_context("coldfn")] = 80
        table.finalize()
        return table

    def test_hot_marked_cold_merged(self):
        profile = self._profile()
        decisions = run_preinliner(profile, self._sizes())
        hot_ctx = make_context(("main", 2), ("hotfn", None))
        assert ATTR_SHOULD_INLINE in profile.contexts[hot_ctx].attributes
        # Cold context merged into coldfn's base.
        assert make_context(("main", 3), ("coldfn", None)) not in profile.contexts
        assert profile.base("coldfn").total == 1.0
        assert any(d.inlined for d in decisions)
        assert any(not d.inlined for d in decisions)

    def test_size_threshold_declines_huge_callee(self):
        profile = self._profile()
        table = self._sizes()
        table.size_for_context[base_context("hotfn")] = 100_000
        run_preinliner(profile, table)
        hot_ctx = make_context(("main", 2), ("hotfn", None))
        assert hot_ctx not in profile.contexts  # declined -> merged to base
        assert profile.base("hotfn").total > 0

    def test_budget_limits_total_marks(self):
        profile = ContextProfile()
        base_main = profile.get_or_create(base_context("main"))
        base_main.body = {1: 10.0}
        for i in range(20):
            ctx = make_context(("main", i + 2), (f"f{i}", None))
            rec = profile.get_or_create(ctx)
            rec.head = 10_000.0
            rec.body = {1: 10_000.0}
        profile.finalize()
        table = SizeTable()
        table.size_for_context[base_context("main")] = 100
        for i in range(20):
            table.size_for_context[base_context(f"f{i}")] = 300
        table.finalize()
        config = PreInlinerConfig(caller_size_limit=1000,
                                  size_threshold_hot=400)
        decisions = run_preinliner(profile, table, config)
        marked = [d for d in decisions if d.inlined]
        assert 0 < len(marked) <= 4  # (1000 - 100) / 300 = 3 fit the budget

    def test_transformed_profile_has_only_bases_and_marked(self):
        profile = self._profile()
        run_preinliner(profile, self._sizes())
        for ctx, samples in profile.contexts.items():
            assert (len(ctx) == 1
                    or ATTR_SHOULD_INLINE in samples.attributes)
