"""Fault-injection fuzz tests: graceful degradation and exact accounting.

Property style over the injector taxonomy (``repro.faults.INJECTORS``):

* permissive mode never lets an exception out of the pipeline, for any
  injector at any intensity under every seed in ``REPRO_FAULT_SEEDS``;
* strict mode raises the *typed* errors, nothing else;
* everything discarded is accounted for, exactly: drop counters reconcile
  against a non-memoized per-sample reference unwind and against the
  injectors' own ground-truth reports.
"""

import os

import pytest

from repro import PGODriverConfig, PGOVariant, build, run_pgo, telemetry
from repro.correlate.profgen import (aggregate_samples,
                                     generate_context_profile,
                                     generate_probe_profile)
from repro.faults import (INJECTORS, FaultSpec, apply_perf_faults,
                          apply_profile_faults, apply_text_faults,
                          clone_perf_data, parse_fault_spec)
from repro.hw import PMUConfig, execute, make_pmu
from repro.hw.perf_data import PerfData
from repro.profile import (BinaryMismatchError, ProfileParseError,
                           ProfileStaleError, dump_context_profile,
                           load_context_profile)

SEEDS = [int(s) for s in
         os.environ.get("REPRO_FAULT_SEEDS", "11,23,47").split(",")]
PERF_INJECTORS = sorted(n for n, i in INJECTORS.items() if i.kind == "perf")
PROFILE_INJECTORS = sorted(n for n, i in INJECTORS.items()
                           if i.kind == "profile")


@pytest.fixture(scope="module")
def workload():
    # Exactly what ``repro --seed 5 validate <file> faults`` rebuilds, so the
    # CLI tests and the library tests audit the same binary.
    from repro.workloads import WorkloadSpec, build_workload
    return build_workload(WorkloadSpec("faults", seed=5))


@pytest.fixture(scope="module")
def collected(workload):
    """One CSSPGO build and one PMU collection, shared by every test."""
    artifacts = build(workload, PGOVariant.CSSPGO_FULL)
    pmu = make_pmu(PMUConfig(period=67))
    run = execute(artifacts.binary, [40], pmu=pmu)
    return artifacts, pmu.finish(run.instructions_retired)


@pytest.fixture(scope="module")
def context_profile(collected):
    artifacts, data = collected
    profile, _ = generate_context_profile(artifacts.binary, data,
                                          artifacts.probe_meta)
    return profile


def _drop_counters(session):
    return {name: count for (comp, name), count in session.counters.items()
            if comp == "correlate.drop"}


def _probed(module):
    """A probe-inserted clone — what ``build()`` hands the sample loaders
    (checksum enforcement needs the IR's probe checksums in place)."""
    from repro.probes.insertion import insert_pseudo_probes
    clone = module.clone()
    insert_pseudo_probes(clone)
    return clone


# ---------------------------------------------------------------------------
# spec + determinism
# ---------------------------------------------------------------------------


def test_spec_parse_and_validation():
    spec = parse_fault_spec("stale_checksum:1,drop_samples:0.25@seed=7")
    assert spec.seed == 7
    assert dict(spec.faults)["drop_samples"] == 0.25
    with pytest.raises(ValueError):
        parse_fault_spec("no_such_fault:0.5")
    with pytest.raises(ValueError):
        parse_fault_spec("drop_samples:1.5")


def test_unknown_injector_kind_entries_empty():
    spec = FaultSpec([("malformed_text", 1.0)], seed=1)
    assert spec.entries_of_kind("perf") == []
    assert [n for n, _ in spec.entries_of_kind("text")] == ["malformed_text"]


@pytest.mark.parametrize("seed", SEEDS)
def test_perf_injection_is_deterministic(collected, seed):
    _, data = collected
    spec = FaultSpec([(n, 0.4) for n in PERF_INJECTORS], seed=seed)
    first, report_a = apply_perf_faults(data, spec)
    second, report_b = apply_perf_faults(data, spec)
    assert report_a.events == report_b.events
    assert [(s.lbr, s.stack, s.ip) for s in first.samples] == \
           [(s.lbr, s.stack, s.ip) for s in second.samples]


def test_injection_copies_not_mutates(collected, context_profile):
    _, data = collected
    before = [(s.lbr, s.stack, s.ip) for s in data.samples]
    spec = FaultSpec([(n, 1.0) for n in PERF_INJECTORS], seed=11)
    apply_perf_faults(data, spec)
    assert [(s.lbr, s.stack, s.ip) for s in data.samples] == before
    checksums = {str(k): s.checksum
                 for k, s in context_profile.contexts.items()}
    apply_profile_faults(context_profile,
                         FaultSpec([("stale_checksum", 1.0)], seed=11))
    assert {str(k): s.checksum
            for k, s in context_profile.contexts.items()} == checksums


# ---------------------------------------------------------------------------
# perf faults: no uncaught exceptions + exact drop accounting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", PERF_INJECTORS)
def test_perf_fault_accounting_exact(collected, name, seed):
    """For every perf injector: profgen completes, and the dedup-path drop
    counters equal a fresh non-memoized per-sample reference unwind."""
    artifacts, data = collected
    faulted, _ = apply_perf_faults(data, FaultSpec([(name, 0.6)], seed=seed))

    session = telemetry.enable()
    profile, _ = generate_context_profile(artifacts.binary, faulted,
                                          artifacts.probe_meta)
    used = session.counter("correlate", "samples_used")
    drops = _drop_counters(session)
    telemetry.disable()

    assert used + sum(drops.values()) == len(faulted.samples)
    assert profile is not None

    reference, _ = aggregate_samples(artifacts.binary, faulted,
                                     use_inferrer=True, dedup=False)
    assert dict(reference.dropped) == drops
    assert reference.used_samples == used


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_addrs_full_intensity_drops_everything(collected, seed):
    """All-out-of-range samples must *all* be dropped — and classified."""
    artifacts, data = collected
    faulted, report = apply_perf_faults(
        data, FaultSpec([("corrupt_addrs", 1.0)], seed=seed))
    assert report.total("samples_corrupted") == len(data.samples)

    session = telemetry.enable()
    generate_context_profile(artifacts.binary, faulted, artifacts.probe_meta)
    used = session.counter("correlate", "samples_used")
    drops = _drop_counters(session)
    telemetry.disable()

    assert used == 0
    assert sum(drops.values()) == len(faulted.samples)
    expected_empty = report.get("corrupt_addrs", "samples_corrupted_empty_lbr")
    assert drops.get("empty_lbr", 0) == expected_empty
    assert drops.get("lbr_outside_binary", 0) == \
        len(faulted.samples) - expected_empty


@pytest.mark.parametrize("seed", SEEDS)
def test_drop_dup_change_sample_count_exactly(collected, seed):
    _, data = collected
    spec = FaultSpec([("drop_samples", 0.3), ("dup_samples", 0.3)], seed=seed)
    faulted, report = apply_perf_faults(data, spec)
    expected = (len(data.samples)
                - report.get("drop_samples", "samples_dropped")
                + report.get("dup_samples", "samples_duplicated"))
    assert len(faulted.samples) == expected


@pytest.mark.parametrize("name", PERF_INJECTORS)
def test_probe_only_mode_survives_perf_faults(collected, name):
    artifacts, data = collected
    faulted, _ = apply_perf_faults(data, FaultSpec([(name, 1.0)], seed=23))
    profile = generate_probe_profile(artifacts.binary, faulted,
                                     artifacts.probe_meta)
    assert profile is not None


# ---------------------------------------------------------------------------
# profile faults: permissive application + strict typed errors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", PROFILE_INJECTORS)
def test_profile_fault_permissive_application(workload, context_profile,
                                              name, seed):
    """Every profile injector: the CS sample loader applies the corrupted
    profile without raising in permissive mode."""
    from repro.annotate import csspgo_sample_loader
    faulted, _ = apply_profile_faults(context_profile,
                                      FaultSpec([(name, 0.7)], seed=seed))
    session = telemetry.enable()
    stats = csspgo_sample_loader(_probed(workload), faulted, strict=False)
    telemetry.disable()
    assert stats is not None
    rejected = session.counter("annotate.drop", "checksum_mismatch")
    assert rejected == len(stats.rejected_checksum)


def test_stale_checksum_rejects_every_function(workload, context_profile):
    from repro.annotate import csspgo_sample_loader
    faulted, report = apply_profile_faults(
        context_profile, FaultSpec([("stale_checksum", 1.0)], seed=11))
    assert report.total("checksums_staled") == len(context_profile.contexts)

    session = telemetry.enable()
    stats = csspgo_sample_loader(_probed(workload), faulted, strict=False)
    telemetry.disable()
    assert not stats.annotated
    assert stats.rejected_checksum
    assert session.counter("annotate.drop", "checksum_mismatch") == \
        len(stats.rejected_checksum)


@pytest.mark.parametrize("seed", SEEDS)
def test_stale_checksum_strict_raises_typed(workload, context_profile, seed):
    from repro.annotate import csspgo_sample_loader
    faulted, _ = apply_profile_faults(
        context_profile, FaultSpec([("stale_checksum", 1.0)], seed=seed))
    with pytest.raises(ProfileStaleError):
        csspgo_sample_loader(_probed(workload), faulted, strict=True)


# ---------------------------------------------------------------------------
# text faults: permissive drop counters + strict parse errors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_malformed_text_permissive_exact_accounting(context_profile, seed):
    text = dump_context_profile(context_profile)
    corrupt, report = apply_text_faults(
        text, FaultSpec([("malformed_text", 0.5)], seed=seed))
    lines_corrupted = report.total("lines_corrupted")
    assert lines_corrupted > 0

    session = telemetry.enable()
    profile = load_context_profile(corrupt, strict=False)
    dropped = session.counter("profile.drop", "malformed_line")
    telemetry.disable()
    assert dropped == lines_corrupted
    # Headers were untouched: every record survives, minus corrupted lines.
    assert set(profile.contexts) == set(context_profile.contexts)


def test_malformed_text_strict_raises_with_line_number(context_profile):
    text = dump_context_profile(context_profile)
    corrupt, _ = apply_text_faults(
        text, FaultSpec([("malformed_text", 1.0)], seed=11))
    with pytest.raises(ProfileParseError) as err:
        load_context_profile(corrupt, strict=True)
    assert "line" in str(err.value)


# ---------------------------------------------------------------------------
# binary identity
# ---------------------------------------------------------------------------


def test_perf_extend_rejects_other_binary(collected):
    _, data = collected
    assert data.binary_id is not None  # stamped by execute()
    other = clone_perf_data(data)
    other.binary_id = "f" * 16
    mine = clone_perf_data(data)
    with pytest.raises(BinaryMismatchError):
        mine.extend(other)


def test_perf_extend_adopts_missing_identity(collected):
    _, data = collected
    merged = PerfData(data.period, data.lbr_depth, data.pebs)
    assert merged.binary_id is None
    merged.extend(data)
    assert merged.binary_id == data.binary_id


def test_binary_identity_distinguishes_builds(workload):
    from tests.conftest import build_call_module
    a = build(workload, PGOVariant.CSSPGO_FULL).binary
    b = build(build_call_module(), PGOVariant.CSSPGO_FULL).binary
    assert a.identity() == a.identity()
    assert a.identity() != b.identity()


# ---------------------------------------------------------------------------
# driver: degradation chain
# ---------------------------------------------------------------------------


def _driver_config(fault_spec=None, strict=False):
    return PGODriverConfig(profile_iterations=1, max_instructions=2_000_000,
                           fault_spec=fault_spec, strict_profile=strict)


def test_driver_degrades_on_fully_stale_profile(workload):
    """Acceptance: a fully stale profile must still complete the cycle —
    CSSPGO falls back to AutoFDO, with counter + remark + extras."""
    spec = FaultSpec.parse("stale_checksum:1@seed=11")
    session = telemetry.enable()
    result = run_pgo(workload, PGOVariant.CSSPGO_FULL, [40], [40],
                     _driver_config(fault_spec=spec))
    telemetry.disable()
    assert result.eval is not None
    assert result.extras["fallback_chain"] == ["csspgo->autofdo"]
    assert result.extras["fallback_reasons"] == ["EmptyAnnotation"]
    assert result.extras["degraded_variant"] == "autofdo"
    assert result.final.variant is PGOVariant.AUTOFDO
    assert session.counter("pgo.fallback", "csspgo_to_autofdo") == 1
    fallback_remarks = [r for r in session.remarks
                        if r.name == "ProfileFallback"]
    assert fallback_remarks
    assert fallback_remarks[0].args["reason"] == "EmptyAnnotation"


def test_driver_strict_raises_on_stale_profile(workload):
    spec = FaultSpec.parse("stale_checksum:1@seed=11")
    with pytest.raises(ProfileStaleError):
        run_pgo(workload, PGOVariant.CSSPGO_FULL, [40], [40],
                _driver_config(fault_spec=spec, strict=True))


@pytest.mark.parametrize("seed", SEEDS)
def test_driver_survives_every_fault_at_once(workload, seed):
    """The whole taxonomy, every boundary, full pipeline: still completes."""
    spec = FaultSpec([(name, 0.5) for name in sorted(INJECTORS)], seed=seed)
    result = run_pgo(workload, PGOVariant.CSSPGO_FULL, [40], [40],
                     _driver_config(fault_spec=spec))
    assert result.eval is not None
    assert result.final is not None


def test_chain_bottoms_out_at_no_pgo(workload):
    """A DWARF profile naming only unknown functions degrades to plain."""
    from repro.pgo.driver import PGORunResult, _build_optimized
    from repro.profile import FlatProfile
    from repro.profile.function_samples import FunctionSamples
    bogus = FlatProfile(FlatProfile.KIND_DWARF)
    samples = FunctionSamples("__no_such_function")
    samples.add_body((1, 0), 100.0)
    samples.finalize()
    bogus.functions["__no_such_function"] = samples
    result = PGORunResult(PGOVariant.AUTOFDO)
    artifacts = _build_optimized(workload, PGOVariant.AUTOFDO, bogus,
                                 _driver_config(), result)
    assert artifacts.variant is PGOVariant.NONE
    assert result.extras["fallback_chain"] == ["autofdo->none"]
    assert result.extras["fallback_reasons"] == ["EmptyAnnotation"]


# ---------------------------------------------------------------------------
# CLI: validate + --fault-spec
# ---------------------------------------------------------------------------


def test_cli_validate_pass_and_fail(tmp_path, context_profile):
    from repro.cli import main
    good = tmp_path / "good.prof"
    good.write_text(dump_context_profile(context_profile))
    assert main(["--seed", "5", "validate", str(good), "faults"]) == 0

    stale, _ = apply_profile_faults(
        context_profile, FaultSpec([("stale_checksum", 1.0)], seed=11))
    bad = tmp_path / "stale.prof"
    bad.write_text(dump_context_profile(stale))
    assert main(["--seed", "5", "validate", str(bad), "faults"]) == 1


def test_cli_validate_min_match_rate(tmp_path, context_profile):
    from repro.cli import main
    stale, _ = apply_profile_faults(
        context_profile, FaultSpec([("stale_checksum", 1.0)], seed=11))
    bad = tmp_path / "stale.prof"
    bad.write_text(dump_context_profile(stale))
    assert main(["--seed", "5", "validate", str(bad), "faults",
                 "--min-match-rate", "0"]) == 0


def test_cli_validate_strict_rejects_malformed(tmp_path, context_profile):
    from repro.cli import main
    corrupt, _ = apply_text_faults(
        dump_context_profile(context_profile),
        FaultSpec([("malformed_text", 1.0)], seed=11))
    path = tmp_path / "corrupt.prof"
    path.write_text(corrupt)
    assert main(["--strict-profile", "--seed", "5", "validate",
                 str(path), "faults"]) == 2
    # Permissive: malformed lines drop, the rest still validates.
    assert main(["--seed", "5", "validate", str(path), "faults"]) == 0


def test_cli_rejects_bad_fault_spec():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["--fault-spec", "no_such_fault:1", "workloads"])


# ---------------------------------------------------------------------------
# lint cross-check: corrupted counts are *detectable*, not just survivable
# ---------------------------------------------------------------------------

#: Count-corrupting profile injectors -> (rules that must fire, rules that
#: may fire).  The linter's side of the graceful-degradation story: the
#: pipeline survives the corruption above, and ``repro lint`` names it.
LINT_DETECTED = {
    "missing_probes": ({"flow-conservation"},
                       {"flow-conservation", "entry-inversion",
                        "loop-monotonicity", "unreachable-block"}),
    "extra_probes": ({"unknown-probe"}, {"unknown-probe"}),
    "counter_overflow": ({"counter-overflow"},
                         {"counter-overflow", "flow-conservation",
                          "entry-inversion", "loop-monotonicity"}),
}


@pytest.mark.parametrize("name", sorted(LINT_DETECTED))
@pytest.mark.parametrize("seed", SEEDS)
def test_count_corruption_flagged_by_lint(workload, context_profile, name,
                                          seed):
    from repro.analysis import lint_profile
    probed = _probed(workload)
    assert lint_profile(context_profile, probed).clean
    faulted, report = apply_profile_faults(
        context_profile, FaultSpec([(name, 0.6)], seed=seed))
    assert report.total() > 0
    must_fire, may_fire = LINT_DETECTED[name]
    fired = lint_profile(faulted, probed).rules_fired()
    assert must_fire <= fired <= may_fire


def test_lint_survives_every_profile_injector(workload, context_profile):
    """Non-count injectors (stale checksums, inline-tree mutations) may or
    may not lint clean, but the linter itself never raises on them."""
    from repro.analysis import lint_profile
    probed = _probed(workload)
    for name in PROFILE_INJECTORS:
        faulted, _ = apply_profile_faults(
            context_profile, FaultSpec([(name, 1.0)], seed=11))
        lint_profile(faulted, probed)  # must not raise
