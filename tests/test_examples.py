"""Smoke tests: the example scripts keep working."""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load(name):
    path = os.path.join(EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_post_inline_accuracy_runs(self, capsys):
        _load("post_inline_accuracy.py").main()
        out = capsys.readouterr().out
        assert "Fig. 3a" in out and "Fig. 3b" in out
        assert "scalarOp" in out

    def test_quickstart_runs(self, capsys):
        _load("quickstart.py").main()
        out = capsys.readouterr().out
        assert "CSSPGO" in out and "cycles" in out

    def test_all_examples_importable(self):
        for name in os.listdir(EXAMPLES):
            if name.endswith(".py"):
                _load(name)  # module-level code must not execute main()
