"""Static profile estimation: blend contract and profile quality.

The two acceptance gates for the estimator:

* **byte-identity differential** — with full sample coverage (every
  executed function sampled), enabling ``static_fill`` changes nothing:
  the annotated module is bit-for-bit identical, because the blend only
  ever touches functions inference could not run on;
* **hybrid beats both baselines** — under partial coverage (a sparse
  sampling period leaves executed functions unsampled), the
  sampled+static hybrid scores a strictly better gt-weighted block
  overlap against exact interpreter ground truth than (a) the drop-cold
  baseline that leaves cold functions count-less and (b) the pure-static
  estimate with no samples at all.
"""

import pytest

from repro.analysis import (COLD_ENTRY_FALLBACK, estimate_entry_counts,
                            fill_static_counts, synthesize_function_samples,
                            top_down_order)
from repro.annotate.sample_loader import annotate_probe_flat
from repro.codegen import build_probe_metadata, link
from repro.correlate import generate_probe_profile
from repro.hw import PMUConfig, execute, make_pmu
from repro.ir import IRInterpreter, ModuleBuilder, verify_module
from repro.opt import OptConfig, optimize_module
from repro.probes import insert_pseudo_probes
from repro.quality import block_overlap_program, module_block_counts
from repro.workloads import WorkloadSpec, build_workload


def _probed(module):
    clone = module.clone()
    insert_pseudo_probes(clone)
    return clone


def _collect_flat(module, requests, period):
    """One build + PMU collection -> probe-keyed flat profile."""
    probed = _probed(module)
    built = probed.clone()
    optimize_module(built, OptConfig(), profile_annotated=False)
    binary = link(built)
    meta = build_probe_metadata(binary, built)
    pmu = make_pmu(PMUConfig(period=period))
    run = execute(binary, [requests], pmu=pmu)
    data = pmu.finish(run.instructions_retired)
    return generate_probe_profile(binary, data, meta)


def _annotated_counts(module):
    """(fn, label) -> count for every annotated block, None-count blocks
    included so the comparison is exact, not just over warm blocks."""
    return {(name, block.label): block.count
            for name, fn in module.functions.items()
            for block in fn.blocks}


def build_dense_module():
    """Every function hot: full sample coverage at a dense period."""
    mb = ModuleBuilder("dense")
    f = mb.function("work_a", ["%n"])
    f.block("entry").mov("%i", 0).mov("%s", 0).br("loop")
    f.block("loop").cmp("slt", "%c", "%i", "%n").condbr("%c", "body", "done")
    f.block("body").add("%s", "%s", "%i").add("%i", "%i", 1).br("loop")
    f.block("done").ret("%s")
    f = mb.function("work_b", ["%n"])
    f.block("entry").call("%r", "work_a", ["%n"]).mul("%r", "%r", 2).ret("%r")
    f = mb.function("main", ["%n"])
    f.block("entry").mov("%i", 0).mov("%acc", 0).br("loop")
    f.block("loop").cmp("slt", "%c", "%i", "%n").condbr("%c", "body", "done")
    f.block("body").call("%x", "work_a", [40]).call("%y", "work_b", [25]) \
        .add("%acc", "%acc", "%x").add("%acc", "%acc", "%y") \
        .add("%i", "%i", 1).br("loop")
    f.block("done").ret("%acc")
    module = mb.build()
    verify_module(module)
    return module


class TestBlendContract:
    def test_full_coverage_byte_identity(self):
        module = build_dense_module()
        profile = _collect_flat(module, 30, period=7)
        # Precondition: the profile really covers every function.
        assert set(profile.functions) >= set(module.functions)

        plain = _probed(module)
        annotate_probe_flat(plain, profile)
        hybrid = _probed(module)
        annotate_probe_flat(hybrid, profile, static_fill=True)

        assert _annotated_counts(plain) == _annotated_counts(hybrid)
        for name in module.functions:
            assert plain.functions[name].entry_count == \
                hybrid.functions[name].entry_count

    def test_static_fill_never_touches_sampled_functions(self):
        spec = WorkloadSpec("blend", seed=9)
        module = build_workload(spec)
        profile = _collect_flat(module, spec.requests, period=101)

        plain = _probed(module)
        annotate_probe_flat(plain, profile)
        hybrid = _probed(module)
        stats = annotate_probe_flat(hybrid, profile, static_fill=True)

        plain_counts = _annotated_counts(plain)
        hybrid_counts = _annotated_counts(hybrid)
        changed = {name for (name, label), count in hybrid_counts.items()
                   if plain_counts[(name, label)] != count}
        # Exactly the functions the sampled path left count-less changed...
        cold = {name for name in stats.no_profile
                if all(plain_counts[(name, b.label)] is None
                       for b in plain.functions[name].blocks)}
        assert changed <= cold
        # ...and they now all carry counts (that is the point of the fill).
        for name in cold:
            for block in hybrid.functions[name].blocks:
                assert block.count is not None

    def test_fill_skips_explicit_skip_list(self):
        module = _probed(build_dense_module())
        filled = fill_static_counts(module, skip=["main"])
        assert "main" not in filled
        assert all(b.count is None for b in module.functions["main"].blocks)
        assert "work_a" in filled and "work_b" in filled


class TestEntryEstimation:
    def test_top_down_order_callers_first(self):
        module = build_dense_module()
        order = top_down_order(module)
        assert order.index("main") < order.index("work_a")
        assert order.index("main") < order.index("work_b")
        assert order.index("work_b") < order.index("work_a")

    def test_known_entries_propagate_to_callees(self):
        module = _probed(build_dense_module())
        estimates = estimate_entry_counts(module, known={"main": 1000.0})
        assert estimates["main"] == 1000.0
        # main's loop body calls both workers ~8x per entry (static trips).
        assert estimates["work_b"] == pytest.approx(7000.0, rel=1e-3)
        # work_a is called from main's body and from work_b's entry.
        assert estimates["work_a"] == pytest.approx(14000.0, rel=1e-3)

    def test_uncalled_function_gets_fallback(self):
        mb = ModuleBuilder("m")
        f = mb.function("orphan", ["%x"])
        f.block("entry").ret("%x")
        f = mb.function("main", ["%x"])
        f.block("entry").ret("%x")
        module = mb.build()
        estimates = estimate_entry_counts(module, known={"main": 50.0})
        assert estimates["orphan"] == COLD_ENTRY_FALLBACK

    def test_synthesized_samples_probe_keyed(self):
        module = _probed(build_dense_module())
        fn = module.functions["work_a"]
        samples = synthesize_function_samples(fn, entry_count=100.0)
        assert samples.name == "work_a"
        assert samples.head == 100.0
        assert samples.checksum == fn.probe_checksum
        assert samples.body and all(isinstance(k, int) for k in samples.body)
        # Loop header probe carries ~8x the entry mass (static trip count 8).
        assert max(samples.body.values()) == pytest.approx(800.0, rel=1e-3)


class TestHybridQuality:
    """The regression gate: hybrid > drop-cold and hybrid > pure-static."""

    @pytest.fixture(scope="class")
    def quality_scores(self):
        requests = 5
        module = build_workload(WorkloadSpec("hybridq", seed=17))
        # Sparse sampling on a short run: several executed functions get
        # no samples at all (the gap the estimator exists to fill).
        profile = _collect_flat(module, requests, period=503)

        gt_result = IRInterpreter(module.clone()).run([requests])
        gt = {}
        for (name, label), count in gt_result.block_counts.items():
            gt.setdefault(name, {})[label] = float(count)

        drop_cold = _probed(module)
        annotate_probe_flat(drop_cold, profile)
        hybrid = _probed(module)
        annotate_probe_flat(hybrid, profile, static_fill=True)
        pure_static = _probed(module)
        fill_static_counts(pure_static)

        scores = {
            name: block_overlap_program(module_block_counts(m), gt,
                                        weigh_by="gt")
            for name, m in (("drop_cold", drop_cold), ("hybrid", hybrid),
                            ("pure_static", pure_static))
        }
        # The partial-coverage premise: the sampler really missed executed
        # functions, otherwise this fixture tests nothing.
        sampled = {n for n, fn in drop_cold.functions.items()
                   if any(b.count is not None for b in fn.blocks)}
        executed = set(gt)
        assert executed - sampled, "period too dense for a coverage gap"
        return scores

    def test_hybrid_beats_drop_cold(self, quality_scores):
        assert quality_scores["hybrid"] > quality_scores["drop_cold"]

    def test_hybrid_beats_pure_static(self, quality_scores):
        assert quality_scores["hybrid"] > quality_scores["pure_static"]

    def test_hybrid_clears_margin(self, quality_scores):
        """Regression gate with teeth: the hybrid's edge over the better
        baseline stays above a pinned margin."""
        best_baseline = max(quality_scores["drop_cold"],
                            quality_scores["pure_static"])
        assert quality_scores["hybrid"] >= best_baseline + 0.01
