"""Unit tests for the static-analysis package: dominator trees, loop
nesting, branch-probability heuristics and block-frequency propagation —
all against hand-computed answers on small builder-made CFGs."""

import math

import pytest

from repro.analysis import (PROB_EQ_TAKEN, PROB_LOOP_STAY, PROB_RETURN_TAKEN,
                            VIRTUAL_EXIT, BlockFrequencyInfo,
                            BranchProbabilityInfo, DominatorTree, LoopInfo,
                            PostDominatorTree)
from repro.ir import (ModuleBuilder, back_edges, immediate_dominators,
                      is_reducible, verify_module)

from .conftest import build_diamond_module, build_loop_module


def build_nested_loop_module():
    """main(n): two nested while loops (outer x inner)."""
    mb = ModuleBuilder("nested")
    f = mb.function("main", ["%n"])
    f.block("entry").mov("%i", 0).mov("%sum", 0).br("outer")
    f.block("outer").cmp("slt", "%c", "%i", "%n").condbr("%c", "ipre", "exit")
    f.block("ipre").mov("%j", 0).br("inner")
    f.block("inner").cmp("slt", "%d", "%j", 3).condbr("%d", "ibody", "ilatch")
    f.block("ibody").add("%sum", "%sum", 1).add("%j", "%j", 1).br("inner")
    f.block("ilatch").add("%i", "%i", 1).br("outer")
    f.block("exit").ret("%sum")
    module = mb.build()
    verify_module(module)
    return module


def build_irreducible_module():
    """Two-entry cycle a <-> b: the classic irreducible shape."""
    mb = ModuleBuilder("irr")
    f = mb.function("main", ["%x"])
    f.block("entry").cmp("slt", "%c", "%x", 5).condbr("%c", "a", "b")
    f.block("a").sub("%x", "%x", 1).cmp("sgt", "%p", "%x", 0).condbr(
        "%p", "b", "exit")
    f.block("b").sub("%x", "%x", 2).cmp("sgt", "%q", "%x", 0).condbr(
        "%q", "a", "exit")
    f.block("exit").ret("%x")
    module = mb.build()
    verify_module(module)
    return module


def build_return_branch_module():
    """entry branches to an early return or a fallthrough chain."""
    mb = ModuleBuilder("retbr")
    f = mb.function("main", ["%x"])
    f.block("entry").cmp("slt", "%c", "%x", 0).condbr("%c", "bail", "cont")
    f.block("bail").ret(0)
    f.block("cont").add("%x", "%x", 1).br("done")
    f.block("done").ret("%x")
    module = mb.build()
    verify_module(module)
    return module


def build_eq_branch_module(pred="eq"):
    """entry guards its branch with an eq/ne compare defined in-block."""
    mb = ModuleBuilder("eqbr")
    f = mb.function("main", ["%x"])
    f.block("entry").cmp(pred, "%c", "%x", 0).condbr("%c", "t", "f")
    f.block("t").mov("%r", 1).br("join")
    f.block("f").mov("%r", 2).br("join")
    f.block("join").add("%r", "%r", 0).br("tail")
    f.block("tail").ret("%r")
    module = mb.build()
    verify_module(module)
    return module


class TestImmediateDominators:
    def test_diamond(self):
        fn = build_diamond_module().function("main")
        idom = immediate_dominators(fn)
        assert idom == {"entry": None, "then": "entry", "else": "entry",
                        "join": "entry"}

    def test_loop(self):
        fn = build_loop_module().function("main")
        idom = immediate_dominators(fn)
        assert idom == {"entry": None, "loop": "entry", "body": "loop",
                        "exit": "loop"}

    def test_nested(self):
        fn = build_nested_loop_module().function("main")
        idom = immediate_dominators(fn)
        assert idom["inner"] == "ipre"
        assert idom["ibody"] == "inner"
        assert idom["ilatch"] == "inner"
        assert idom["exit"] == "outer"

    def test_unreachable_blocks_absent(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", [])
        f.block("entry").ret(0)
        f.block("island").ret(1)
        idom = immediate_dominators(mb.build().function("main"))
        assert "island" not in idom


class TestBackEdgesAndReducibility:
    def test_loop_back_edge(self):
        fn = build_loop_module().function("main")
        assert back_edges(fn) == [("body", "loop")]
        assert is_reducible(fn)

    def test_nested_back_edges(self):
        fn = build_nested_loop_module().function("main")
        assert set(back_edges(fn)) == {("ibody", "inner"),
                                       ("ilatch", "outer")}
        assert is_reducible(fn)

    def test_irreducible(self):
        fn = build_irreducible_module().function("main")
        assert not is_reducible(fn)
        # Neither cycle edge is a back edge: no header dominates the other.
        assert back_edges(fn) == []

    def test_straight_line_reducible(self):
        fn = build_diamond_module().function("main")
        assert is_reducible(fn)
        assert back_edges(fn) == []


class TestDominatorTree:
    def test_structure_and_levels(self):
        fn = build_loop_module().function("main")
        dt = DominatorTree.from_function(fn)
        assert dt.root == "entry"
        assert dt.children["entry"] == ["loop"]
        assert dt.children["loop"] == ["body", "exit"]
        assert dt.depth("entry") == 0
        assert dt.depth("body") == 2

    def test_dominates_queries(self):
        fn = build_nested_loop_module().function("main")
        dt = DominatorTree.from_function(fn)
        assert dt.dominates("outer", "ibody")
        assert dt.strictly_dominates("entry", "exit")
        assert dt.dominates("exit", "exit")
        assert not dt.strictly_dominates("exit", "exit")
        assert not dt.dominates("ibody", "ilatch")
        assert not dt.dominates("unknown", "entry")

    def test_matches_set_based_idoms(self):
        for module in (build_diamond_module(), build_loop_module(),
                       build_nested_loop_module()):
            fn = module.function("main")
            assert DominatorTree.from_function(fn).idom == \
                immediate_dominators(fn)


class TestPostDominatorTree:
    def test_diamond_join_postdominates_all(self):
        fn = build_diamond_module().function("main")
        pdt = PostDominatorTree.from_function(fn)
        assert pdt.root == VIRTUAL_EXIT
        for label in ("entry", "then", "else"):
            assert pdt.post_dominates("join", label)
        assert not pdt.post_dominates("then", "entry")

    def test_loop_exit_postdominates_header(self):
        fn = build_loop_module().function("main")
        pdt = PostDominatorTree.from_function(fn)
        assert pdt.post_dominates("exit", "loop")
        assert pdt.post_dominates("exit", "body")
        assert not pdt.post_dominates("body", "loop")

    def test_multi_exit_rooted_at_virtual_exit(self):
        fn = build_return_branch_module().function("main")
        pdt = PostDominatorTree.from_function(fn)
        # Neither return block post-dominates entry; only the virtual exit.
        assert not pdt.post_dominates("bail", "entry")
        assert not pdt.post_dominates("done", "entry")
        assert pdt.post_dominates(VIRTUAL_EXIT, "entry")


class TestLoopInfo:
    def test_depths(self):
        li = LoopInfo(build_nested_loop_module().function("main"))
        assert li.loop_depth("entry") == 0
        assert li.loop_depth("exit") == 0
        assert li.loop_depth("outer") == 1
        assert li.loop_depth("ilatch") == 1
        assert li.loop_depth("inner") == 2
        assert li.loop_depth("ibody") == 2

    def test_innermost_and_parent(self):
        li = LoopInfo(build_nested_loop_module().function("main"))
        inner = li.innermost_loop("ibody")
        outer = li.innermost_loop("ilatch")
        assert inner.header == "inner"
        assert outer.header == "outer"
        assert li.parent["inner"] is outer
        assert li.parent["outer"] is None
        assert li.innermost_loop("entry") is None

    def test_headers_and_back_edges(self):
        li = LoopInfo(build_nested_loop_module().function("main"))
        assert li.is_loop_header("inner") and li.is_loop_header("outer")
        assert not li.is_loop_header("ibody")
        assert li.is_back_edge("ibody", "inner")
        assert li.is_back_edge("ilatch", "outer")
        assert not li.is_back_edge("entry", "outer")

    def test_reducibility_cached(self):
        assert LoopInfo(build_loop_module().function("main")).reducible
        assert not LoopInfo(
            build_irreducible_module().function("main")).reducible


class TestBranchProbability:
    def test_loop_stay_heuristic(self):
        fn = build_loop_module().function("main")
        bpi = BranchProbabilityInfo(fn)
        assert bpi.probability("loop", "body") == pytest.approx(PROB_LOOP_STAY)
        assert bpi.probability("loop", "exit") == pytest.approx(
            1.0 - PROB_LOOP_STAY)

    def test_loop_entry_preference(self):
        # entry is outside the loop; branching *into* the loop is likely.
        mb = ModuleBuilder("m")
        f = mb.function("main", ["%n"])
        f.block("entry").cmp("slt", "%c", "%n", 0).condbr("%c", "skip", "loop")
        f.block("loop").sub("%n", "%n", 1).cmp("sgt", "%d", "%n", 0).condbr(
            "%d", "loop", "skip")
        f.block("skip").ret("%n")
        fn = mb.build().function("main")
        bpi = BranchProbabilityInfo(fn)
        assert bpi.probability("entry", "loop") == pytest.approx(
            PROB_LOOP_STAY)

    def test_return_heuristic(self):
        fn = build_return_branch_module().function("main")
        bpi = BranchProbabilityInfo(fn)
        assert bpi.probability("entry", "bail") == pytest.approx(
            PROB_RETURN_TAKEN)
        assert bpi.probability("entry", "cont") == pytest.approx(
            1.0 - PROB_RETURN_TAKEN)

    def test_opcode_heuristic_eq_and_ne(self):
        bpi = BranchProbabilityInfo(build_eq_branch_module("eq")
                                    .function("main"))
        assert bpi.probability("entry", "t") == pytest.approx(PROB_EQ_TAKEN)
        bpi = BranchProbabilityInfo(build_eq_branch_module("ne")
                                    .function("main"))
        assert bpi.probability("entry", "t") == pytest.approx(
            1.0 - PROB_EQ_TAKEN)

    def test_uniform_fallback(self):
        fn = build_diamond_module().function("main")
        bpi = BranchProbabilityInfo(fn)
        # slt compare: no heuristic discriminates, uniform split.
        assert bpi.probability("entry", "then") == pytest.approx(0.5)
        assert bpi.probability("entry", "else") == pytest.approx(0.5)

    def test_single_successor_probability_one(self):
        fn = build_diamond_module().function("main")
        bpi = BranchProbabilityInfo(fn)
        assert bpi.probability("then", "join") == 1.0
        assert bpi.successor_probs("join") == {}

    def test_successor_probs_sum_to_one(self):
        for module in (build_loop_module(), build_diamond_module(),
                       build_nested_loop_module(),
                       build_return_branch_module()):
            fn = module.function("main")
            bpi = BranchProbabilityInfo(fn)
            for block in fn.blocks:
                probs = bpi.successor_probs(block.label)
                if probs:
                    assert sum(probs.values()) == pytest.approx(1.0)


class TestBlockFrequency:
    def test_loop_converges_to_closed_form(self):
        fn = build_loop_module().function("main")
        bfi = BlockFrequencyInfo(fn)
        trips = 1.0 / (1.0 - PROB_LOOP_STAY)  # 8.0 at 0.875
        assert bfi.frequency("entry") == pytest.approx(1.0)
        assert bfi.frequency("loop") == pytest.approx(trips, rel=1e-6)
        assert bfi.frequency("body") == pytest.approx(trips - 1.0, rel=1e-6)
        assert bfi.frequency("exit") == pytest.approx(1.0, rel=1e-6)

    def test_nested_loops_multiply(self):
        fn = build_nested_loop_module().function("main")
        bfi = BlockFrequencyInfo(fn)
        trips = 1.0 / (1.0 - PROB_LOOP_STAY)
        assert bfi.frequency("outer") == pytest.approx(trips, rel=1e-5)
        # Inner header runs trips times per outer iteration.
        assert bfi.frequency("inner") == pytest.approx(
            (trips - 1.0) * trips, rel=1e-5)
        assert bfi.frequency("exit") == pytest.approx(1.0, rel=1e-5)

    def test_diamond_splits_and_rejoins(self):
        fn = build_diamond_module().function("main")
        bfi = BlockFrequencyInfo(fn)
        assert bfi.frequency("then") == pytest.approx(0.5)
        assert bfi.frequency("else") == pytest.approx(0.5)
        assert bfi.frequency("join") == pytest.approx(1.0)

    def test_unreachable_block_zero(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", [])
        f.block("entry").ret(0)
        f.block("island").ret(1)
        bfi = BlockFrequencyInfo(mb.build().function("main"))
        assert bfi.frequency("island") == 0.0

    def test_frequencies_finite(self):
        fn = build_irreducible_module().function("main")
        bfi = BlockFrequencyInfo(fn)
        for label, value in bfi.freq.items():
            assert math.isfinite(value) and value >= 0.0
