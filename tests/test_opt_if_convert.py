"""If-conversion: shapes, probe tuning (dangling), counter blocking, bias."""

from repro.ir import ModuleBuilder, PseudoProbe, Select, verify_module
from repro.opt import OptConfig, if_convert_function
from repro.probes import insert_pseudo_probes, instrument_module
from tests.conftest import build_diamond_module, run_ir


def _triangle_module():
    mb = ModuleBuilder("m")
    f = mb.function("main", ["%x"])
    f.block("entry").mov("%r", 0).cmp("slt", "%c", "%x", 5) \
        .condbr("%c", "then", "join")
    f.block("then").add("%r", "%x", 50).br("join")
    f.block("join").ret("%r")
    module = mb.build()
    verify_module(module)
    return module


class TestShapes:
    def test_diamond_converted(self, diamond_module):
        fn = diamond_module.function("main")
        converted = if_convert_function(fn, OptConfig())
        assert converted == 1
        assert len(fn.blocks) == 2  # entry + join
        selects = [i for i in fn.instructions() if isinstance(i, Select)]
        assert selects
        verify_module(diamond_module)
        assert run_ir(diamond_module, [2]).return_value == 6
        assert run_ir(diamond_module, [9]).return_value == 109

    def test_triangle_converted(self):
        module = _triangle_module()
        fn = module.function("main")
        assert if_convert_function(fn, OptConfig()) == 1
        verify_module(module)
        assert run_ir(module, [1]).return_value == 51
        assert run_ir(module, [9]).return_value == 0

    def test_sides_with_calls_not_converted(self, call_module):
        mb = ModuleBuilder("m")
        f = mb.function("callee", ["%v"])
        f.block("entry").ret("%v")
        f = mb.function("main", ["%x"])
        f.block("entry").cmp("slt", "%c", "%x", 5).condbr("%c", "then", "else")
        f.block("then").call("%r", "callee", ["%x"]).br("join")
        f.block("else").mov("%r", 0).br("join")
        f.block("join").ret("%r")
        module = mb.build()
        assert if_convert_function(module.function("main"), OptConfig()) == 0

    def test_size_limit_respected(self, diamond_module):
        config = OptConfig(if_convert_max_instrs=0)
        assert if_convert_function(diamond_module.function("main"), config) == 0


class TestAnchors:
    def test_probes_survive_as_dangling(self, diamond_module):
        insert_pseudo_probes(diamond_module)
        fn = diamond_module.function("main")
        assert if_convert_function(fn, OptConfig()) == 1
        dangling = [i for i in fn.instructions()
                    if isinstance(i, PseudoProbe) and i.dangling]
        assert len(dangling) == 2  # both side-block probes
        verify_module(diamond_module)
        assert run_ir(diamond_module, [2]).return_value == 6

    def test_probes_can_be_configured_to_block(self, diamond_module):
        insert_pseudo_probes(diamond_module)
        config = OptConfig(probes_block_if_convert=True)
        assert if_convert_function(diamond_module.function("main"), config) == 0

    def test_counters_block(self, diamond_module):
        instrument_module(diamond_module)
        assert if_convert_function(diamond_module.function("main"),
                                   OptConfig()) == 0


class TestBias:
    def test_biased_branch_kept(self, diamond_module):
        fn = diamond_module.function("main")
        fn.block("entry").count = 1000.0
        fn.block("then").count = 990.0
        fn.block("else").count = 10.0
        fn.block("join").count = 1000.0
        assert if_convert_function(fn, OptConfig()) == 0

    def test_unbiased_branch_converted(self, diamond_module):
        fn = diamond_module.function("main")
        fn.block("entry").count = 1000.0
        fn.block("then").count = 520.0
        fn.block("else").count = 480.0
        fn.block("join").count = 1000.0
        assert if_convert_function(fn, OptConfig()) == 1

    def test_register_defined_on_one_side_only(self):
        """The not-defining side must keep the pre-branch value."""
        module = _triangle_module()
        if_convert_function(module.function("main"), OptConfig())
        # %r initialized to 0; then-side sets x+50.
        assert run_ir(module, [100]).return_value == 0
