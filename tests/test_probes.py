"""Unit tests for pseudo-probe and instrumentation insertion."""

from repro.ir import Call, InstrProfIncrement, PseudoProbe, verify_module
from repro.probes import (ProbeKind, has_probes, insert_pseudo_probes,
                          instrument_module)
from tests.conftest import build_call_module, build_loop_module, run_ir


class TestProbeInsertion:
    def test_every_block_gets_one_probe(self, loop_module):
        insert_pseudo_probes(loop_module)
        fn = loop_module.function("main")
        for block in fn.blocks:
            probes = block.probes()
            assert len(probes) == 1
            assert block.instrs[0] is probes[0]

    def test_probe_ids_unique_per_function(self, loop_module):
        table = insert_pseudo_probes(loop_module)
        desc = table.get_by_name("main")
        ids = [p.probe_id for p in desc.probes.values()]
        assert len(ids) == len(set(ids))

    def test_call_sites_get_probe_ids(self):
        module = build_call_module()
        table = insert_pseudo_probes(module)
        call = module.function("main").block("entry").calls()[0]
        assert call.probe_id is not None
        assert call.lexical_guid == module.function("main").guid
        desc = table.get_by_name("main").probes[call.probe_id]
        assert desc.kind == ProbeKind.CALL and desc.callee == "helper"

    def test_checksum_persisted(self, loop_module):
        insert_pseudo_probes(loop_module)
        fn = loop_module.function("main")
        assert fn.probe_checksum is not None
        assert loop_module.probe_guid_checksums[fn.guid] == fn.probe_checksum
        assert loop_module.probe_guid_names[fn.guid] == "main"

    def test_probes_do_not_change_semantics(self):
        module = build_call_module()
        before = run_ir(module, [9]).return_value
        insert_pseudo_probes(module)
        verify_module(module)
        assert run_ir(module, [9]).return_value == before

    def test_has_probes(self, loop_module):
        assert not has_probes(loop_module.function("main"))
        insert_pseudo_probes(loop_module)
        assert has_probes(loop_module.function("main"))

    def test_probe_guids_match_function(self, loop_module):
        insert_pseudo_probes(loop_module)
        fn = loop_module.function("main")
        for instr in fn.instructions():
            if isinstance(instr, PseudoProbe):
                assert instr.guid == fn.guid
                assert instr.inline_stack == ()


class TestInstrumentation:
    def test_every_block_gets_counter(self, loop_module):
        imap = instrument_module(loop_module)
        fn = loop_module.function("main")
        assert imap.num_counters["main"] == len(fn.blocks)
        for block in fn.blocks:
            assert isinstance(block.instrs[0], InstrProfIncrement)

    def test_counters_count_exact_block_executions(self):
        module = build_loop_module()
        imap = instrument_module(module)
        result = run_ir(module, [10])
        body_id = next(cid for (fn, cid), label in imap.counter_block.items()
                       if label == "body")
        assert result.instr_counters[("main", body_id)] == 10

    def test_counter_block_mapping(self, loop_module):
        imap = instrument_module(loop_module)
        labels = {imap.block_for("main", i)
                  for i in range(imap.num_counters["main"])}
        assert labels == {b.label for b in loop_module.function("main").blocks}
