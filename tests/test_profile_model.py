"""Profile containers: contexts, tries, trimming, summary, serialization."""

import pytest

from repro.profile import (ATTR_SHOULD_INLINE, ContextProfile, FlatProfile,
                           FunctionSamples, base_context, dump_context_profile,
                           dump_flat_profile, extend_context, format_context,
                           is_prefix, load_context_profile, load_flat_profile,
                           make_context, parse_context, profile_size_bytes,
                           profile_stats, trim_cold_contexts)
from repro.profile.summary import ProfileSummary


class TestContextTrie:
    def _sample_profile(self):
        profile = ContextProfile()
        for ctx, total in [
            (make_context(("main", None)), 10.0),
            (make_context(("main", 3), ("svc", None)), 100.0),
            (make_context(("main", 3), ("svc", 8), ("mid", None)), 1000.0),
            (make_context(("main", 3), ("svc", 9), ("mid", None)), 50.0),
        ]:
            samples = profile.get_or_create(ctx)
            samples.add_body(1, total)
            samples.finalize()
        return profile

    def test_children_direct(self):
        profile = self._sample_profile()
        children = profile.children_of(base_context("main"))
        assert children == [make_context(("main", 3), ("svc", None))]

    def test_children_of_mid_level(self):
        profile = self._sample_profile()
        children = profile.children_of(make_context(("main", 3), ("svc", None)))
        assert len(children) == 2

    def test_implied_children_synthesized(self):
        profile = ContextProfile()
        deep = make_context(("main", 3), ("svc", 8), ("mid", None))
        profile.get_or_create(deep).add_body(1, 5.0)
        # No record for [main:3 @ svc], but it must appear as implied child.
        children = profile.children_of(base_context("main"))
        assert children == [make_context(("main", 3), ("svc", None))]

    def test_subtree_total(self):
        profile = self._sample_profile()
        assert profile.subtree_total(
            make_context(("main", 3), ("svc", None))) == 1150.0

    def test_promote_subtree_reroots(self):
        profile = self._sample_profile()
        profile.promote_subtree(make_context(("main", 3), ("svc", None)))
        assert base_context("svc") in profile.contexts
        assert make_context(("svc", 8), ("mid", None)) in profile.contexts
        assert make_context(("main", 3), ("svc", None)) not in profile.contexts

    def test_flatten_merges_by_leaf(self):
        profile = self._sample_profile()
        flat = profile.flatten()
        assert flat.get("mid").total == 1050.0
        assert flat.get("svc").total == 100.0

    def test_contexts_of(self):
        profile = self._sample_profile()
        assert len(profile.contexts_of("mid")) == 2


class TestTrimming:
    def test_cold_context_merged_into_base(self):
        profile = ContextProfile()
        hot = make_context(("main", 1), ("f", None))
        cold = make_context(("main", 2), ("f", None))
        profile.get_or_create(hot).add_body(1, 10_000.0)
        profile.get_or_create(cold).add_body(1, 3.0)
        profile.finalize()
        kept, merged = trim_cold_contexts(profile, hot_fraction=0.01)
        assert merged == 1
        assert profile.base("f").total == 3.0
        assert hot in profile.contexts

    def test_thin_wrapper_on_hot_path_kept(self):
        profile = ContextProfile()
        wrapper = make_context(("main", 1), ("wrap", None))
        deep = make_context(("main", 1), ("wrap", 2), ("worker", None))
        profile.get_or_create(wrapper).add_body(1, 2.0)   # thin
        profile.get_or_create(deep).add_body(1, 50_000.0)  # hot below it
        profile.finalize()
        trim_cold_contexts(profile, hot_fraction=0.01)
        assert wrapper in profile.contexts  # subtree is hot: keep the node

    def test_total_samples_preserved(self):
        profile = ContextProfile()
        for i in range(6):
            ctx = make_context(("main", i), ("f", None))
            profile.get_or_create(ctx).add_body(1, float(10 ** i))
        profile.finalize()
        before = profile.total_samples()
        trim_cold_contexts(profile, hot_fraction=0.01)
        assert profile.total_samples() == pytest.approx(before)


class TestSummary:
    def test_hot_cold_thresholds(self):
        counts = [1000.0] * 9 + [1.0] * 10
        summary = ProfileSummary.from_counts(counts, hot_coverage=0.99,
                                             cold_coverage=0.9999)
        assert summary.is_hot(1000.0)
        assert not summary.is_hot(1.0)

    def test_empty_counts(self):
        summary = ProfileSummary.from_counts([])
        assert not summary.is_hot(100.0)
        assert summary.total == 0.0

    def test_from_module(self, loop_module):
        fn = loop_module.function("main")
        for block, count in zip(fn.blocks, [1.0, 101.0, 100.0, 1.0]):
            block.count = count
        summary = ProfileSummary.from_module(loop_module)
        assert summary.is_hot(101.0)


class TestSerialization:
    def test_flat_round_trip(self):
        profile = FlatProfile(FlatProfile.KIND_PROBE)
        samples = profile.get_or_create("foo")
        samples.head = 12.0
        samples.add_body(1, 100.0)
        samples.add_body(2, 50.0)
        samples.add_call(3, "bar", 49.0)
        samples.checksum = 987654321
        samples.dangling.add(4)
        samples.attributes.add(ATTR_SHOULD_INLINE)
        profile.finalize()
        loaded = load_flat_profile(dump_flat_profile(profile))
        got = loaded.get("foo")
        assert loaded.kind == FlatProfile.KIND_PROBE
        assert got.head == 12.0 and got.total == 150.0
        assert got.body == {1: 100.0, 2: 50.0}
        assert got.calls == {3: {"bar": 49.0}}
        assert got.checksum == 987654321
        assert got.dangling == {4}
        assert ATTR_SHOULD_INLINE in got.attributes

    def test_dwarf_keys_round_trip(self):
        profile = FlatProfile(FlatProfile.KIND_DWARF)
        samples = profile.get_or_create("foo")
        samples.add_body((4, 1), 9.0)
        profile.finalize()
        loaded = load_flat_profile(dump_flat_profile(profile))
        assert loaded.get("foo").body == {(4, 1): 9.0}

    def test_context_round_trip(self):
        profile = ContextProfile()
        ctx = parse_context("[main:3 @ svc:8 @ mid]")
        samples = profile.get_or_create(ctx)
        samples.add_body(1, 44.0)
        samples.attributes.add(ATTR_SHOULD_INLINE)
        profile.finalize()
        loaded = load_context_profile(dump_context_profile(profile))
        assert ctx in loaded.contexts
        assert loaded.contexts[ctx].body == {1: 44.0}
        assert ATTR_SHOULD_INLINE in loaded.contexts[ctx].attributes

    def test_size_grows_with_contexts(self):
        flat = FlatProfile(FlatProfile.KIND_PROBE)
        flat.get_or_create("f").add_body(1, 5.0)
        flat.finalize()
        ctx_profile = ContextProfile()
        for i in range(10):
            ctx = make_context(("main", i), ("f", None))
            ctx_profile.get_or_create(ctx).add_body(1, 5.0)
        ctx_profile.finalize()
        assert (profile_size_bytes(ctx_profile)
                > profile_size_bytes(flat))

    def test_stats_fields(self):
        flat = FlatProfile(FlatProfile.KIND_PROBE)
        flat.get_or_create("f").add_body(1, 5.0)
        flat.finalize()
        stats = profile_stats(flat)
        assert stats["records"] == 1.0 and stats["total_samples"] == 5.0
