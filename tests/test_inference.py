"""Profile inference: flow consistency, unknown filling, noise smoothing."""

import pytest

from repro.inference import infer_function_counts, infer_module_counts
from tests.conftest import build_diamond_module, build_loop_module


class TestFlowConsistency:
    def test_exact_counts_preserved(self):
        module = build_loop_module()
        fn = module.function("main")
        for label, count in [("entry", 10.0), ("loop", 510.0),
                             ("body", 500.0), ("exit", 10.0)]:
            fn.block(label).count = count
        infer_function_counts(fn, head_count=10.0)
        assert fn.block("loop").count == pytest.approx(510.0, rel=0.05)
        assert fn.block("body").count == pytest.approx(500.0, rel=0.05)

    def test_unknown_blocks_filled(self):
        module = build_loop_module()
        fn = module.function("main")
        fn.block("entry").count = 10.0
        fn.block("loop").count = 510.0
        fn.block("body").count = None   # unknown (e.g. dangling probe)
        fn.block("exit").count = None
        infer_function_counts(fn, head_count=10.0)
        assert fn.block("body").count == pytest.approx(500.0, rel=0.1)
        assert fn.block("exit").count == pytest.approx(10.0, rel=0.2)

    def test_diamond_flow_balances(self):
        module = build_diamond_module()
        fn = module.function("main")
        fn.block("entry").count = 100.0
        fn.block("then").count = 80.0
        fn.block("else").count = 30.0   # inconsistent: 80 + 30 != 100
        fn.block("join").count = 100.0
        infer_function_counts(fn, head_count=100.0)
        total_sides = fn.block("then").count + fn.block("else").count
        assert total_sides == pytest.approx(fn.block("entry").count, rel=0.05)

    def test_counts_never_negative(self):
        module = build_diamond_module()
        fn = module.function("main")
        fn.block("entry").count = 10.0
        fn.block("then").count = 50.0  # wildly inconsistent
        fn.block("else").count = 0.0
        fn.block("join").count = 5.0
        infer_function_counts(fn, head_count=10.0)
        assert all(b.count >= 0.0 for b in fn.blocks)

    def test_function_without_observations_untouched(self):
        module = build_loop_module()
        fn = module.function("main")
        assert not infer_function_counts(fn)
        assert all(b.count is None for b in fn.blocks)

    def test_module_level_runs_annotated_only(self, call_module):
        call_module.function("main").entry.count = 5.0
        ran = infer_module_counts(call_module, {"main": 5.0})
        assert ran == 1

    def test_entry_count_set(self):
        module = build_loop_module()
        fn = module.function("main")
        fn.block("loop").count = 100.0
        infer_function_counts(fn, head_count=7.0)
        assert fn.entry_count == 7.0
