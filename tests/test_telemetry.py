"""Telemetry subsystem: counters, spans, remarks, exporters, and the
zero-overhead / zero-behaviour-change guarantees of the disabled path."""

import json

from repro import PGODriverConfig, PGOVariant, run_pgo, telemetry
from repro.hw import PMUConfig
from repro.opt import OptConfig, optimize_module
from repro.telemetry import (Remark, TelemetrySession, chrome_trace,
                             remarks_to_json, render_stats_report,
                             write_chrome_trace, write_remarks)
from repro.telemetry.core import _NULL_SPAN
from tests.conftest import build_call_module


def _driver_config(iterations=1):
    return PGODriverConfig(pmu=PMUConfig(period=31),
                           profile_iterations=iterations)


class TestDisabledPath:
    def test_disabled_calls_are_noops(self):
        assert not telemetry.enabled()
        assert telemetry.current() is None
        telemetry.count("x", "y")           # must not raise
        telemetry.remark("p", "N", "f", "m")
        with telemetry.span("s", "stage") as span:
            span.set(a=1)

    def test_disabled_span_is_shared_singleton(self):
        # No allocation on the disabled path: same object every call.
        assert telemetry.span("a", "pass") is telemetry.span("b", "stage")
        assert telemetry.span("a") is _NULL_SPAN

    def test_enable_disable_round_trip(self):
        session = telemetry.enable()
        assert telemetry.enabled()
        assert telemetry.current() is session
        telemetry.disable()
        assert not telemetry.enabled()

    def test_enable_installs_given_session(self):
        mine = TelemetrySession()
        assert telemetry.enable(mine) is mine
        telemetry.count("c", "n", 3)
        assert mine.counter("c", "n") == 3


class TestCollection:
    def test_counters_accumulate(self):
        session = telemetry.enable()
        telemetry.count("correlate", "drops")
        telemetry.count("correlate", "drops", 4)
        assert session.counter("correlate", "drops") == 5
        assert session.counter("correlate", "missing") == 0

    def test_spans_record_nesting_and_args(self):
        session = telemetry.enable()
        with telemetry.span("outer", "stage", key="v"):
            with telemetry.span("inner", "pass"):
                pass
        inner, outer = session.spans
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert outer.args == {"key": "v"}
        assert inner.duration_us >= 0
        assert outer.duration_us >= inner.duration_us

    def test_span_set_after_exit_lands_in_record(self):
        # PassManager attaches IR deltas after the pass span closed.
        session = telemetry.enable()
        with telemetry.span("p", "pass") as span:
            pass
        span.set(instrs_delta=-3)
        assert session.spans[0].args["instrs_delta"] == -3

    def test_remark_converts_debug_loc(self):
        class Loc:
            line = 7
            discriminator = 2

        session = telemetry.enable()
        telemetry.remark("inline", "Inlined", "main", "msg", loc=Loc(),
                         callee="helper")
        record = session.remarks[0].to_dict()
        assert record["DebugLoc"] == {"Function": "main", "Line": 7,
                                      "Discriminator": 2}
        assert record["Args"]["callee"] == "helper"

    def test_remark_without_loc(self):
        session = telemetry.enable()
        telemetry.remark("dce", "Removed", "f", "msg")
        assert "DebugLoc" not in session.remarks[0].to_dict()


class TestExporters:
    def _populated_session(self):
        session = telemetry.enable()
        telemetry.count("pass.inline", "callsites_inlined", 2)
        with telemetry.span("variant:csspgo", "pgo"):
            with telemetry.span("iteration:0", "stage"):
                with telemetry.span("inline", "pass"):
                    pass
        telemetry.remark("inline", "Inlined", "main", "msg",
                         loc={"function": "main", "line": 3,
                              "discriminator": 0})
        telemetry.disable()
        return session

    def test_stats_report_contents(self):
        report = render_stats_report(self._populated_session())
        assert "Statistics Collected" in report
        assert "pass.inline" in report and "callsites_inlined" in report
        assert "-time-passes analogue" in report
        assert "Pipeline stage timing" in report
        assert "Optimization remarks: 1 (inline 1)" in report

    def test_chrome_trace_shape(self):
        trace = chrome_trace(self._populated_session())
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "variant:csspgo", "iteration:0", "inline"]  # sorted by start
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid"}

    def test_write_round_trips_through_json(self, tmp_path):
        session = self._populated_session()
        trace_path = tmp_path / "trace.json"
        remarks_path = tmp_path / "remarks.json"
        write_chrome_trace(session, str(trace_path))
        write_remarks(session, str(remarks_path))
        trace = json.loads(trace_path.read_text())
        assert len(trace["traceEvents"]) == 4
        remarks = json.loads(remarks_path.read_text())
        assert remarks == remarks_to_json(session)
        assert remarks[0]["Pass"] == "inline"

    def test_remark_repr_and_session_repr(self):
        remark = Remark("p", "N", "f", "m")
        assert "p:N" in repr(remark)
        assert "counters=0" in repr(TelemetrySession())


class TestPipelineCounters:
    def test_optimizer_emits_pass_counters_spans_remarks(self):
        session = telemetry.enable()
        optimize_module(build_call_module(), OptConfig(),
                        profile_annotated=False)
        telemetry.disable()
        assert session.counter("pass.inline", "callsites_inlined") >= 1
        assert session.counter("pass.simplify-cfg", "runs") == 2
        pass_spans = [s for s in session.spans if s.category == "pass"]
        assert {"inline", "dce", "simplify-cfg"} <= {s.name
                                                     for s in pass_spans}
        # Every pass span carries the IR shape delta args.
        assert all("instrs_delta" in s.args for s in pass_spans)
        assert any(r.name == "Inlined" for r in session.remarks)


class TestDriverTelemetry:
    def test_pgo_cycle_spans_nest_per_iteration(self, small_workload):
        session = telemetry.enable()
        run_pgo(small_workload, PGOVariant.CSSPGO_FULL, [60], [60],
                _driver_config(iterations=2))
        telemetry.disable()
        names = [s.name for s in session.spans]
        assert "variant:csspgo" in names
        assert "iteration:0" in names and "iteration:1" in names
        for stage in ("profiling-build", "collect", "profile-generation",
                      "trim", "preinline", "optimizing-build", "evaluate"):
            assert stage in names, stage
        # iteration spans nest inside the variant span.
        variant = next(s for s in session.spans if s.name == "variant:csspgo")
        iteration = next(s for s in session.spans if s.name == "iteration:1")
        assert iteration.depth == variant.depth + 1
        assert session.counter("correlate", "samples_unwound") > 0
        assert session.counter("hw.pmu", "samples_taken") > 0

    def test_enabled_telemetry_does_not_change_results(self, small_workload):
        """Observe-only guarantee: identical cycle counts and binaries with
        telemetry on and off."""
        plain = run_pgo(small_workload, PGOVariant.CSSPGO_FULL, [60], [60],
                        _driver_config())
        telemetry.enable()
        observed = run_pgo(small_workload, PGOVariant.CSSPGO_FULL, [60], [60],
                           _driver_config())
        telemetry.disable()
        assert observed.eval.cycles == plain.eval.cycles
        assert observed.eval.instructions == plain.eval.instructions
        assert ([i.kind for i in observed.final.binary.instrs]
                == [i.kind for i in plain.final.binary.instrs])
        assert observed.profile_stats == plain.profile_stats
