"""Hardware simulation: executor fidelity, PMU sampling, LBR, skid."""

import pytest

from repro.codegen import link
from repro.hw import (LBRStack, MachineExecutionLimit, MachineExecutor,
                      PMUConfig, execute, make_pmu)
from repro.ir import ModuleBuilder, Ret, verify_module
from repro.opt import OptConfig, optimize_module
from repro.probes import instrument_module
from repro.workloads import WorkloadSpec, build_workload
from tests.conftest import (build_call_module, build_diamond_module,
                            build_loop_module, run_ir)


class TestExecutorFidelity:
    def test_matches_ir_interpreter(self, loop_module):
        expected = run_ir(loop_module, [25]).return_value
        binary = link(loop_module)
        assert execute(binary, [25]).return_value == expected

    def test_matches_after_optimization(self):
        for seed in [0, 2, 4]:
            module = build_workload(WorkloadSpec("t", seed=seed, requests=40))
            expected = run_ir(module, [60]).return_value
            optimized = module.clone()
            optimize_module(optimized, OptConfig(), profile_annotated=False)
            verify_module(optimized)
            binary = link(optimized)
            assert execute(binary, [60]).return_value == expected, f"seed {seed}"

    def test_counters_match_ir(self):
        module = build_loop_module()
        instrument_module(module)
        ir_counts = run_ir(module, [12]).instr_counters
        binary = link(module)
        machine = execute(binary, [12])
        assert dict(machine.instr_counters) == dict(ir_counts)

    def test_instruction_limit(self):
        mb = ModuleBuilder("inf")
        f = mb.function("main", [])
        f.block("entry").br("entry")
        binary = link(mb.build())
        with pytest.raises(MachineExecutionLimit):
            execute(binary, [], max_instructions=500)


class TestStacks:
    def _wrapper_module(self):
        mb = ModuleBuilder("m")
        f = mb.function("target", ["%v"])
        f.block("entry").add("%r", "%v", 1).ret("%r")
        f = mb.function("wrapper", ["%v"])
        f.block("entry").call("%r", "target", ["%v"]).ret("%r")  # tail call
        f = mb.function("main", ["%v"])
        f.block("entry").call("%r", "wrapper", ["%v"]).add("%r", "%r", 1).ret("%r")
        module = mb.build()
        module.function("wrapper").noinline = True
        verify_module(module)
        return module

    def test_tailcall_removes_wrapper_frame(self):
        module = self._wrapper_module()
        binary = link(module)
        pmu = make_pmu(PMUConfig(period=1))  # sample every instruction
        result = execute(binary, [5], pmu=pmu)
        assert result.return_value == 7
        data = pmu.finish(result.instructions_retired)
        # Find a sample taken inside `target`: its stack must skip `wrapper`.
        inside = [s for s in data.samples
                  if binary.function_at(s.stack[0]) == "target"
                  and len(s.stack) > 1]
        assert inside
        for sample in inside:
            frames = [binary.function_at(a) for a in sample.stack]
            assert "wrapper" not in frames  # TCE removed the frame

    def test_call_stack_depth(self):
        module = self._wrapper_module()
        binary = link(module, config=None)
        # Without TCE the wrapper frame is present.
        from repro.codegen import LowerConfig
        binary = link(module, config=LowerConfig(enable_tce=False))
        pmu = make_pmu(PMUConfig(period=1))
        result = execute(binary, [5], pmu=pmu)
        data = pmu.finish(result.instructions_retired)
        inside = [s for s in data.samples
                  if binary.function_at(s.stack[0]) == "target"]
        assert any("wrapper" in [binary.function_at(a) for a in s.stack]
                   for s in inside)


class TestPMU:
    def test_sampling_rate(self, loop_module):
        binary = link(loop_module)
        pmu = make_pmu(PMUConfig(period=13))
        result = execute(binary, [500], pmu=pmu)
        data = pmu.finish(result.instructions_retired)
        expected = result.instructions_retired / 13
        assert 0.5 * expected <= len(data) <= 1.2 * expected

    def test_lbr_depth_respected(self, loop_module):
        binary = link(loop_module)
        pmu = make_pmu(PMUConfig(period=7, lbr_depth=8))
        result = execute(binary, [200], pmu=pmu)
        data = pmu.finish(result.instructions_retired)
        assert all(len(s.lbr) <= 8 for s in data.samples)
        assert any(len(s.lbr) == 8 for s in data.samples)

    def test_lbr_records_taken_branches_only(self, diamond_module):
        binary = link(diamond_module)
        pmu = make_pmu(PMUConfig(period=1))
        execute(binary, [2], pmu=pmu)
        for sample in pmu.data.samples:
            for src, _tgt in sample.lbr:
                assert binary.instr_at(src).kind in ("br", "jmp", "call",
                                                     "tailcall", "ret")

    def test_pebs_stack_aligned_with_lbr(self, call_module):
        binary = link(call_module)
        pmu = make_pmu(PMUConfig(period=1, pebs=True))
        execute(binary, [3], pmu=pmu)
        for sample in pmu.data.samples:
            if not sample.lbr:
                continue
            _src, tgt = sample.lbr[-1]
            # The leaf stack frame's function contains the last LBR target.
            assert (binary.function_at(sample.stack[0])
                    == binary.function_at(tgt))

    def test_skid_desynchronizes_without_pebs(self, call_module):
        binary = link(call_module)
        pmu = make_pmu(PMUConfig(period=1, pebs=False))
        execute(binary, [3], pmu=pmu)
        mismatched = 0
        for sample in pmu.data.samples:
            if not sample.lbr:
                continue
            _src, tgt = sample.lbr[-1]
            if (binary.function_at(sample.stack[0])
                    != binary.function_at(tgt)):
                mismatched += 1
        assert mismatched > 0  # the one-frame lag the paper describes


class TestLBRStack:
    def test_ring_keeps_newest(self):
        ring = LBRStack(depth=3)
        for i in range(5):
            ring.record(i, i + 100)
        snap = ring.snapshot()
        assert snap == [(2, 102), (3, 103), (4, 104)]
