"""Driver details: continuous profiling iterations, measurement wrappers."""

import pytest

from repro import (PGODriverConfig, PGOVariant, build, measure_run, run_pgo,
                   speedup_over)
from repro.hw import PMUConfig
from repro.workloads import WorkloadSpec, build_vectorops, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(WorkloadSpec("drv", seed=3, n_leaf=4, n_dispatch=2,
                                       n_mid=3, n_wrapper=1, n_workers=2,
                                       n_services=2, requests=60))


class TestIterations:
    def test_single_iteration_supported(self, workload):
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=1)
        result = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], config)
        assert result.eval.cycles > 0

    def test_second_iteration_profiles_pgo_binary(self, workload):
        """With iterations=2, the last profiling build consumed a profile
        (its annotation stats exist); with 1 it did not."""
        one = PGODriverConfig(pmu=PMUConfig(period=31), profile_iterations=1)
        two = PGODriverConfig(pmu=PMUConfig(period=31), profile_iterations=2)
        r1 = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], one)
        r2 = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], two)
        assert r1.profiling_build.annotation is None
        assert r2.profiling_build.annotation is not None

    def test_instr_ignores_iterations(self, workload):
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=3)
        result = run_pgo(workload, PGOVariant.INSTR, [60], [60], config)
        assert result.eval.cycles > 0
        assert len(result.profiling_runs) == 1  # one instrumented run

    def test_every_profiling_iteration_is_recorded(self, workload):
        """Per-iteration measurements and sample counts are all kept;
        the old scalar fields stay as last-iteration aliases."""
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=3)
        result = run_pgo(workload, PGOVariant.CSSPGO_FULL, [60], [60], config)
        assert len(result.profiling_runs) == 3
        assert result.profiling_run is result.profiling_runs[-1]
        samples = result.extras["samples_per_iteration"]
        assert len(samples) == 3 and all(n > 0 for n in samples)
        assert result.extras["samples"] == samples[-1]
        inference = result.extras["frame_inference_per_iteration"]
        assert len(inference) == 3
        assert result.extras["frame_inference"] == inference[-1]

    def test_iteration_measurements_differ_across_builds(self, workload):
        """Iteration 0 profiles the plain build, iteration 1 the optimized
        one — their instruction counts should not be identical."""
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=2)
        result = run_pgo(workload, PGOVariant.CSSPGO_FULL, [60], [60], config)
        first, second = result.profiling_runs
        assert first.instructions != second.instructions


class TestMeasurement:
    def test_measure_run_consistency(self, workload):
        artifacts = build(workload, PGOVariant.NONE)
        a = measure_run(artifacts, [60])
        b = measure_run(artifacts, [60])
        assert a.cycles == b.cycles  # deterministic simulator
        assert a.instructions == b.instructions

    def test_speedup_sign_convention(self, workload):
        artifacts = build(workload, PGOVariant.NONE)

        class Fake:
            def __init__(self, cycles):
                self.eval = type("E", (), {"cycles": cycles})()

        assert speedup_over(Fake(110.0), Fake(100.0)) == pytest.approx(0.10)
        assert speedup_over(Fake(100.0), Fake(110.0)) < 0


class TestVectorOpsPipeline:
    def test_csspgo_full_cycle_on_fig4(self):
        module = build_vectorops(vector_len=16)
        config = PGODriverConfig(pmu=PMUConfig(period=17))
        result = run_pgo(module, PGOVariant.CSSPGO_FULL, [30], [30], config)
        assert result.eval.cycles > 0
        # The context profile must contain scalarOp split by vector head.
        contexts = [c for c in result.profile.contexts
                    if c[-1][0] in ("scalarOp", "scalarAdd", "scalarSub")
                    or any(f[0] in ("addVectorHead", "subVectorHead")
                           for f in c)]
        assert contexts
