"""Driver details: continuous profiling iterations, measurement wrappers."""

import pytest

from repro import (PGODriverConfig, PGOVariant, build, measure_run, run_pgo,
                   speedup_over)
from repro.hw import PMUConfig
from repro.workloads import WorkloadSpec, build_vectorops, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(WorkloadSpec("drv", seed=3, n_leaf=4, n_dispatch=2,
                                       n_mid=3, n_wrapper=1, n_workers=2,
                                       n_services=2, requests=60))


class TestIterations:
    def test_single_iteration_supported(self, workload):
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=1)
        result = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], config)
        assert result.eval.cycles > 0

    def test_second_iteration_profiles_pgo_binary(self, workload):
        """With iterations=2, the last profiling build consumed a profile
        (its annotation stats exist); with 1 it did not."""
        one = PGODriverConfig(pmu=PMUConfig(period=31), profile_iterations=1)
        two = PGODriverConfig(pmu=PMUConfig(period=31), profile_iterations=2)
        r1 = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], one)
        r2 = run_pgo(workload, PGOVariant.AUTOFDO, [60], [60], two)
        assert r1.profiling_build.annotation is None
        assert r2.profiling_build.annotation is not None

    def test_instr_ignores_iterations(self, workload):
        config = PGODriverConfig(pmu=PMUConfig(period=31),
                                 profile_iterations=3)
        result = run_pgo(workload, PGOVariant.INSTR, [60], [60], config)
        assert result.eval.cycles > 0


class TestMeasurement:
    def test_measure_run_consistency(self, workload):
        artifacts = build(workload, PGOVariant.NONE)
        a = measure_run(artifacts, [60])
        b = measure_run(artifacts, [60])
        assert a.cycles == b.cycles  # deterministic simulator
        assert a.instructions == b.instructions

    def test_speedup_sign_convention(self, workload):
        artifacts = build(workload, PGOVariant.NONE)

        class Fake:
            def __init__(self, cycles):
                self.eval = type("E", (), {"cycles": cycles})()

        assert speedup_over(Fake(110.0), Fake(100.0)) == pytest.approx(0.10)
        assert speedup_over(Fake(100.0), Fake(110.0)) < 0


class TestVectorOpsPipeline:
    def test_csspgo_full_cycle_on_fig4(self):
        module = build_vectorops(vector_len=16)
        config = PGODriverConfig(pmu=PMUConfig(period=17))
        result = run_pgo(module, PGOVariant.CSSPGO_FULL, [30], [30], config)
        assert result.eval.cycles > 0
        # The context profile must contain scalarOp split by vector head.
        contexts = [c for c in result.profile.contexts
                    if c[-1][0] in ("scalarOp", "scalarAdd", "scalarSub")
                    or any(f[0] in ("addVectorHead", "subVectorHead")
                           for f in c)]
        assert contexts
