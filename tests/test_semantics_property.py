"""Property-based tests (hypothesis) on arithmetic semantics and profile
containers — the invariants everything else is built on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.semantics import eval_binop, eval_cmp, to_i64, wrap_index
from repro.profile import (FunctionSamples, base_context, extend_context,
                           format_context, is_prefix, leaf_function,
                           parent_context, parse_context)

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
anyint = st.integers(min_value=-(2**70), max_value=2**70)


class TestArithmeticProperties:
    @given(anyint)
    def test_to_i64_is_idempotent(self, value):
        assert to_i64(to_i64(value)) == to_i64(value)

    @given(anyint)
    def test_to_i64_range(self, value):
        wrapped = to_i64(value)
        assert -(2**63) <= wrapped < 2**63

    @given(i64, i64, st.sampled_from(["add", "sub", "mul", "and", "or",
                                      "xor", "shl", "ashr", "sdiv", "srem"]))
    def test_binop_closed_over_i64(self, a, b, op):
        result = eval_binop(op, a, b)
        assert -(2**63) <= result < 2**63

    @given(i64, i64)
    def test_div_rem_identity(self, a, b):
        if b != 0:
            q = eval_binop("sdiv", a, b)
            r = eval_binop("srem", a, b)
            assert to_i64(q * b + r) == to_i64(a)

    @given(i64, i64)
    def test_add_sub_inverse(self, a, b):
        assert eval_binop("sub", eval_binop("add", a, b), b) == to_i64(a)

    @given(i64, i64)
    def test_cmp_trichotomy(self, a, b):
        assert (eval_cmp("slt", a, b) + eval_cmp("eq", a, b)
                + eval_cmp("sgt", a, b)) == 1

    @given(st.integers(), st.integers(min_value=1, max_value=10**6))
    def test_wrap_index_in_bounds(self, index, size):
        assert 0 <= wrap_index(index, size) < size


names = st.sampled_from(["main", "svc", "mid", "leaf", "disp"])
sites = st.integers(min_value=1, max_value=40)


@st.composite
def contexts(draw, max_depth=4):
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    frames = []
    for _ in range(depth - 1):
        frames.append((draw(names), draw(sites)))
    frames.append((draw(names), None))
    return tuple(frames)


class TestContextProperties:
    @given(contexts())
    def test_format_parse_round_trip(self, ctx):
        assert parse_context(format_context(ctx)) == ctx

    @given(contexts())
    def test_context_is_prefix_of_itself(self, ctx):
        assert is_prefix(ctx, ctx)

    @given(contexts(), sites, names)
    def test_extend_then_parent_round_trip(self, ctx, site, callee):
        child = extend_context(ctx, site, callee)
        assert leaf_function(child) == callee
        assert parent_context(child) == ctx
        assert is_prefix(ctx, child)

    @given(contexts())
    def test_base_context_is_depth_one(self, ctx):
        base = base_context(leaf_function(ctx))
        assert len(base) == 1 and base[0][1] is None


counts = st.dictionaries(st.integers(min_value=1, max_value=30),
                         st.floats(min_value=0, max_value=1e7,
                                   allow_nan=False), max_size=8)


class TestFunctionSamplesProperties:
    @given(counts, counts)
    @settings(max_examples=50)
    def test_merge_totals_add(self, body_a, body_b):
        a = FunctionSamples("f")
        b = FunctionSamples("f")
        a.body.update(body_a)
        b.body.update(body_b)
        a.finalize()
        b.finalize()
        total_before = a.total + b.total
        a.merge(b)
        assert abs(a.total - total_before) < 1e-6 * max(1.0, total_before)

    @given(counts)
    def test_clone_is_equal_but_independent(self, body):
        samples = FunctionSamples("f")
        samples.body.update(body)
        samples.finalize()
        clone = samples.clone()
        clone.add_body(999, 1.0)
        assert 999 not in samples.body

    @given(counts, st.floats(min_value=0.1, max_value=4.0, allow_nan=False))
    def test_merge_scaling(self, body, scale):
        a = FunctionSamples("f")
        b = FunctionSamples("f")
        b.body.update(body)
        b.finalize()
        a.merge(b, scale=scale)
        assert abs(a.total - b.total * scale) < 1e-6 * max(1.0, b.total * scale)
