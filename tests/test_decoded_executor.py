"""Differential tests: pre-decoded threaded-code engine vs legacy executor.

The decoded engine (repro.hw.decoded) must be observationally identical to
:class:`MachineExecutor` — not just same return values, but bit-identical
PMU sample streams (LBR contents, stack snapshots, sample IPs) and exactly
equal cost-model cycle totals, across observer configurations.  These tests
are the contract that lets the driver default to the decoded engine.
"""

from __future__ import annotations

import pickle

import pytest

from repro.codegen import link
from repro.hw import (MachineExecutionLimit, MachineExecutor, PMU, PMUConfig,
                      execute, make_pmu, run_decoded)
from repro.ir import ModuleBuilder, verify_module
from repro.opt import OptConfig, optimize_module
from repro.perfmodel import CostModel
from repro.probes import insert_pseudo_probes, instrument_module
from repro.workloads import WorkloadSpec, build_workload

ARGS = [120]


def _pipeline_binary(seed: int, instrument: bool = True):
    """A realistically-shaped binary: probed, instrumented, optimized."""
    module = build_workload(WorkloadSpec("d", seed=seed, requests=60))
    insert_pseudo_probes(module)
    if instrument:
        instrument_module(module)
    clone = module.clone()
    optimize_module(clone, OptConfig(), profile_annotated=False)
    verify_module(clone)
    return link(clone)


def _recursion_module(depth_reg: str = "%n"):
    """main(n): recursive countdown — one call + one ret per level."""
    mb = ModuleBuilder("recur")
    f = mb.function("main", [depth_reg])
    f.block("entry").cmp("sle", "%c", depth_reg, 0).condbr("%c", "base", "rec")
    f.block("base").mov("%z", 0).ret("%z")
    (f.block("rec").sub("%m", depth_reg, 1)
     .call("%r", "main", ["%m"]).add("%r", "%r", 1).ret("%r"))
    module = mb.build()
    verify_module(module)
    return module


class TestPureDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_results_identical(self, seed):
        binary = _pipeline_binary(seed)
        legacy = MachineExecutor(binary).run(ARGS)
        decoded = run_decoded(binary, ARGS)
        assert decoded.return_value == legacy.return_value
        assert decoded.instructions_retired == legacy.instructions_retired
        assert decoded.taken_branches == legacy.taken_branches
        assert dict(decoded.instr_counters) == dict(legacy.instr_counters)

    def test_execute_engine_selection(self):
        binary = _pipeline_binary(0)
        via_decoded = execute(binary, ARGS, engine="decoded")
        via_legacy = execute(binary, ARGS, engine="legacy")
        assert via_decoded.return_value == via_legacy.return_value
        with pytest.raises(ValueError):
            execute(binary, ARGS, engine="interpreted")


class TestObserverDifferential:
    @pytest.mark.parametrize("pebs", [True, False])
    @pytest.mark.parametrize("lbr_depth", [16, 32])
    def test_pmu_streams_identical(self, pebs, lbr_depth):
        binary = _pipeline_binary(1)
        config = PMUConfig(period=97, lbr_depth=lbr_depth, pebs=pebs)

        pmu_l = make_pmu(config)
        legacy = execute(binary, ARGS, pmu=pmu_l, engine="legacy")
        data_l = pmu_l.finish(legacy.instructions_retired)

        pmu_d = make_pmu(config)
        decoded = execute(binary, ARGS, pmu=pmu_d, engine="decoded")
        data_d = pmu_d.finish(decoded.instructions_retired)

        assert decoded.return_value == legacy.return_value
        assert len(data_d.samples) == len(data_l.samples)
        for got, want in zip(data_d.samples, data_l.samples):
            assert got.ip == want.ip
            assert list(got.lbr) == list(want.lbr)
            assert list(got.stack) == list(want.stack)
        assert pmu_d.lbr.recorded == pmu_l.lbr.recorded
        assert pmu_d._skid_samples == pmu_l._skid_samples

    @pytest.mark.parametrize("with_pmu", [False, True])
    def test_cost_model_identical(self, with_pmu):
        binary = _pipeline_binary(2)
        summaries = []
        for engine in ("legacy", "decoded"):
            cost = CostModel()
            pmu = make_pmu(PMUConfig()) if with_pmu else None
            execute(binary, ARGS, pmu=pmu, cost_model=cost, engine=engine)
            summaries.append(cost.summary())
        assert summaries[0] == summaries[1]


class TestDecodeCache:
    def test_repeat_runs_hit_cache(self):
        binary = _pipeline_binary(3)
        baseline_decodes = binary.decode_stats["decodes"]
        first = run_decoded(binary, ARGS)
        second = run_decoded(binary, ARGS)
        assert second.return_value == first.return_value
        assert binary.decode_stats["decodes"] == baseline_decodes + 1
        assert binary.decode_stats["cache_hits"] >= 1

    def test_observer_variants_decode_separately(self):
        binary = _pipeline_binary(3)
        run_decoded(binary, ARGS)
        run_decoded(binary, ARGS, pmu=make_pmu(PMUConfig(pebs=True)))
        run_decoded(binary, ARGS, pmu=make_pmu(PMUConfig(pebs=False)))
        assert binary.decode_stats["decodes"] == 3

    def test_pickle_drops_cache_and_still_runs(self):
        binary = _pipeline_binary(0)
        expected = run_decoded(binary, ARGS).return_value
        clone = pickle.loads(pickle.dumps(binary))
        assert clone._decoded_cache == {}
        assert clone.decode_stats == {"decodes": 0, "cache_hits": 0}
        assert run_decoded(clone, ARGS).return_value == expected


class TestPEBSOverheadRegression:
    """PMU.on_branch must do no stack work in PEBS mode (paper sec. IV)."""

    def test_pebs_on_branch_never_walks(self):
        calls = []

        def walker():
            calls.append(1)
            return [0]

        pmu = PMU(PMUConfig(pebs=True), walker)
        assert pmu.on_branch.__func__ is PMU._on_branch_pebs
        for i in range(200):
            pmu.on_branch(0x400000 + i, 0x400100 + i)
        assert calls == []  # no per-branch stack walks
        # Sampling itself still walks, exactly once per sample.
        for _ in range(300):
            pmu.on_retire(0x400000)
        assert len(pmu.data.samples) >= 1
        assert len(calls) == len(pmu.data.samples)

    def test_pebs_walks_once_per_sample_not_per_branch(self):
        binary = _pipeline_binary(1)
        pmu = make_pmu(PMUConfig(pebs=True))
        executor = MachineExecutor(binary, pmu=pmu)
        walks = []
        real_walk = executor.walk_stack
        pmu.bind_executor(lambda: (walks.append(1), real_walk())[1])
        result = executor.run(ARGS)
        data = pmu.finish(result.instructions_retired)
        assert len(walks) == len(data.samples)
        assert result.taken_branches > len(data.samples) * 10

    def test_pebs_perf_data_unchanged_by_specialization(self):
        """The no-walk fast path must not change the sample stream."""
        binary = _pipeline_binary(1)
        config = PMUConfig(pebs=True)

        fast = make_pmu(config)
        result = execute(binary, ARGS, pmu=fast, engine="legacy")
        fast_data = fast.finish(result.instructions_retired)

        # Reference PMU with the specialization undone: on_branch eagerly
        # captures the lagged stack like the (pre-fix) generic path did.
        ref = make_pmu(config)
        ref.on_branch = PMU.on_branch.__get__(ref)
        result2 = execute(binary, ARGS, pmu=ref, engine="legacy")
        ref_data = ref.finish(result2.instructions_retired)

        assert len(fast_data.samples) == len(ref_data.samples)
        for got, want in zip(fast_data.samples, ref_data.samples):
            assert (got.ip, list(got.lbr), list(got.stack)) == \
                (want.ip, list(want.lbr), list(want.stack))


class TestInstructionBudget:
    """max_instructions must bite on every retired instruction — including
    rets, so a ret-heavy (deeply recursive) runaway still halts."""

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_ret_heavy_program_hits_limit(self, engine):
        binary = link(_recursion_module())
        # Depth 5000 retires ~35k instructions, half in the call/ret ladder.
        with pytest.raises(MachineExecutionLimit):
            execute(binary, [5000], max_instructions=2_000, engine=engine)

    @pytest.mark.parametrize("engine", ["legacy", "decoded"])
    def test_limit_not_hit_under_budget(self, engine):
        binary = link(_recursion_module())
        result = execute(binary, [40], max_instructions=2_000, engine=engine)
        assert result.return_value == 40

    def test_recursion_differential(self):
        binary = link(_recursion_module())
        legacy = execute(binary, [300], engine="legacy")
        decoded = execute(binary, [300], engine="decoded")
        assert decoded.return_value == legacy.return_value == 300
        assert decoded.instructions_retired == legacy.instructions_retired
        assert decoded.taken_branches == legacy.taken_branches
