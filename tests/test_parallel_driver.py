"""Parallel driver mode: --jobs must not change any observable result.

Every PGO cycle is deterministic and self-contained (fresh module clone,
seeded PMU jitter), so fanning variants — or independent profiling
iterations — out over a process pool must reproduce the serial results
byte for byte.  These tests pin that contract.
"""

from __future__ import annotations

import pytest

from repro import (PGODriverConfig, PGOVariant, compare_variants, run_pgo)
from repro.cli import main as cli_main
from repro.hw import PMUConfig
from repro.workloads import WorkloadSpec, build_workload

VARIANTS = [PGOVariant.NONE, PGOVariant.AUTOFDO, PGOVariant.CSSPGO_FULL]


def _module():
    return build_workload(WorkloadSpec("par", seed=3, requests=40))


def _config(**overrides):
    kwargs = dict(pmu=PMUConfig(period=53), profile_iterations=2)
    kwargs.update(overrides)
    return PGODriverConfig(**kwargs)


def _fingerprint(result):
    """Everything observable about one variant's cycle."""
    fp = {
        "cycles": result.eval.cycles,
        "summary": result.eval.summary,
        "text": result.final.sizes.text,
        "profiling": [(m.cycles, m.instructions, m.summary)
                      for m in result.profiling_runs],
        "samples": result.extras.get("samples_per_iteration"),
        "profile_stats": result.profile_stats,
    }
    if isinstance(result.profile, dict):
        fp["profile"] = sorted(result.profile.items())
    return fp


class TestParallelCompare:
    def test_jobs_results_byte_identical(self):
        module = _module()
        serial = compare_variants(module, [40], [40], variants=VARIANTS,
                                  config=_config(), jobs=1)
        parallel = compare_variants(module, [40], [40], variants=VARIANTS,
                                    config=_config(), jobs=3)
        assert list(serial) == list(parallel) == VARIANTS  # same order
        for variant in VARIANTS:
            assert _fingerprint(parallel[variant]) == \
                _fingerprint(serial[variant]), variant

    def test_results_are_picklable_round_trip(self):
        # Worker results cross a process boundary: the binary's decoded-
        # program cache must have been dropped, not poisoned the pickle.
        module = _module()
        results = compare_variants(
            module, [40], [40],
            variants=[PGOVariant.NONE, PGOVariant.AUTOFDO],
            config=_config(), jobs=2)
        result = results[PGOVariant.AUTOFDO]
        assert result.final.binary._decoded_cache == {}
        assert result.eval.cycles > 0


class TestIndependentProfiling:
    def test_serial_vs_parallel_identical(self):
        module = _module()
        config = _config(independent_profiling=True, profile_iterations=3)
        serial = run_pgo(module, PGOVariant.CSSPGO_FULL, [40], [40],
                         config, jobs=1)
        parallel = run_pgo(module, PGOVariant.CSSPGO_FULL, [40], [40],
                           config, jobs=3)
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_aggregates_every_iteration(self):
        module = _module()
        config = _config(independent_profiling=True, profile_iterations=3)
        result = run_pgo(module, PGOVariant.CSSPGO_FULL, [40], [40], config)
        per_iteration = result.extras["samples_per_iteration"]
        assert len(per_iteration) == len(result.profiling_runs) == 3
        assert result.extras["samples"] == sum(per_iteration)
        # Iterations differ only by jitter seed: similar but not identical.
        assert min(per_iteration) > 0

    def test_differs_from_sequential_chain(self):
        # Sequential mode re-profiles progressively optimized binaries;
        # independent mode profiles the plain build N times.  The profiles
        # (and sample counts) should genuinely differ.
        module = _module()
        sequential = run_pgo(module, PGOVariant.CSSPGO_FULL, [40], [40],
                             _config(profile_iterations=2))
        independent = run_pgo(module, PGOVariant.CSSPGO_FULL, [40], [40],
                              _config(independent_profiling=True,
                                      profile_iterations=2))
        assert independent.eval.cycles > 0
        assert sequential.extras["samples_per_iteration"] != \
            independent.extras["samples_per_iteration"]


class TestCLIJobs:
    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_compare_jobs_flag(self, capsys, jobs):
        rc = cli_main(["--jobs", jobs, "--seed", "5", "compare", "cj",
                       "--variants", "none,autofdo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "autofdo" in out

    def test_cli_outputs_identical_across_jobs(self, capsys):
        outputs = []
        for jobs in ("1", "2"):
            assert cli_main(["--jobs", jobs, "--iterations", "1",
                             "--seed", "5", "compare", "cj2",
                             "--variants", "autofdo,csspgo"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_independent_profiling_flag(self, capsys):
        rc = cli_main(["--iterations", "2", "--seed", "5", "compare", "cj3",
                       "--variants", "csspgo", "--independent-profiling"])
        assert rc == 0
        assert "csspgo" in capsys.readouterr().out


class TestFallbackChainUnderConcurrency:
    """The degradation chain must survive the process-pool round trip:
    extras, manifests, and the parent-merged fallback_taken events."""

    def test_stale_profile_degrades_in_worker_and_merges_back(self):
        from repro import obs, telemetry
        from repro.faults import FaultSpec

        module = _module()
        config = _config(
            fault_spec=FaultSpec.parse("stale_checksum:1@seed=5"))
        session = telemetry.enable()
        parent_obs = obs.install(obs.Observability())
        try:
            results = compare_variants(
                module, [40], [40],
                variants=[PGOVariant.AUTOFDO, PGOVariant.CSSPGO_FULL],
                config=config, jobs=2)
        finally:
            telemetry.disable()
            obs.uninstall()
        csspgo = results[PGOVariant.CSSPGO_FULL]
        # Every checksum staled: the context profile annotates nothing and
        # the chain must have taken at least the csspgo->autofdo hop.
        chain = csspgo.extras["fallback_chain"]
        reasons = csspgo.extras["fallback_reasons"]
        assert chain and chain[0].startswith("csspgo->")
        assert len(reasons) == len(chain)
        assert all(reasons)
        # Provenance rode along: manifests crossed the pickle boundary and
        # the newest one carries the degradation hops.
        manifests = csspgo.extras["manifests"]
        assert manifests
        hops = manifests[-1]["fallbacks"]
        assert [f"{h['from']}->{h['to']}" for h in hops] == chain
        # Worker events were re-emitted into the parent session.
        fallback_events = parent_obs.log.of_type("fallback_taken")
        assert any(e.fields["from_variant"] == "csspgo"
                   for e in fallback_events)
        # The run still produced a working binary (degraded, not broken).
        assert csspgo.eval.cycles > 0

    def test_chain_identical_serial_vs_parallel(self):
        from repro.faults import FaultSpec

        module = _module()
        config = _config(
            fault_spec=FaultSpec.parse("stale_checksum:1@seed=5"))
        variants = [PGOVariant.AUTOFDO, PGOVariant.CSSPGO_FULL]
        serial = compare_variants(module, [40], [40], variants=variants,
                                  config=config, jobs=1)
        parallel = compare_variants(module, [40], [40], variants=variants,
                                    config=config, jobs=2)
        for variant in variants:
            assert serial[variant].extras.get("fallback_chain") == \
                parallel[variant].extras.get("fallback_chain"), variant
            assert serial[variant].extras.get("fallback_reasons") == \
                parallel[variant].extras.get("fallback_reasons"), variant
