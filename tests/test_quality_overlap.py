"""Block-overlap metric (paper sec. IV.C formulas)."""

import pytest

from repro.quality import (block_overlap_function, block_overlap_program,
                           module_block_counts)


class TestFunctionOverlap:
    def test_identical_profiles_overlap_fully(self):
        counts = {"a": 10.0, "b": 90.0}
        assert block_overlap_function(counts, dict(counts)) == pytest.approx(1.0)

    def test_scaled_profiles_overlap_fully(self):
        f = {"a": 10.0, "b": 90.0}
        gt = {"a": 1.0, "b": 9.0}
        assert block_overlap_function(f, gt) == pytest.approx(1.0)

    def test_disjoint_profiles_do_not_overlap(self):
        assert block_overlap_function({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_partial_overlap(self):
        f = {"a": 50.0, "b": 50.0}
        gt = {"a": 100.0, "b": 0.0}
        assert block_overlap_function(f, gt) == pytest.approx(0.5)

    def test_both_cold_is_perfect(self):
        assert block_overlap_function({}, {}) == 1.0

    def test_one_cold_is_zero(self):
        assert block_overlap_function({"a": 5.0}, {}) == 0.0


class TestProgramOverlap:
    def test_weighted_by_test_profile_share(self):
        f = {"hot": {"a": 99.0}, "cold": {"a": 1.0}}
        gt = {"hot": {"a": 99.0}, "cold": {"b": 1.0}}
        # hot matches fully (weight .99), cold not at all (weight .01).
        assert block_overlap_program(f, gt) == pytest.approx(0.99)

    def test_empty_profile(self):
        assert block_overlap_program({}, {"f": {"a": 1.0}}) == 0.0

    def test_module_block_counts_extraction(self, loop_module):
        fn = loop_module.function("main")
        fn.block("loop").count = 5.0
        fn.block("body").count = 4.0
        counts = module_block_counts(loop_module)
        assert counts == {"main": {"loop": 5.0, "body": 4.0}}
