"""Production-scale inference: sparse-vs-dense differential, skeleton
digests, the solver cache, incremental re-solve, and sharded solves.

The sparse fast path (``inference.sparse``) is pinned against the dense
formulation it replaced — the dense path stays in the tree purely as the
differential oracle these tests run (DESIGN.md sec. 14).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs, telemetry
from repro.analysis import fill_static_counts
from repro.inference import (InferenceSession, SolverCache,
                             infer_function_counts, infer_module_counts)
from repro.inference import incremental as inference_session
from repro.inference.sharded import (ShardedInferencePool, name_shard,
                                     partition_tasks, solve_pending_sharded)
from repro.inference.skeleton import (SINK, SRC, extract_skeleton,
                                      observation_pattern, skeleton_digest)
from repro.inference.sparse import HAVE_SCIPY, solve_raw
from repro.ir import ModuleBuilder, verify_module
from repro.workloads import WorkloadSpec, build_workload
from tests.conftest import build_diamond_module, build_loop_module

needs_scipy = pytest.mark.skipif(not HAVE_SCIPY,
                                 reason="scipy unavailable; sparse path "
                                        "degrades to dense")


@pytest.fixture(autouse=True)
def _no_leaked_sessions():
    """Inference sessions and obs are process-global; never leak them."""
    yield
    inference_session.uninstall()
    obs.uninstall()


def build_observed_workload(seed: int, jitter: float = 0.05):
    """Small generated module with flow-consistent noisy observations."""
    module = build_workload(WorkloadSpec("diff", seed=seed, n_leaf=4,
                                         n_dispatch=2, n_mid=3, n_wrapper=1,
                                         n_workers=2, n_services=2,
                                         requests=40))
    fill_static_counts(module)
    rng = random.Random(seed + 1000)
    heads = {}
    for name, fn in module.functions.items():
        for block in fn.blocks:
            if block.count is not None:
                block.count *= 1 + jitter * (rng.random() - 0.5)
        if fn.entry_count is not None:
            heads[name] = fn.entry_count
        fn.entry_count = None
    return module, heads


def module_counts(module):
    return {(name, block.label): block.count
            for name, fn in module.functions.items()
            for block in fn.blocks}


def assert_counts_close(reference, counts, rel=1e-6):
    assert set(reference) == set(counts)
    for key, ref in reference.items():
        a, b = ref or 0.0, counts[key] or 0.0
        assert abs(a - b) <= rel * max(1.0, abs(a)), (key, a, b)


def build_self_loop_entry():
    """main(): the entry block is its own loop header (entry -> entry)."""
    mb = ModuleBuilder("selfloop")
    f = mb.function("main", ["%n"])
    f.block("entry").add("%n", "%n", -1).cmp(
        "slt", "%c", 0, "%n").condbr("%c", "entry", "exit")
    f.block("exit").ret("%n")
    module = mb.build()
    verify_module(module)
    return module


class TestDifferential:
    """Sparse path == dense oracle on everything we can throw at it."""

    @needs_scipy
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_sparse_matches_dense_on_workloads(self, seed):
        module, heads = build_observed_workload(seed)
        dense = module.clone()
        infer_module_counts(dense, heads, dense=True)
        sparse = module.clone()
        infer_module_counts(sparse, heads)
        assert_counts_close(module_counts(dense), module_counts(sparse))
        for name, fn in dense.functions.items():
            other = sparse.function(name).entry_count
            if fn.entry_count is None:
                assert other is None
            else:
                assert other == pytest.approx(fn.entry_count,
                                              rel=1e-6, abs=1e-6)

    @needs_scipy
    @pytest.mark.parametrize("counts,head", [
        ({"entry": 10.0, "loop": 510.0, "body": 500.0, "exit": 10.0}, 10.0),
        ({"entry": 10.0, "loop": 510.0}, 10.0),      # unknowns filled
        ({"loop": 100.0}, None),                      # no head row
    ])
    def test_sparse_matches_dense_handbuilt(self, counts, head):
        results = []
        for dense in (True, False):
            module = build_loop_module()
            fn = module.function("main")
            for label, count in counts.items():
                fn.block(label).count = count
            assert infer_function_counts(fn, head, dense=dense)
            results.append({b.label: b.count for b in fn.blocks})
        assert_counts_close(results[0], results[1])

    @needs_scipy
    def test_sharded_solve_identical_to_serial(self):
        module, heads = build_observed_workload(seed=17)
        serial = module.clone()
        infer_module_counts(serial, heads)
        expected = module_counts(serial)
        for shards in (2, 4, 8):
            sharded = module.clone()
            infer_module_counts(sharded, heads, shards=shards, jobs=1)
            # In-process sharding is the same code path on a partition:
            # floats must be *identical*, not merely close.
            assert module_counts(sharded) == expected

    @needs_scipy
    def test_pool_solve_identical_to_serial(self):
        module, heads = build_observed_workload(seed=23)
        serial = module.clone()
        infer_module_counts(serial, heads)
        with ShardedInferencePool(jobs=2) as pool:
            session = InferenceSession(shards=4, jobs=2, pool=pool,
                                       memoize=False)
            pooled = module.clone()
            infer_module_counts(pooled, heads, session=session)
        assert module_counts(pooled) == module_counts(serial)


class TestSkeleton:
    def test_edge_list_matches_dense_formulation(self):
        fn = build_loop_module().function("main")
        skeleton = extract_skeleton(fn)
        assert skeleton.labels == ["entry", "loop", "body", "exit"]
        assert skeleton.edges[0] == (SRC, 0)
        assert (3, SINK) in skeleton.edges           # ret block -> sink
        assert (2, 1) in skeleton.edges              # body -> loop back edge

    def test_unreachable_blocks_excluded(self):
        mb = ModuleBuilder("dead")
        f = mb.function("main", ["%x"])
        f.block("entry").br("live")
        f.block("live").ret("%x")
        f.block("dead").ret("%x")
        fn = mb.build().function("main")
        skeleton = extract_skeleton(fn)
        assert skeleton.labels == ["entry", "live"]

    def test_digest_ignores_labels(self):
        plain = build_diamond_module().function("main")
        mb = ModuleBuilder("renamed")
        f = mb.function("main", ["%x"])
        f.block("a").cmp("slt", "%c", "%x", 5).condbr("%c", "b", "c")
        f.block("b").mul("%r", "%x", 3).br("d")
        f.block("c").add("%r", "%x", 100).br("d")
        f.block("d").ret("%r")
        renamed = mb.build().function("main")
        assert (extract_skeleton(plain).digest
                == extract_skeleton(renamed).digest)
        assert (extract_skeleton(plain).digest
                != extract_skeleton(build_loop_module()
                                    .function("main")).digest)

    def test_observation_pattern_splits_indices_and_values(self):
        fn = build_loop_module().function("main")
        fn.block("loop").count = 510.0
        fn.block("exit").count = 10.0
        skeleton = extract_skeleton(fn)
        indices, values = observation_pattern(fn, skeleton)
        assert indices == (1, 3)
        assert values == [510.0, 10.0]


# Random-but-valid CFG edge structures: block 0 is the entry; every other
# block gets at least one in-edge candidate.  Not necessarily connected —
# the digest is defined on any edge list.
_edge_lists = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.lists(
        st.tuples(st.integers(min_value=-1, max_value=n - 1),
                  st.integers(min_value=-2, max_value=n - 1)),
        min_size=1, max_size=24).map(lambda edges: (n, tuple(edges))))


class TestDigestProperties:
    @given(_edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_digest_deterministic(self, structure):
        n_blocks, edges = structure
        assert (skeleton_digest(n_blocks, edges)
                == skeleton_digest(n_blocks, edges))

    @given(_edge_lists, _edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_digest_injective_on_structure(self, left, right):
        digests = skeleton_digest(*left), skeleton_digest(*right)
        assert (digests[0] == digests[1]) == (left == right)

    @needs_scipy
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=2),
           st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=2))
    @settings(max_examples=50, deadline=None)
    def test_observation_values_never_touch_the_cached_template(
            self, values_a, values_b):
        fn = build_loop_module().function("main")
        skeleton = extract_skeleton(fn)
        cache = SolverCache()
        for values in (values_a, values_b):
            solve_raw(cache, skeleton.digest, skeleton.n_blocks,
                      skeleton.edges, (1, 3), values, None)
        # Same structure + pattern: one template, re-solved with new RHS.
        assert len(cache) == 1
        assert cache.misses == 1 and cache.hits == 1


@needs_scipy
class TestSolverCache:
    def test_structural_twins_share_a_template(self):
        cache = SolverCache()
        for seed_label in ("first", "second"):
            mb = ModuleBuilder(seed_label)
            f = mb.function("main", ["%x"])
            f.block(f"{seed_label}_e").cmp("slt", "%c", "%x", 5).condbr(
                "%c", f"{seed_label}_t", f"{seed_label}_f")
            f.block(f"{seed_label}_t").br(f"{seed_label}_j")
            f.block(f"{seed_label}_f").br(f"{seed_label}_j")
            f.block(f"{seed_label}_j").ret("%x")
            fn = mb.build().function("main")
            fn.block(f"{seed_label}_e").count = 10.0
            infer_function_counts(fn, 10.0, cache=cache)
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "size": 1}

    def test_capacity_bounds_the_cache(self):
        cache = SolverCache(capacity=2)
        fn = build_loop_module().function("main")
        skeleton = extract_skeleton(fn)
        for pattern in ((0,), (1,), (2,)):
            solve_raw(cache, skeleton.digest, skeleton.n_blocks,
                      skeleton.edges, pattern, [5.0], None)
        assert cache.evictions == 1
        assert len(cache) == 1  # cleared at capacity, then one insert

    def test_cache_hit_solution_identical_to_miss(self):
        results = []
        for _ in range(2):
            cache = SolverCache()
            values = ([10.0, 510.0, 500.0, 10.0], [10.0, 510.0, 500.0, 10.0])
            fn = build_loop_module().function("main")
            skeleton = extract_skeleton(fn)
            for vals in values:
                results.append(solve_raw(cache, skeleton.digest,
                                         skeleton.n_blocks, skeleton.edges,
                                         (0, 1, 2, 3), vals, 10.0))
        for source_flow, inflow, reason in results[1:]:
            assert source_flow == results[0][0]
            assert np.array_equal(inflow, results[0][1])
            assert reason is None


@needs_scipy
class TestFallbackClassification:
    def _counts_for(self, module, head, dense):
        clone = module.clone()
        infer_module_counts(clone, head, dense=dense)
        return module_counts(clone)

    def test_rank_deficient_counted_and_bit_identical(self):
        module = build_diamond_module()
        module.function("main").block("entry").count = None
        session = telemetry.enable()
        obs_session = obs.install()
        try:
            # Head-only diamond: two branch flows, one constraint — the
            # normal equations cannot pick the oracle's min-norm answer.
            sparse = self._counts_for(module, {"main": 100.0}, dense=False)
            assert session.counter("inference", "solver_fallback") == 1
            assert session.counter(
                "inference", "solver_fallback.rank_deficient") == 1
            events = [e for e in obs_session.log.events
                      if e.type == "solver_fallback"]
            assert [(e.fields["function"], e.fields["reason"])
                    for e in events] == [("main", "rank_deficient")]
        finally:
            telemetry.disable()
        dense = self._counts_for(module, {"main": 100.0}, dense=True)
        assert sparse == dense  # fallback runs the oracle: bit-identical

    def test_negative_flow_counted_and_bit_identical(self):
        module = build_diamond_module()
        fn = module.function("main")
        # Wildly inconsistent: the unconstrained optimum goes negative,
        # so the fast path must defer to the bounded oracle.
        for label, count in [("entry", 10.0), ("then", 50.0),
                             ("else", 0.0), ("join", 5.0)]:
            fn.block(label).count = count
        session = telemetry.enable()
        try:
            sparse = self._counts_for(module, {"main": 10.0}, dense=False)
            assert session.counter(
                "inference", "solver_fallback.negative_flow") == 1
        finally:
            telemetry.disable()
        dense = self._counts_for(module, {"main": 10.0}, dense=True)
        assert sparse == dense

    def test_clean_solve_counts_no_fallback(self):
        module = build_loop_module()
        fn = module.function("main")
        for label, count in [("entry", 10.0), ("loop", 510.0),
                             ("body", 500.0), ("exit", 10.0)]:
            fn.block(label).count = count
        session = telemetry.enable()
        try:
            infer_module_counts(module, {"main": 10.0})
            assert session.counter("inference", "solver_fallback") == 0
        finally:
            telemetry.disable()


class TestEntryCountReadback:
    @needs_scipy
    @pytest.mark.parametrize("dense", [True, False])
    def test_self_loop_entry_uses_source_flow_not_inflow(self, dense):
        # The entry block's *inflow* includes its own back edge (10), but
        # only the virtual SRC->entry flow (2) is function entries.
        module = build_self_loop_entry()
        fn = module.function("main")
        fn.block("entry").count = 10.0
        fn.block("exit").count = 2.0
        assert infer_function_counts(fn, dense=dense)
        assert fn.entry_count == pytest.approx(2.0, rel=0.05)
        assert fn.block("entry").count == pytest.approx(10.0, rel=0.05)

    @pytest.mark.parametrize("dense", [True, False])
    def test_observed_head_wins(self, dense):
        module = build_loop_module()
        fn = module.function("main")
        fn.block("loop").count = 100.0
        assert infer_function_counts(fn, head_count=7.0, dense=dense)
        assert fn.entry_count == 7.0


@needs_scipy
class TestIncrementalSession:
    def test_repeat_run_skips_every_solve(self):
        module, heads = build_observed_workload(seed=41)
        session = inference_session.install(InferenceSession())
        telemetry_session = telemetry.enable()
        try:
            first = module.clone()
            infer_module_counts(first, heads)
            assert session.reused == 0 and session.solved > 0
            solved = session.solved
            second = module.clone()
            infer_module_counts(second, heads)
            assert session.reused == solved  # 100% >= the 90% contract
            assert telemetry_session.counter(
                "inference", "incremental_reuse") == solved
            assert module_counts(second) == module_counts(first)
        finally:
            telemetry.disable()

    def test_changed_values_solve_again_in_exact_mode(self):
        module, heads = build_observed_workload(seed=43)
        session = inference_session.install(InferenceSession())
        first = module.clone()
        infer_module_counts(first, heads)
        drifted = module.clone()
        for fn in drifted.functions.values():
            for block in fn.blocks:
                if block.count is not None:
                    block.count *= 1.001
        infer_module_counts(drifted, heads)
        assert session.reused == 0

    def test_tolerance_mode_reuses_under_drift(self):
        module, heads = build_observed_workload(seed=43)
        session = inference_session.install(InferenceSession(tolerance=0.01))
        first = module.clone()
        infer_module_counts(first, heads)
        drifted = module.clone()
        for fn in drifted.functions.values():
            for block in fn.blocks:
                if block.count is not None:
                    block.count *= 1.001  # within the 1% tolerance
        infer_module_counts(drifted, heads)
        assert session.reused == session.solved
        # Reuse serves the *previous* solution verbatim.
        assert module_counts(drifted) == module_counts(first)

    def test_memoize_off_is_config_only(self):
        module, heads = build_observed_workload(seed=47)
        session = inference_session.install(InferenceSession(memoize=False))
        infer_module_counts(module.clone(), heads)
        infer_module_counts(module.clone(), heads)
        assert session.reused == 0
        assert session.stats()["memo_size"] == 0

    def test_driver_installs_and_uninstalls_a_session(self):
        from repro import PGODriverConfig, PGOVariant, run_pgo
        from repro.hw import PMUConfig
        module = build_workload(WorkloadSpec("drv", seed=9, n_leaf=3,
                                             n_dispatch=1, n_mid=2,
                                             n_wrapper=1, n_workers=1,
                                             n_services=1, requests=30))
        config = PGODriverConfig(pmu=PMUConfig(period=31), infer_shards=2,
                                 infer_jobs=1)
        assert inference_session.current() is None
        result = run_pgo(module, PGOVariant.AUTOFDO, [30], [30],
                         config=config)
        assert result.eval is not None
        assert inference_session.current() is None  # uninstalled after


class TestSharding:
    def test_name_shard_deterministic_and_in_range(self):
        names = [f"fn_{i}" for i in range(200)]
        for shards in (1, 2, 4, 8):
            assignments = [name_shard(name, shards) for name in names]
            assert assignments == [name_shard(name, shards)
                                   for name in names]
            assert all(0 <= shard < shards for shard in assignments)
        # FNV-1a spreads generated-style names instead of clumping them.
        assert len(set(name_shard(name, 8) for name in names)) == 8

    def test_partition_preserves_every_task_once(self):
        tasks = [(f"fn_{i}", "d", 1, ((SRC, 0),), (), [], None)
                 for i in range(50)]
        buckets = partition_tasks(tasks, 4)
        assert len(buckets) == 4
        flat = [task for bucket in buckets for task in bucket]
        assert sorted(name for name, *_ in flat) == sorted(
            name for name, *_ in tasks)

    @needs_scipy
    def test_shard_count_never_changes_results(self):
        fn = build_loop_module().function("main")
        skeleton = extract_skeleton(fn)
        pending = [(f"fn_{i}", skeleton, (0, 1, 2, 3),
                    [10.0, 510.0 + i, 500.0 + i, 10.0], 10.0)
                   for i in range(16)]
        baseline = None
        for shards in (1, 2, 4, 8):
            solved = solve_pending_sharded(pending, shards=shards, jobs=1,
                                           cache=SolverCache())
            flows = {name: (source_flow, inflow.tobytes())
                     for name, (source_flow, inflow, _) in solved.items()}
            if baseline is None:
                baseline = flows
            else:
                assert flows == baseline
